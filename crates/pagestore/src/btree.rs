//! A disk-backed B+tree with fixed-width byte-string keys and `u64` values.
//!
//! This is the engine's analogue of the paper's "B-tree index ... on the
//! concatenation of" feature columns (§4.4): keys are order-preserving
//! encodings of column tuples (see [`crate::encode`]), values are heap row
//! ids. Only insert and inclusive range scans are provided — the workload
//! is append-then-query, matching the paper's one-time-search setting.

use crate::buffer::BufferPool;
use crate::error::Result;
use crate::page::{self, PageBuf};
use crate::pagefile::{FileId, PageId};
use crate::{StoreError, PAGE_SIZE};
use std::sync::Arc;

const MAGIC: u32 = 0x5344_4254; // "SDBT"
const META_PAGE: u32 = 0;
const HDR: usize = 8; // kind u8, pad u8, nkeys u16, next/child0 u32
const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;
/// Sentinel for "no next leaf".
const NO_PAGE: u32 = u32::MAX;

/// Global-registry counters for index activity (`btree.*`), shared by
/// every tree in the process.
struct BTreeMetrics {
    inserts: Arc<obs::Counter>,
    range_scans: Arc<obs::Counter>,
    entries_scanned: Arc<obs::Counter>,
    probe_batches: Arc<obs::Counter>,
    probe_ranges: Arc<obs::Counter>,
    probe_descents: Arc<obs::Counter>,
    probe_leaf_hops: Arc<obs::Counter>,
}

impl BTreeMetrics {
    fn new() -> Self {
        let r = obs::global();
        BTreeMetrics {
            inserts: r.counter("btree.inserts"),
            range_scans: r.counter("btree.range_scans"),
            entries_scanned: r.counter("btree.entries_scanned"),
            probe_batches: r.counter("probe.batches"),
            probe_ranges: r.counter("probe.ranges"),
            probe_descents: r.counter("probe.descents"),
            probe_leaf_hops: r.counter("probe.leaf_hops"),
        }
    }
}

/// One decoded leaf of the sibling chain — the cursor
/// [`BTree::search_batch`] advances instead of re-descending per range.
struct LeafCursor {
    buf: PageBuf,
    n: usize,
    next: u32,
}

impl LeafCursor {
    fn new() -> Self {
        Self {
            buf: PageBuf::zeroed(),
            n: 0,
            next: NO_PAGE,
        }
    }

    fn load(&mut self, pool: &BufferPool, fid: FileId, pid: PageId) -> Result<()> {
        pool.read_page_into(fid, pid, &mut self.buf)?;
        let b = self.buf.bytes();
        debug_assert_eq!(b[0], KIND_LEAF);
        self.n = page::get_u16(b, 2) as usize;
        self.next = page::get_u32(b, 4);
        Ok(())
    }

    fn first_key(&self, kw: usize) -> &[u8] {
        &self.buf.bytes()[HDR..HDR + kw]
    }

    fn last_key(&self, kw: usize, esz: usize) -> &[u8] {
        let off = HDR + (self.n - 1) * esz;
        &self.buf.bytes()[off..off + kw]
    }
}

/// A B+tree index. See the module docs.
pub struct BTree {
    pool: Arc<BufferPool>,
    fid: FileId,
    key_width: usize,
    root: PageId,
    height: u32,
    count: u64,
    leaf_cap: usize,
    int_cap: usize,
    metrics: BTreeMetrics,
}

impl BTree {
    /// Creates an empty tree in the freshly created file `fid`, for keys of
    /// exactly `key_width` bytes.
    pub fn create(pool: Arc<BufferPool>, fid: FileId, key_width: usize) -> Result<Self> {
        assert!(key_width >= 1, "key width must be positive");
        let leaf_cap = (PAGE_SIZE - HDR) / (key_width + 8);
        let int_cap = (PAGE_SIZE - HDR) / (key_width + 4);
        assert!(
            leaf_cap >= 4 && int_cap >= 4,
            "key width too large for a page"
        );
        let meta = pool.allocate_page(fid)?;
        debug_assert_eq!(meta, META_PAGE);
        let root = pool.allocate_page(fid)?;
        pool.with_page_mut(fid, root, |b| {
            b[0] = KIND_LEAF;
            page::put_u16(b, 2, 0);
            page::put_u32(b, 4, NO_PAGE);
        })?;
        let t = Self {
            pool,
            fid,
            key_width,
            root,
            height: 0,
            count: 0,
            leaf_cap,
            int_cap,
            metrics: BTreeMetrics::new(),
        };
        t.write_meta()?;
        Ok(t)
    }

    /// True when the file at `path` plausibly holds a finished tree:
    /// page-aligned, non-empty, tree magic on the meta page. B+trees are
    /// unlogged and rebuildable, so [`crate::Database::open`] uses this
    /// to tell a usable index apart from one a crash left torn (typically
    /// all zeros: pages allocated, cached writes never flushed) and
    /// silently rebuilds the latter instead of failing the open.
    pub(crate) fn file_is_valid(path: &std::path::Path) -> bool {
        use std::io::Read;
        let Ok(meta) = std::fs::metadata(path) else {
            return false;
        };
        if meta.len() == 0 || meta.len() % PAGE_SIZE as u64 != 0 {
            return false;
        }
        let Ok(mut f) = std::fs::File::open(path) else {
            return false;
        };
        let mut magic = [0u8; 4];
        f.read_exact(&mut magic).is_ok() && u32::from_le_bytes(magic) == MAGIC
    }

    /// Opens an existing tree in file `fid`.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> Result<Self> {
        let (magic, kw, root, height, count) = pool.with_page(fid, META_PAGE, |b| {
            (
                page::get_u32(b, 0),
                page::get_u16(b, 4) as usize,
                page::get_u32(b, 8),
                page::get_u32(b, 12),
                page::get_u64(b, 16),
            )
        })?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt("btree file has bad magic".into()));
        }
        Ok(Self {
            leaf_cap: (PAGE_SIZE - HDR) / (kw + 8),
            int_cap: (PAGE_SIZE - HDR) / (kw + 4),
            pool,
            fid,
            key_width: kw,
            root,
            height,
            count,
            metrics: BTreeMetrics::new(),
        })
    }

    fn write_meta(&self) -> Result<()> {
        self.pool.with_page_mut(self.fid, META_PAGE, |b| {
            page::put_u32(b, 0, MAGIC);
            page::put_u16(b, 4, self.key_width as u16);
            page::put_u32(b, 8, self.root);
            page::put_u32(b, 12, self.height);
            page::put_u64(b, 16, self.count);
        })
    }

    /// Persists root/height/count to the meta page.
    pub fn sync_meta(&self) -> Result<()> {
        self.write_meta()
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Key width in bytes.
    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// Bytes used on disk.
    pub fn size_bytes(&self) -> u64 {
        self.pool.file_size_bytes(self.fid)
    }

    /// The pool file id this tree lives in (for in-place rebuilds).
    pub(crate) fn fid(&self) -> FileId {
        self.fid
    }

    /// Tree height (0 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Inserts an entry. Duplicate keys are allowed and kept adjacent (the
    /// engine appends a unique row-id suffix to every key anyway).
    pub fn insert(&mut self, key: &[u8], val: u64) -> Result<()> {
        assert_eq!(key.len(), self.key_width, "key width mismatch");
        self.metrics.inserts.inc();
        // Descend, recording the path of internal pages.
        let mut path: Vec<PageId> = Vec::with_capacity(self.height as usize);
        let mut pid = self.root;
        for _ in 0..self.height {
            path.push(pid);
            pid = self.child_for(pid, key)?;
        }
        // Fast path: leaf has room.
        let kw = self.key_width;
        let cap = self.leaf_cap;
        let inserted = self.pool.with_page_mut(self.fid, pid, |b| {
            let n = page::get_u16(b, 2) as usize;
            if n >= cap {
                return false;
            }
            let pos = leaf_lower_bound(b, n, kw, key);
            let esz = kw + 8;
            let start = HDR + pos * esz;
            b.copy_within(start..HDR + n * esz, start + esz);
            b[start..start + kw].copy_from_slice(key);
            page::put_u64(b, start + kw, val);
            page::put_u16(b, 2, (n + 1) as u16);
            true
        })?;
        if inserted {
            self.count += 1;
            return Ok(());
        }
        // Slow path: split the leaf, then propagate.
        let (mut sep, mut new_pid) = self.split_leaf(pid, key, val)?;
        self.count += 1;
        while let Some(parent) = path.pop() {
            match self.internal_insert(parent, &sep, new_pid)? {
                None => return Ok(()),
                Some((s, p)) => {
                    sep = s;
                    new_pid = p;
                }
            }
        }
        // The root itself split: grow the tree.
        let new_root = self.pool.allocate_page(self.fid)?;
        let (old_root, kw) = (self.root, self.key_width);
        self.pool.with_page_mut(self.fid, new_root, |b| {
            b[0] = KIND_INTERNAL;
            page::put_u16(b, 2, 1);
            page::put_u32(b, 4, old_root);
            b[HDR..HDR + kw].copy_from_slice(&sep);
            page::put_u32(b, HDR + kw, new_pid);
        })?;
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    /// Builds a tree from entries that are **already sorted by key**
    /// (duplicates allowed, kept in order). Orders of magnitude faster
    /// than repeated [`BTree::insert`]: leaves are written left to right at
    /// a ~90% fill factor and the internal levels are assembled bottom-up
    /// with no page ever touched twice.
    ///
    /// # Panics
    ///
    /// Panics if a key has the wrong width or the input is not sorted.
    pub fn bulk_load<'a>(
        pool: Arc<BufferPool>,
        fid: FileId,
        key_width: usize,
        entries: impl IntoIterator<Item = (&'a [u8], u64)>,
    ) -> Result<Self> {
        let mut tree = Self::create(pool, fid, key_width)?;
        let kw = key_width;
        let esz = kw + 8;
        let fill = (tree.leaf_cap * 9 / 10).max(1);

        // Phase 1: fill leaves. The first leaf reuses the root page the
        // constructor allocated.
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, pid)
        let mut current = tree.root;
        let mut in_page = 0usize;
        let mut count = 0u64;
        let mut prev_key: Option<Vec<u8>> = None;
        for (key, val) in entries {
            assert_eq!(key.len(), kw, "key width mismatch");
            if let Some(prev) = &prev_key {
                assert!(prev.as_slice() <= key, "bulk_load input must be sorted");
            }
            if in_page == fill {
                // Seal this leaf and chain a new one.
                let next = tree.pool.allocate_page(fid)?;
                tree.pool.with_page_mut(fid, current, |b| {
                    page::put_u32(b, 4, next);
                })?;
                tree.pool.with_page_mut(fid, next, |b| {
                    b[0] = KIND_LEAF;
                    page::put_u16(b, 2, 0);
                    page::put_u32(b, 4, NO_PAGE);
                })?;
                current = next;
                in_page = 0;
            }
            if in_page == 0 {
                leaves.push((key.to_vec(), current));
            }
            let off = HDR + in_page * esz;
            tree.pool.with_page_mut(fid, current, |b| {
                b[off..off + kw].copy_from_slice(key);
                page::put_u64(b, off + kw, val);
                page::put_u16(b, 2, (in_page + 1) as u16);
            })?;
            in_page += 1;
            count += 1;
            prev_key = Some(key.to_vec());
        }
        tree.count = count;
        if leaves.len() <= 1 {
            tree.write_meta()?;
            return Ok(tree);
        }

        // Phase 2: build internal levels bottom-up.
        let int_esz = kw + 4;
        let int_fill = (tree.int_cap * 9 / 10).max(2);
        let mut level = leaves;
        while level.len() > 1 {
            let mut upper: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let take = int_fill.min(level.len() - i).max(1);
                let chunk = &level[i..i + take];
                let pid = tree.pool.allocate_page(fid)?;
                tree.pool.with_page_mut(fid, pid, |b| {
                    b[0] = KIND_INTERNAL;
                    page::put_u16(b, 2, (chunk.len() - 1) as u16);
                    page::put_u32(b, 4, chunk[0].1);
                    for (k, (sep, child)) in chunk[1..].iter().enumerate() {
                        let off = HDR + k * int_esz;
                        b[off..off + kw].copy_from_slice(sep);
                        page::put_u32(b, off + kw, *child);
                    }
                })?;
                upper.push((chunk[0].0.clone(), pid));
                i += take;
            }
            level = upper;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Visits every entry with `lo <= key <= hi` in key order. Returning
    /// `false` from the visitor stops the scan.
    ///
    /// Leaf pages are copied out of the pool before the visitor runs, so
    /// the visitor may access other pool-backed structures.
    pub fn range(
        &self,
        lo: &[u8],
        hi: &[u8],
        mut visit: impl FnMut(&[u8], u64) -> bool,
    ) -> Result<()> {
        assert_eq!(lo.len(), self.key_width, "lo width mismatch");
        assert_eq!(hi.len(), self.key_width, "hi width mismatch");
        self.metrics.range_scans.inc();
        if lo > hi || self.count == 0 {
            return Ok(());
        }
        let mut pid = self.root;
        for _ in 0..self.height {
            pid = self.child_for_range_start(pid, lo)?;
        }
        let kw = self.key_width;
        let esz = kw + 8;
        let mut buf = PageBuf::zeroed();
        loop {
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let b = buf.bytes();
            debug_assert_eq!(b[0], KIND_LEAF);
            let n = page::get_u16(b, 2) as usize;
            let next = page::get_u32(b, 4);
            let start = leaf_lower_bound(b, n, kw, lo);
            for i in start..n {
                let off = HDR + i * esz;
                let key = &b[off..off + kw];
                if key > hi {
                    return Ok(());
                }
                let val = page::get_u64(b, off + kw);
                self.metrics.entries_scanned.inc();
                if !visit(key, val) {
                    return Ok(());
                }
            }
            if next == NO_PAGE {
                return Ok(());
            }
            pid = next;
        }
    }

    /// Runs many inclusive range probes in one batched pass.
    ///
    /// Semantically identical to calling [`BTree::range`] once per range
    /// in ascending-`lo` order (ties keep their submission order): the
    /// visitor sees `(range_index, key, value)` triples with entries in
    /// key order within each range, and entries shared by overlapping
    /// ranges are delivered once per range. The implementation descends
    /// root-to-leaf only when it must and otherwise advances a
    /// [`LeafCursor`] along the leaf-sibling chain, peeking at most one
    /// sibling ahead before re-descending — classic batched B-tree access
    /// (Graefe, "Modern B-Tree Techniques").
    ///
    /// Returning `false` from the visitor stops the whole batch.
    ///
    /// # Panics
    ///
    /// Panics when a bound's width differs from the tree's key width.
    pub fn search_batch(
        &self,
        ranges: &[(&[u8], &[u8])],
        mut visit: impl FnMut(usize, &[u8], u64) -> bool,
    ) -> Result<()> {
        for (lo, hi) in ranges {
            assert_eq!(lo.len(), self.key_width, "lo width mismatch");
            assert_eq!(hi.len(), self.key_width, "hi width mismatch");
        }
        self.metrics.probe_batches.inc();
        self.metrics.probe_ranges.add(ranges.len() as u64);
        if self.count == 0 || ranges.is_empty() {
            return Ok(());
        }
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by(|&a, &b| ranges[a].0.cmp(ranges[b].0)); // stable: ties keep order

        let kw = self.key_width;
        let esz = kw + 8;
        let mut cur = LeafCursor::new();
        let mut have_leaf = false;
        for &ri in &order {
            let (lo, hi) = ranges[ri];
            if lo > hi {
                continue;
            }
            // Position `cur` on the leftmost leaf that can contain `lo`.
            // Reusing the current leaf is sound only when `lo` is strictly
            // above its first key: every earlier leaf then holds only keys
            // `< lo`, so no duplicate run of `lo` can start before it.
            let positioned = |c: &LeafCursor| {
                c.n > 0 && lo > c.first_key(kw) && (lo <= c.last_key(kw, esz) || c.next == NO_PAGE)
            };
            let mut ok = have_leaf && positioned(&cur);
            if !ok && have_leaf && cur.n > 0 && lo > cur.first_key(kw) && cur.next != NO_PAGE {
                // Peek one sibling ahead before paying a full descent.
                self.metrics.probe_leaf_hops.inc();
                let next = cur.next;
                cur.load(&self.pool, self.fid, next)?;
                ok = positioned(&cur);
            }
            if !ok {
                self.metrics.probe_descents.inc();
                let mut pid = self.root;
                for _ in 0..self.height {
                    pid = self.child_for_range_start(pid, lo)?;
                }
                cur.load(&self.pool, self.fid, pid)?;
                have_leaf = true;
            }
            // Scan `[lo, hi]` from `cur` along the sibling chain.
            let mut done = false;
            while !done {
                let b = cur.buf.bytes();
                let start = leaf_lower_bound(b, cur.n, kw, lo);
                for i in start..cur.n {
                    let off = HDR + i * esz;
                    let key = &b[off..off + kw];
                    if key > hi {
                        done = true;
                        break;
                    }
                    self.metrics.entries_scanned.inc();
                    if !visit(ri, key, page::get_u64(b, off + kw)) {
                        return Ok(());
                    }
                }
                if !done {
                    if cur.next == NO_PAGE {
                        done = true;
                    } else {
                        let next = cur.next;
                        cur.load(&self.pool, self.fid, next)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Finds the child of internal node `pid` that covers `key`.
    fn child_for(&self, pid: PageId, key: &[u8]) -> Result<PageId> {
        let kw = self.key_width;
        self.pool.with_page(self.fid, pid, |b| {
            debug_assert_eq!(b[0], KIND_INTERNAL);
            let n = page::get_u16(b, 2) as usize;
            // Largest entry with key <= search key, else child0.
            let pos = internal_upper_bound(b, n, kw, key);
            if pos == 0 {
                page::get_u32(b, 4)
            } else {
                let off = HDR + (pos - 1) * (kw + 4);
                page::get_u32(b, off + kw)
            }
        })
    }

    /// Like [`Self::child_for`], but descends to the *leftmost* child that
    /// can contain `key`: separators equal to `key` send the search left,
    /// so a range scan starting at `key` sees duplicates that ended up in
    /// an earlier leaf after a split.
    fn child_for_range_start(&self, pid: PageId, key: &[u8]) -> Result<PageId> {
        let kw = self.key_width;
        self.pool.with_page(self.fid, pid, |b| {
            debug_assert_eq!(b[0], KIND_INTERNAL);
            let n = page::get_u16(b, 2) as usize;
            // Count separators strictly below the key.
            let esz = kw + 4;
            let (mut lo, mut hi) = (0usize, n);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let off = HDR + mid * esz;
                if &b[off..off + kw] < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo == 0 {
                page::get_u32(b, 4)
            } else {
                let off = HDR + (lo - 1) * esz;
                page::get_u32(b, off + kw)
            }
        })
    }

    /// Splits the full leaf `pid` while inserting (key, val); returns the
    /// separator (first key of the new right leaf) and the new page id.
    fn split_leaf(&mut self, pid: PageId, key: &[u8], val: u64) -> Result<(Vec<u8>, PageId)> {
        let kw = self.key_width;
        let esz = kw + 8;
        let mut old = PageBuf::zeroed();
        self.pool.read_page_into(self.fid, pid, &mut old)?;
        let n = page::get_u16(old.bytes(), 2) as usize;
        let next = page::get_u32(old.bytes(), 4);

        // Gather all n + 1 entries in order.
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::with_capacity(n + 1);
        let pos = leaf_lower_bound(old.bytes(), n, kw, key);
        for i in 0..n {
            let off = HDR + i * esz;
            if i == pos {
                entries.push((key.to_vec(), val));
            }
            entries.push((
                old.bytes()[off..off + kw].to_vec(),
                page::get_u64(old.bytes(), off + kw),
            ));
        }
        if pos == n {
            entries.push((key.to_vec(), val));
        }

        let mid = entries.len() / 2;
        let new_pid = self.pool.allocate_page(self.fid)?;
        // Rewrite the left page.
        self.pool.with_page_mut(self.fid, pid, |b| {
            b[0] = KIND_LEAF;
            page::put_u16(b, 2, mid as u16);
            page::put_u32(b, 4, new_pid);
            for (i, (k, v)) in entries[..mid].iter().enumerate() {
                let off = HDR + i * esz;
                b[off..off + kw].copy_from_slice(k);
                page::put_u64(b, off + kw, *v);
            }
        })?;
        // Fill the right page.
        self.pool.with_page_mut(self.fid, new_pid, |b| {
            b[0] = KIND_LEAF;
            page::put_u16(b, 2, (entries.len() - mid) as u16);
            page::put_u32(b, 4, next);
            for (i, (k, v)) in entries[mid..].iter().enumerate() {
                let off = HDR + i * esz;
                b[off..off + kw].copy_from_slice(k);
                page::put_u64(b, off + kw, *v);
            }
        })?;
        Ok((entries[mid].0.clone(), new_pid))
    }

    /// Inserts (sep, child) into internal node `pid`; splits it when full,
    /// returning the promoted separator and new node.
    fn internal_insert(
        &mut self,
        pid: PageId,
        sep: &[u8],
        child: PageId,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let kw = self.key_width;
        let esz = kw + 4;
        let cap = self.int_cap;
        let done = self.pool.with_page_mut(self.fid, pid, |b| {
            let n = page::get_u16(b, 2) as usize;
            if n >= cap {
                return false;
            }
            let pos = internal_upper_bound(b, n, kw, sep);
            let start = HDR + pos * esz;
            b.copy_within(start..HDR + n * esz, start + esz);
            b[start..start + kw].copy_from_slice(sep);
            page::put_u32(b, start + kw, child);
            page::put_u16(b, 2, (n + 1) as u16);
            true
        })?;
        if done {
            return Ok(None);
        }
        // Split: gather entries + child0, insert, promote the middle key.
        let mut old = PageBuf::zeroed();
        self.pool.read_page_into(self.fid, pid, &mut old)?;
        let n = page::get_u16(old.bytes(), 2) as usize;
        let child0 = page::get_u32(old.bytes(), 4);
        let mut entries: Vec<(Vec<u8>, PageId)> = Vec::with_capacity(n + 1);
        let pos = internal_upper_bound(old.bytes(), n, kw, sep);
        for i in 0..n {
            let off = HDR + i * esz;
            if i == pos {
                entries.push((sep.to_vec(), child));
            }
            entries.push((
                old.bytes()[off..off + kw].to_vec(),
                page::get_u32(old.bytes(), off + kw),
            ));
        }
        if pos == n {
            entries.push((sep.to_vec(), child));
        }

        let mid = entries.len() / 2;
        let (promoted, right_child0) = entries[mid].clone();
        let new_pid = self.pool.allocate_page(self.fid)?;
        self.pool.with_page_mut(self.fid, pid, |b| {
            b[0] = KIND_INTERNAL;
            page::put_u16(b, 2, mid as u16);
            page::put_u32(b, 4, child0);
            for (i, (k, c)) in entries[..mid].iter().enumerate() {
                let off = HDR + i * esz;
                b[off..off + kw].copy_from_slice(k);
                page::put_u32(b, off + kw, *c);
            }
        })?;
        let right = &entries[mid + 1..];
        self.pool.with_page_mut(self.fid, new_pid, |b| {
            b[0] = KIND_INTERNAL;
            page::put_u16(b, 2, right.len() as u16);
            page::put_u32(b, 4, right_child0);
            for (i, (k, c)) in right.iter().enumerate() {
                let off = HDR + i * esz;
                b[off..off + kw].copy_from_slice(k);
                page::put_u32(b, off + kw, *c);
            }
        })?;
        Ok(Some((promoted, new_pid)))
    }
}

/// First leaf index whose key is `>= key`.
fn leaf_lower_bound(b: &[u8], n: usize, kw: usize, key: &[u8]) -> usize {
    let esz = kw + 8;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let off = HDR + mid * esz;
        if &b[off..off + kw] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Number of internal entries with key `<= key` (insertion point for
/// separators, and the child selector during descent).
fn internal_upper_bound(b: &[u8], n: usize, kw: usize, key: &[u8]) -> usize {
    let esz = kw + 4;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let off = HDR + mid * esz;
        if &b[off..off + kw] <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagefile::PageFile;
    use std::path::PathBuf;

    fn setup(name: &str, kw: usize) -> (Arc<BufferPool>, BTree, PathBuf) {
        let p = std::env::temp_dir().join(format!("pagestore-bt-{}-{name}", std::process::id()));
        let pool = Arc::new(BufferPool::new(128));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let bt = BTree::create(pool.clone(), fid, kw).unwrap();
        (pool, bt, p)
    }

    fn key8(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }

    #[test]
    fn insert_and_full_range() {
        let (_pool, mut bt, p) = setup("basic", 8);
        for i in (0..1000u64).rev() {
            bt.insert(&key8(i), i * 10).unwrap();
        }
        assert_eq!(bt.len(), 1000);
        let mut seen = Vec::new();
        bt.range(&key8(0), &key8(u64::MAX), |k, v| {
            seen.push((u64::from_be_bytes(k.try_into().unwrap()), v));
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 1000);
        for (i, &(k, v)) in seen.iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, i as u64 * 10);
        }
        assert!(bt.height() >= 1, "1000 keys of width 8 must split");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn partial_ranges_inclusive() {
        let (_pool, mut bt, p) = setup("ranges", 8);
        for i in 0..500u64 {
            bt.insert(&key8(i * 2), i).unwrap(); // even keys only
        }
        let mut seen = Vec::new();
        bt.range(&key8(10), &key8(20), |k, _| {
            seen.push(u64::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, vec![10, 12, 14, 16, 18, 20]);
        // Bounds not present in the tree.
        seen.clear();
        bt.range(&key8(11), &key8(19), |k, _| {
            seen.push(u64::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, vec![12, 14, 16, 18]);
        // Empty and inverted ranges.
        seen.clear();
        bt.range(&key8(1001), &key8(2000), |k, _| {
            seen.push(u64::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert!(seen.is_empty());
        bt.range(&key8(20), &key8(10), |_, _| {
            panic!("inverted range must visit nothing")
        })
        .unwrap();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn early_exit() {
        let (_pool, mut bt, p) = setup("early", 8);
        for i in 0..100u64 {
            bt.insert(&key8(i), i).unwrap();
        }
        let mut n = 0;
        bt.range(&key8(0), &key8(u64::MAX), |_, _| {
            n += 1;
            n < 5
        })
        .unwrap();
        assert_eq!(n, 5);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn duplicate_keys_kept() {
        let (_pool, mut bt, p) = setup("dups", 8);
        for i in 0..300u64 {
            bt.insert(&key8(7), i).unwrap();
        }
        let mut vals = Vec::new();
        bt.range(&key8(7), &key8(7), |_, v| {
            vals.push(v);
            true
        })
        .unwrap();
        assert_eq!(vals.len(), 300);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn model_check_against_btreemap() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        use std::collections::BTreeMap;
        let (_pool, mut bt, p) = setup("model", 16);
        let mut rng = StdRng::seed_from_u64(99);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for i in 0..20_000u64 {
            let mut k = vec![0u8; 16];
            rng.fill(&mut k[..8]);
            k[8..].copy_from_slice(&i.to_be_bytes()); // unique suffix
            bt.insert(&k, i).unwrap();
            model.insert(k, i);
        }
        assert_eq!(bt.len(), model.len() as u64);
        // Compare 50 random ranges.
        for _ in 0..50 {
            let mut lo = vec![0u8; 16];
            let mut hi = vec![0u8; 16];
            rng.fill(&mut lo[..2]);
            rng.fill(&mut hi[..2]);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            for b in hi[2..].iter_mut() {
                *b = 0xFF;
            }
            let mut got = Vec::new();
            bt.range(&lo, &hi, |k, v| {
                got.push((k.to_vec(), v));
                true
            })
            .unwrap();
            let want: Vec<(Vec<u8>, u64)> = model
                .range(lo.clone()..=hi.clone())
                .map(|(k, &v)| (k.clone(), v))
                .collect();
            assert_eq!(got, want);
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopen_preserves_tree() {
        let p = std::env::temp_dir().join(format!("pagestore-bt-{}-reopen", std::process::id()));
        {
            let pool = Arc::new(BufferPool::new(128));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let mut bt = BTree::create(pool.clone(), fid, 8).unwrap();
            for i in 0..5000u64 {
                bt.insert(&key8(i), i).unwrap();
            }
            bt.sync_meta().unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(128));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let bt = BTree::open(pool, fid).unwrap();
        assert_eq!(bt.len(), 5000);
        assert_eq!(bt.key_width(), 8);
        let mut n = 0u64;
        bt.range(&key8(0), &key8(u64::MAX), |k, _| {
            assert_eq!(u64::from_be_bytes(k.try_into().unwrap()), n);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 5000);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wide_keys_split_internals() {
        // Wide keys force small fanout, exercising multi-level splits.
        let (_pool, mut bt, p) = setup("wide", 200);
        let mut key = vec![0u8; 200];
        for i in 0..3000u64 {
            key[..8].copy_from_slice(&i.to_be_bytes());
            bt.insert(&key, i).unwrap();
        }
        assert!(bt.height() >= 2, "height {}", bt.height());
        let mut n = 0u64;
        let lo = vec![0u8; 200];
        let hi = vec![0xFFu8; 200];
        bt.range(&lo, &hi, |k, v| {
            assert_eq!(u64::from_be_bytes(k[..8].try_into().unwrap()), n);
            assert_eq!(v, n);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 3000);
        std::fs::remove_file(&p).ok();
    }

    /// `search_batch` over random key batches is observationally identical
    /// to issuing one `range` per probe in ascending-`lo` order: same
    /// `(range_index, key, value)` stream, duplicates and overlapping
    /// ranges included.
    #[test]
    fn search_batch_matches_single_probes() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let (_pool, mut bt, p) = setup("batchprobe", 8);
        let mut rng = StdRng::seed_from_u64(20_080_325);
        // Clustered keys with heavy duplication so runs span leaf splits.
        for i in 0..8_000u64 {
            let k: u64 = rng.random_range(0u64..600);
            bt.insert(&key8(k), i).unwrap();
        }
        for trial in 0..30 {
            let nranges: usize = rng.random_range(1usize..24);
            let mut bounds = Vec::with_capacity(nranges);
            for _ in 0..nranges {
                let a: u64 = rng.random_range(0u64..650);
                let b: u64 = rng.random_range(0u64..650);
                // Keep a few inverted ranges: they must visit nothing.
                if rng.random_range(0u32..8) == 0 {
                    bounds.push((a.max(b), a.min(b)));
                } else {
                    bounds.push((a.min(b), a.max(b)));
                }
            }
            let keys: Vec<([u8; 8], [u8; 8])> =
                bounds.iter().map(|&(a, b)| (key8(a), key8(b))).collect();
            let ranges: Vec<(&[u8], &[u8])> = keys
                .iter()
                .map(|(lo, hi)| (lo.as_slice(), hi.as_slice()))
                .collect();
            let mut batched = Vec::new();
            bt.search_batch(&ranges, |ri, k, v| {
                batched.push((ri, k.to_vec(), v));
                true
            })
            .unwrap();
            // Reference: independent probes, ascending lo, ties in
            // submission order (stable sort).
            let mut order: Vec<usize> = (0..ranges.len()).collect();
            order.sort_by_key(|&i| bounds[i].0);
            let mut single = Vec::new();
            for &ri in &order {
                let (lo, hi) = ranges[ri];
                if lo > hi {
                    continue;
                }
                bt.range(lo, hi, |k, v| {
                    single.push((ri, k.to_vec(), v));
                    true
                })
                .unwrap();
            }
            assert_eq!(batched, single, "trial {trial} diverged");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn search_batch_early_exit_and_empty_tree() {
        let (_pool, mut bt, p) = setup("batchstop", 8);
        let lo = key8(0);
        let hi = key8(u64::MAX);
        let ranges: Vec<(&[u8], &[u8])> = vec![(&lo, &hi), (&lo, &hi)];
        // Empty tree: visitor never called.
        bt.search_batch(&ranges, |_, _, _| panic!("empty tree must visit nothing"))
            .unwrap();
        for i in 0..100u64 {
            bt.insert(&key8(i), i).unwrap();
        }
        // `false` from the visitor stops the whole batch, not just one range.
        let mut n = 0;
        bt.search_batch(&ranges, |_, _, _| {
            n += 1;
            n < 7
        })
        .unwrap();
        assert_eq!(n, 7);
        std::fs::remove_file(&p).ok();
    }
}

#[cfg(test)]
mod bulk_tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::pagefile::PageFile;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn setup(name: &str) -> (Arc<BufferPool>, FileId, PathBuf) {
        let p = std::env::temp_dir().join(format!("pagestore-bulk-{}-{name}", std::process::id()));
        let pool = Arc::new(BufferPool::new(256));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        (pool, fid, p)
    }

    fn key8(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let (pool, fid, p) = setup("match");
        let keys: Vec<[u8; 8]> = (0..50_000u64).map(key8).collect();
        let bt = BTree::bulk_load(
            pool.clone(),
            fid,
            8,
            keys.iter()
                .map(|k| (k.as_slice(), u64::from_be_bytes(*k) * 3)),
        )
        .unwrap();
        assert_eq!(bt.len(), 50_000);
        assert!(bt.height() >= 1);
        // Full scan returns everything in order.
        let mut n = 0u64;
        bt.range(&key8(0), &key8(u64::MAX), |k, v| {
            assert_eq!(u64::from_be_bytes(k.try_into().unwrap()), n);
            assert_eq!(v, n * 3);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 50_000);
        // Random sub-ranges agree with expectations.
        let mut got = Vec::new();
        bt.range(&key8(777), &key8(790), |k, _| {
            got.push(u64::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(got, (777..=790).collect::<Vec<_>>());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let (pool, fid, p) = setup("tiny");
        let bt = BTree::bulk_load(pool, fid, 8, std::iter::empty()).unwrap();
        assert_eq!(bt.len(), 0);
        assert_eq!(bt.height(), 0);
        bt.range(&key8(0), &key8(10), |_, _| panic!("empty"))
            .unwrap();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts() {
        let (pool, fid, p) = setup("insert-after");
        let evens: Vec<[u8; 8]> = (0..2000u64).map(|i| key8(i * 2)).collect();
        let mut bt =
            BTree::bulk_load(pool, fid, 8, evens.iter().map(|k| (k.as_slice(), 0))).unwrap();
        for i in 0..2000u64 {
            bt.insert(&key8(i * 2 + 1), 1).unwrap();
        }
        assert_eq!(bt.len(), 4000);
        let mut n = 0u64;
        bt.range(&key8(0), &key8(u64::MAX), |k, _| {
            assert_eq!(u64::from_be_bytes(k.try_into().unwrap()), n);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 4000);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_load_rejects_unsorted() {
        let (pool, fid, _p) = setup("unsorted");
        let keys = [key8(5), key8(3)];
        let _ = BTree::bulk_load(pool, fid, 8, keys.iter().map(|k| (k.as_slice(), 0)));
    }

    #[test]
    fn bulk_load_reopen() {
        let p = std::env::temp_dir().join(format!("pagestore-bulk-{}-reopen", std::process::id()));
        {
            let pool = Arc::new(BufferPool::new(256));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let keys: Vec<[u8; 8]> = (0..10_000u64).map(key8).collect();
            let bt = BTree::bulk_load(pool.clone(), fid, 8, keys.iter().map(|k| (k.as_slice(), 7)))
                .unwrap();
            bt.sync_meta().unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(256));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let bt = BTree::open(pool, fid).unwrap();
        assert_eq!(bt.len(), 10_000);
        let mut n = 0;
        bt.range(&key8(0), &key8(u64::MAX), |_, v| {
            assert_eq!(v, 7);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 10_000);
        std::fs::remove_file(&p).ok();
    }
}
