//! The [`SegDiffIndex`]: online ingest plus search.

use crate::cache::{CacheKey, QueryCache};
use crate::config::SegDiffConfig;
use crate::ingest::{FeatureExtractor, FeatureRow};
use crate::query::{run_feature_query, QueryPlan, QueryStats};
use crate::result::SegmentPair;
use crate::stats::{CornerHistogram, SegDiffStats};
use crate::tables::{
    encode_row, index_specs, table_cols, table_name, DROP_TABLES, JUMP_TABLES, SEGMENTS_TABLE,
};
use featurespace::{QueryRegion, SearchKind};
use pagestore::{Database, RecoveryReport, Result, StoreError, Table, TableSpec};
use segmentation::{PiecewiseLinear, Segment, SlidingWindowSegmenter};
use sensorgen::TimeSeries;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The SegDiff framework: segmentation → feature extraction → relational
/// storage → range-query search.
///
/// Built online: call [`SegDiffIndex::push`] per observation (or
/// [`SegDiffIndex::ingest_series`] for a whole series) and
/// [`SegDiffIndex::finish`] once at the end. Then search with
/// [`SegDiffIndex::query`]; call [`SegDiffIndex::build_indexes`] first if
/// you want [`QueryPlan::Index`] execution.
pub struct SegDiffIndex {
    dir: PathBuf,
    config: SegDiffConfig,
    db: Arc<Database>,
    drop_tables: [Arc<Table>; 3],
    jump_tables: [Arc<Table>; 3],
    segments_table: Arc<Table>,
    segmenter: SlidingWindowSegmenter,
    extractor: FeatureExtractor,
    rows_buf: Vec<FeatureRow>,
    colbuf: Vec<f64>,
    n_observations: u64,
    n_segments: u64,
    drop_hist: CornerHistogram,
    jump_hist: CornerHistogram,
    metrics: IngestMetrics,
    /// Bumped on every ingest mutation and on `build_indexes`; tags
    /// result-cache keys so stale entries can never be returned.
    epoch: AtomicU64,
    cache: QueryCache,
    /// Standing-query hook: committed features are pushed here, tagged
    /// with this index's sensor id.
    subs: Option<(Arc<crate::subscribe::SubscriptionRegistry>, u32)>,
}

/// Global-registry counters for the ingest pipeline (`ingest.*`),
/// shared by every index in the process.
struct IngestMetrics {
    observations: Arc<obs::Counter>,
    segments: Arc<obs::Counter>,
    feature_rows: Arc<obs::Counter>,
}

impl IngestMetrics {
    fn new() -> Self {
        let r = obs::global();
        IngestMetrics {
            observations: r.counter("ingest.observations"),
            segments: r.counter("ingest.segments"),
            feature_rows: r.counter("ingest.feature_rows"),
        }
    }
}

impl SegDiffIndex {
    /// Creates a new index stored under `dir`.
    ///
    /// With `config.durable` (the default) the storage engine write-ahead
    /// logs every page write; each stored segment then ends in a commit
    /// record, so a crash mid-ingest recovers to the last completed segment.
    pub fn create(dir: &Path, config: SegDiffConfig) -> Result<Self> {
        let db = Database::create_with(dir, config.pool_pages, config.durability())?;
        let mk = |db: &Arc<Database>, name: &str, corners: usize| -> Result<Arc<Table>> {
            db.create_table(TableSpec::new(name, &table_cols(corners)))
        };
        let drop_tables = [
            mk(&db, DROP_TABLES[0], 1)?,
            mk(&db, DROP_TABLES[1], 2)?,
            mk(&db, DROP_TABLES[2], 3)?,
        ];
        let jump_tables = [
            mk(&db, JUMP_TABLES[0], 1)?,
            mk(&db, JUMP_TABLES[1], 2)?,
            mk(&db, JUMP_TABLES[2], 3)?,
        ];
        let segments_table = db.create_table(TableSpec::new(
            SEGMENTS_TABLE,
            &["t_start", "v_start", "t_end", "v_end"],
        ))?;
        let cache = QueryCache::new(config.cache_entries);
        let idx = Self {
            dir: dir.to_path_buf(),
            segmenter: SlidingWindowSegmenter::new(config.epsilon),
            extractor: FeatureExtractor::new(config.epsilon, config.window),
            config,
            db,
            drop_tables,
            jump_tables,
            segments_table,
            rows_buf: Vec::new(),
            colbuf: Vec::new(),
            n_observations: 0,
            n_segments: 0,
            drop_hist: CornerHistogram::default(),
            jump_hist: CornerHistogram::default(),
            metrics: IngestMetrics::new(),
            epoch: AtomicU64::new(0),
            cache,
            subs: None,
        };
        // Make the empty index durable right away: a crash after `create`
        // must reopen cleanly, not leave half a catalog behind.
        idx.write_meta()?;
        if idx.db.wal().is_some() {
            idx.db.commit(idx.meta_text().as_bytes())?;
            idx.db.flush()?;
        }
        Ok(idx)
    }

    /// Reopens an index previously persisted with [`SegDiffIndex::finish`].
    ///
    /// Querying works immediately. Ingestion also resumes: the segmenter is
    /// re-anchored at the end point of the last stored segment and the
    /// extractor window is re-primed from the stored segments, so pushing
    /// further observations continues the online pipeline. (The restart can
    /// split what would have been one trailing segment into two — harmless
    /// for the guarantees, which only require the `ε/2` bound.)
    ///
    /// If the storage engine detected an unclean shutdown, its WAL recovery
    /// has already rolled the tables back to the last commit point; the
    /// metadata snapshot carried by that commit record then overrides
    /// `segdiff.meta` (which may be from a different instant) and is written
    /// back to disk, so the whole index — tables, B+trees, metadata — is one
    /// consistent prefix of the ingest history.
    pub fn open(dir: &Path, pool_pages: usize) -> Result<Self> {
        let db = Database::open(dir, pool_pages)?;
        let unclean = db.recovery_report().is_some_and(|r| !r.clean);
        let blob_text = db.recovery_report().and_then(|r| {
            std::str::from_utf8(&r.committed.blob)
                .ok()
                .filter(|s| !s.is_empty())
                .map(String::from)
        });
        let disk_meta = std::fs::read_to_string(Self::meta_path(dir)).ok();
        let (meta, rewrite_meta) = match (unclean, blob_text, disk_meta) {
            (true, Some(blob), _) => (blob, true),
            (_, _, Some(text)) => (text, false),
            (_, Some(blob), None) => (blob, true),
            (_, None, None) => {
                return Err(StoreError::NotFound(format!(
                    "segdiff meta in {}",
                    dir.display()
                )))
            }
        };
        let mut epsilon = None;
        let mut window = None;
        let mut n_observations = 0u64;
        let mut drop_hist = CornerHistogram::default();
        let mut jump_hist = CornerHistogram::default();
        for line in meta.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["epsilon", v] => epsilon = v.parse().ok(),
                ["window", v] => window = v.parse().ok(),
                ["n_observations", v] => n_observations = v.parse().unwrap_or(0),
                ["drop_hist", a, b, c] => {
                    drop_hist.counts = [
                        a.parse().unwrap_or(0),
                        b.parse().unwrap_or(0),
                        c.parse().unwrap_or(0),
                    ]
                }
                ["jump_hist", a, b, c] => {
                    jump_hist.counts = [
                        a.parse().unwrap_or(0),
                        b.parse().unwrap_or(0),
                        c.parse().unwrap_or(0),
                    ]
                }
                _ => {}
            }
        }
        let (Some(epsilon), Some(window)) = (epsilon, window) else {
            return Err(StoreError::Corrupt(
                "segdiff meta is missing epsilon/window".into(),
            ));
        };
        let config = SegDiffConfig::default()
            .with_epsilon(epsilon)
            .with_window(window)
            .with_pool_pages(pool_pages)
            .with_durable(db.wal().is_some());
        let get = |name: &str| db.table(name);
        let drop_tables = [
            get(DROP_TABLES[0])?,
            get(DROP_TABLES[1])?,
            get(DROP_TABLES[2])?,
        ];
        let jump_tables = [
            get(JUMP_TABLES[0])?,
            get(JUMP_TABLES[1])?,
            get(JUMP_TABLES[2])?,
        ];
        let segments_table = get(SEGMENTS_TABLE)?;

        let cache = QueryCache::new(config.cache_entries);
        let mut idx = Self {
            dir: dir.to_path_buf(),
            segmenter: SlidingWindowSegmenter::new(epsilon),
            extractor: FeatureExtractor::new(epsilon, window),
            config,
            db,
            drop_tables,
            jump_tables,
            segments_table,
            rows_buf: Vec::new(),
            colbuf: Vec::new(),
            n_observations,
            n_segments: 0,
            drop_hist,
            jump_hist,
            metrics: IngestMetrics::new(),
            epoch: AtomicU64::new(0),
            cache,
            subs: None,
        };
        if rewrite_meta {
            idx.write_meta()?;
        }
        // Zone maps are derived data, like the B+trees: any sidecar that
        // was missing or invalidated (e.g. by WAL-recovery truncation)
        // is rebuilt here so sequential scans can prune immediately.
        idx.ensure_zone_maps()?;
        // Re-prime the extractor window and re-anchor the segmenter.
        let segments = idx.segments()?;
        idx.n_segments = segments.len() as u64;
        if let Some(last) = segments.last() {
            let win_start = last.t_end - window;
            for seg in segments.iter().filter(|s| s.t_end > win_start) {
                idx.extractor.prime_segment(*seg);
            }
            idx.segmenter.push(last.t_end, last.v_end);
        }
        Ok(idx)
    }

    fn meta_path(dir: &Path) -> PathBuf {
        dir.join("segdiff.meta")
    }

    /// The metadata snapshot as text — the `segdiff.meta` file body, and
    /// also the application blob carried by every WAL commit record.
    fn meta_text(&self) -> String {
        let h = &self.drop_hist.counts;
        let j = &self.jump_hist.counts;
        format!(
            "epsilon {}
window {}
n_observations {}
drop_hist {} {} {}
jump_hist {} {} {}
",
            self.config.epsilon,
            self.config.window,
            self.n_observations,
            h[0],
            h[1],
            h[2],
            j[0],
            j[1],
            j[2],
        )
    }

    fn write_meta(&self) -> Result<()> {
        // Atomic replace: a crash mid-write must never leave a truncated
        // meta file next to good tables.
        let tmp = self.dir.join("segdiff.meta.tmp");
        std::fs::write(&tmp, self.meta_text())?;
        if self.db.durability().sync {
            std::fs::File::open(&tmp)?.sync_all()?;
        }
        std::fs::rename(&tmp, Self::meta_path(&self.dir))?;
        if self.db.durability().sync {
            pagestore::wal::sync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &SegDiffConfig {
        &self.config
    }

    /// The underlying database (for experiment instrumentation).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Attaches a standing-query registry: from now on every committed
    /// segment's feature rows are evaluated against the registered
    /// regions (tagged with `sensor`) and matches are published right
    /// after the segment's WAL commit — so a published notification
    /// trails durability by at most one group-commit window.
    pub fn attach_subscriptions(
        &mut self,
        registry: Arc<crate::subscribe::SubscriptionRegistry>,
        sensor: u32,
    ) {
        self.subs = Some((registry, sensor));
    }

    /// Ingests one observation (online path: segmentation and feature
    /// extraction happen incrementally).
    pub fn push(&mut self, t: f64, v: f64) -> Result<()> {
        self.n_observations += 1;
        self.metrics.observations.inc();
        if let Some(seg) = self.segmenter.push(t, v) {
            self.store_segment(seg)?;
        }
        Ok(())
    }

    /// Ingests a whole series through the online path.
    pub fn ingest_series(&mut self, series: &TimeSeries) -> Result<()> {
        let span = obs::span("ingest.series");
        for (t, v) in series.iter() {
            self.push(t, v)?;
        }
        span.record("observations", series.len());
        obs::info!(
            "ingested {} observations into {}",
            series.len(),
            self.dir.display()
        );
        Ok(())
    }

    /// Ingests a pre-computed piecewise-linear approximation (offline
    /// segmenters / ablation studies). `n_observations` is the number of
    /// raw observations the approximation represents, used for the
    /// compression-rate statistic.
    pub fn ingest_pla(&mut self, pla: &PiecewiseLinear, n_observations: u64) -> Result<()> {
        self.n_observations += n_observations;
        for &seg in pla.segments() {
            self.store_segment(seg)?;
        }
        Ok(())
    }

    /// Flushes the trailing open segment and persists everything, including
    /// the metadata needed by [`SegDiffIndex::open`].
    pub fn finish(&mut self) -> Result<()> {
        let _span = obs::span("ingest.finish");
        if let Some(seg) = self.segmenter.finish() {
            self.store_segment(seg)?;
        }
        // Commit once more so the checkpoint written by `flush` carries the
        // final observation count, then persist the meta file.
        if self.db.wal().is_some() {
            self.db.commit(self.meta_text().as_bytes())?;
        }
        self.write_meta()?;
        self.db.flush()
    }

    fn store_segment(&mut self, seg: Segment) -> Result<()> {
        self.bump_epoch();
        self.n_segments += 1;
        self.metrics.segments.inc();
        self.segments_table
            .insert(&[seg.t_start, seg.v_start, seg.t_end, seg.v_end])?;
        self.rows_buf.clear();
        let mut rows = std::mem::take(&mut self.rows_buf);
        self.extractor.push_segment(seg, &mut rows);
        self.metrics.feature_rows.add(rows.len() as u64);
        for row in &rows {
            self.insert_feature_row(row)?;
        }
        self.rows_buf = rows;
        // Segment boundaries are the commit points: recovery always lands
        // on a state where segment, feature, and meta data agree.
        if self.db.wal().is_some() {
            self.db.commit(self.meta_text().as_bytes())?;
        }
        // Standing queries see the rows only after the commit point, so a
        // notification can never describe a feature a crash would lose by
        // more than the group-commit deferral window.
        if let Some((subs, sensor)) = &self.subs {
            if !self.rows_buf.is_empty() {
                subs.on_features(*sensor, &self.rows_buf, obs::unix_ms());
                subs.flush();
            }
        }
        Ok(())
    }

    fn insert_feature_row(&mut self, row: &FeatureRow) -> Result<()> {
        let corners = row.boundary.len();
        match row.kind {
            SearchKind::Drop => self.drop_hist.record(corners),
            SearchKind::Jump => self.jump_hist.record(corners),
        }
        encode_row(row, &mut self.colbuf);
        let table = match row.kind {
            SearchKind::Drop => &self.drop_tables[corners - 1],
            SearchKind::Jump => &self.jump_tables[corners - 1],
        };
        table.insert(&self.colbuf)?;
        Ok(())
    }

    /// Builds every point- and line-query B+tree (required for
    /// [`QueryPlan::Index`]). Idempotent: B+trees that already exist are
    /// kept (they are maintained incrementally on insert), so this is
    /// safe to call after every ingest.
    pub fn build_indexes(&self) -> Result<()> {
        let _span = obs::span("ingest.build_indexes");
        let mut built = 0u32;
        for kind in [SearchKind::Drop, SearchKind::Jump] {
            for corners in 1..=3 {
                let tname = table_name(kind, corners);
                let table = self.db.table(tname)?;
                for (iname, cols) in index_specs(corners) {
                    if table.index(&iname).is_err() {
                        self.db.create_index(tname, &iname, &cols)?;
                        built += 1;
                    }
                }
            }
        }
        obs::info!("built {built} query B+trees in {}", self.dir.display());
        self.bump_epoch();
        self.db.flush()
    }

    /// The current cache epoch. Every ingest mutation and every
    /// [`SegDiffIndex::build_indexes`] call advances it, which atomically
    /// invalidates all previously cached query results (the epoch is part
    /// of every cache key).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        // Stale entries can never hit (their epoch differs); clearing just
        // releases their memory promptly.
        self.cache.clear();
    }

    /// The epoch-tagged result cache (for observability and tests).
    pub fn result_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Like [`SegDiffIndex::query`], but consults the epoch-tagged result
    /// cache first. Returns the (shared) result set, the execution stats,
    /// and whether the answer came from the cache. A hit costs one hash
    /// lookup — no B+tree or heap access at all — and reports zero I/O.
    pub fn query_cached(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Arc<Vec<SegmentPair>>, QueryStats, bool)> {
        let key = CacheKey::new(region, plan, self.epoch());
        let start = Instant::now();
        if let Some(results) = self.cache.get(&key) {
            let stats = QueryStats {
                wall_seconds: start.elapsed().as_secs_f64(),
                results: results.len() as u64,
                ..QueryStats::default()
            };
            return Ok((results, stats, true));
        }
        let (results, stats) = self.query(region, plan)?;
        let results = Arc::new(results);
        self.cache.insert(key, Arc::clone(&results));
        Ok((results, stats, false))
    }

    /// Runs a drop or jump search; returns the matching segment pairs
    /// (time-ordered, deduplicated) and execution metrics.
    ///
    /// `region.t` must not exceed the configured window `w`.
    pub fn query(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Vec<SegmentPair>, QueryStats)> {
        assert!(
            region.t <= self.config.window,
            "query T={} exceeds window w={}",
            region.t,
            self.config.window
        );
        let tables = match region.kind {
            SearchKind::Drop => &self.drop_tables,
            SearchKind::Jump => &self.jump_tables,
        };
        let span = obs::span("query");
        let io_before = self.db.stats();
        let start = Instant::now();
        let mut rows_considered = 0u64;
        let (results, phases) =
            run_feature_query(&self.db, tables, region, plan, &mut rows_considered)?;
        let wall = start.elapsed().as_secs_f64();
        span.record("plan", plan.name());
        span.record("kind", region.kind.name());
        span.record("rows_considered", rows_considered);
        span.record("results", results.len() as u64);
        obs::debug!(
            "query kind={} plan={} T={} V={}: {} results, {} rows considered",
            region.kind.name(),
            plan.name(),
            region.t,
            region.v,
            results.len(),
            rows_considered
        );
        let stats = QueryStats {
            wall_seconds: wall,
            rows_considered,
            results: results.len() as u64,
            io: self.db.stats().since(&io_before),
            phases,
        };
        Ok((results, stats))
    }

    /// Drops the buffer pool so the next query runs cold (the paper's
    /// "cache flushed before every query" mode).
    pub fn clear_cache(&self) -> Result<()> {
        self.db.clear_cache()
    }

    /// Drops every feature table's zone map (and its sidecar file),
    /// forcing subsequent sequential scans down the unpruned path — for
    /// ablation experiments and the pruning-losslessness tests.
    pub fn drop_zone_maps(&self) {
        for t in self.drop_tables.iter().chain(self.jump_tables.iter()) {
            t.drop_zones();
        }
    }

    /// Rebuilds any missing feature-table zone map from the stored rows
    /// (idempotent) — the inverse of [`SegDiffIndex::drop_zone_maps`].
    pub fn ensure_zone_maps(&self) -> Result<()> {
        for t in self.drop_tables.iter().chain(self.jump_tables.iter()) {
            t.ensure_zones()?;
        }
        Ok(())
    }

    /// Rewrites every feature table — and the segments table — into the
    /// compressed columnar page format, rebuilding each table's B+trees
    /// and hierarchical zone map in the process (see
    /// [`pagestore::Database::rewrite_table_format`]). Row contents are
    /// preserved bit-exactly, so query results before and after are
    /// identical; ingestion continues to work on the rewritten tables.
    /// Idempotent: already-columnar tables are left untouched.
    ///
    /// Returns one `(table name, compression accounting)` entry per
    /// table, in `drop1..3, jump1..3, segments` order.
    pub fn compact_storage(&self) -> Result<Vec<(String, pagestore::CompressionStats)>> {
        let _span = obs::span("ingest.compact");
        let mut out = Vec::new();
        for t in self
            .drop_tables
            .iter()
            .chain(self.jump_tables.iter())
            .chain(std::iter::once(&self.segments_table))
        {
            if t.format() != pagestore::PageFormat::Columnar {
                self.db
                    .rewrite_table_format(t.name(), pagestore::PageFormat::Columnar)?;
            }
            out.push((t.name().to_string(), t.compression_stats()?));
        }
        // Row ids changed wholesale; cached results keyed on the old
        // epoch must never resurface.
        self.bump_epoch();
        Ok(out)
    }

    /// Size and distribution statistics.
    pub fn stats(&self) -> SegDiffStats {
        let mut n_rows = 0u64;
        let mut payload = 0u64;
        let mut heap = 0u64;
        let mut index = 0u64;
        for t in self.drop_tables.iter().chain(self.jump_tables.iter()) {
            n_rows += t.num_rows();
            payload += t.payload_bytes();
            heap += t.heap_bytes();
            index += t.index_bytes();
        }
        // Paper accounting: c2 = 5/6/7 columns per 1/2/3-corner row.
        let hist = self.drop_hist.merged(&self.jump_hist);
        let paper_bytes = 8 * (5 * hist.counts[0] + 6 * hist.counts[1] + 7 * hist.counts[2]);
        SegDiffStats {
            n_observations: self.n_observations,
            n_segments: self.n_segments,
            n_rows,
            feature_payload_bytes: payload,
            paper_feature_bytes: paper_bytes,
            heap_bytes: heap,
            index_bytes: index,
            drop_hist: self.drop_hist,
            jump_hist: self.jump_hist,
        }
    }

    /// What WAL recovery did when this index was opened, if the storage
    /// engine detected an unclean shutdown (`None` for a fresh index or a
    /// non-durable one).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.db.recovery_report()
    }

    /// LSN of the last WAL checkpoint, if write-ahead logging is on.
    pub fn last_checkpoint_lsn(&self) -> Option<u64> {
        self.db.wal().map(|w| w.last_checkpoint_lsn())
    }

    /// Verifies that the on-disk index is internally consistent — the
    /// invariant WAL recovery promises to restore.
    ///
    /// Two checks, both exact:
    ///
    /// 1. The stored segments form an unbroken chain (consecutive segments
    ///    share their boundary point — the segmenter guarantees this, and
    ///    recovery truncates whole segments, never splits one).
    /// 2. Replaying feature extraction over the stored segments reproduces
    ///    every feature table row for row. Extraction is deterministic and
    ///    insertion order equals replay order, so any divergence means the
    ///    tables and the segment log are from different instants.
    ///
    /// Returns [`StoreError::Corrupt`] describing the first violation.
    pub fn verify_consistency(&self) -> Result<()> {
        let segments = self.segments()?;
        for w in segments.windows(2) {
            if w[1].t_start != w[0].t_end || w[1].v_start != w[0].v_end {
                return Err(StoreError::Corrupt(format!(
                    "segment chain broken at t={}: segment ends ({}, {}) but next starts ({}, {})",
                    w[0].t_end, w[0].t_end, w[0].v_end, w[1].t_start, w[1].v_start
                )));
            }
        }
        let mut replay = FeatureExtractor::new(self.config.epsilon, self.config.window);
        let mut expected: Vec<Vec<Vec<f64>>> = vec![Vec::new(); 6];
        let mut rows = Vec::new();
        let mut colbuf = Vec::new();
        for seg in &segments {
            rows.clear();
            replay.push_segment(*seg, &mut rows);
            for row in &rows {
                let corners = row.boundary.len();
                let slot = match row.kind {
                    SearchKind::Drop => corners - 1,
                    SearchKind::Jump => 3 + corners - 1,
                };
                encode_row(row, &mut colbuf);
                expected[slot].push(colbuf.clone());
            }
        }
        for (slot, table) in self
            .drop_tables
            .iter()
            .chain(self.jump_tables.iter())
            .enumerate()
        {
            let want = &expected[slot];
            let mut i = 0usize;
            let mut mismatch = false;
            table.seq_scan(|_, row| {
                if want.get(i).map(Vec::as_slice) != Some(row) {
                    mismatch = true;
                    return false;
                }
                i += 1;
                true
            })?;
            if mismatch || i != want.len() {
                return Err(StoreError::Corrupt(format!(
                    "feature table {} disagrees with segment replay at row {i} \
                     ({} stored, {} expected)",
                    table.name(),
                    table.num_rows(),
                    want.len()
                )));
            }
        }
        Ok(())
    }

    /// The stored segments, in temporal order (used by examples to overlay
    /// results on the approximation).
    pub fn segments(&self) -> Result<Vec<Segment>> {
        let mut out = Vec::new();
        self.segments_table.seq_scan(|_, row| {
            out.push(Segment::new(row[0], row[1], row[2], row[3]));
            true
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorgen::HOUR;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-idx-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    /// A small series with one unmistakable 4-degree drop in 30 minutes.
    fn drop_series() -> TimeSeries {
        let mut s = TimeSeries::new();
        let mut v = 10.0;
        for i in 0..200 {
            let t = i as f64 * 300.0;
            if (80..86).contains(&i) {
                v -= 4.0 / 6.0;
            } else if (100..140).contains(&i) {
                v += 0.05;
            }
            s.push(t, v);
        }
        s
    }

    #[test]
    fn finds_planted_drop() {
        let dir = tmpdir("drop");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (results, stats) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        assert!(!results.is_empty(), "the planted drop must be found");
        assert_eq!(stats.results as usize, results.len());
        // The drop spans samples 80..86, i.e. t in [24000, 25800]; at least
        // one result must cover a pair of instants in that window.
        assert!(
            results.iter().any(|p| p.covers(24_000.0, 25_800.0)),
            "no result covers the planted drop: {results:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_plan_matches_scan_plan() {
        let dir = tmpdir("plans");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        for (t, v) in [(HOUR, -3.0), (2.0 * HOUR, -1.0), (0.5 * HOUR, -2.0)] {
            let region = QueryRegion::drop(t, v);
            let (scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
            assert_eq!(scan, indexed, "plans disagree for T={t} V={v}");
        }
        for (t, v) in [(HOUR, 1.0), (4.0 * HOUR, 2.0)] {
            let region = QueryRegion::jump(t, v);
            let (scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
            assert_eq!(scan, indexed, "jump plans disagree for T={t} V={v}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_storage_preserves_results_and_keeps_ingesting() {
        let dir = tmpdir("compact");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (before_scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        assert!(!before_scan.is_empty());
        let report = idx.compact_storage().unwrap();
        assert_eq!(report.len(), 7, "six feature tables plus segments");
        for (name, stats) in &report {
            let t = idx.db.table(name).unwrap();
            assert_eq!(t.format(), pagestore::PageFormat::Columnar, "{name}");
            // Tiny tables can regress (per-page directory overhead beats
            // the savings on a handful of rows); demand gains only where
            // there is data to compress.
            if t.num_rows() > 256 {
                assert!(stats.ratio() > 1.0, "{name}: ratio {}", stats.ratio());
            }
        }
        // Bit-identical results on both plans, and the replay check
        // still holds over the rewritten heaps.
        let (scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
        assert_eq!(before_scan, scan, "compaction changed scan results");
        assert_eq!(before_scan, indexed, "compaction changed index results");
        idx.verify_consistency().unwrap();
        // A second call is a no-op.
        idx.compact_storage().unwrap();
        // Ingestion resumes on the columnar tables after a reopen (which
        // re-anchors the segmenter, keeping the segment chain unbroken).
        // The tail picks up at the series' final value.
        idx.finish().unwrap();
        drop(idx);
        let mut idx = SegDiffIndex::open(&dir, 4096).unwrap();
        let mut tail = TimeSeries::new();
        let (_, mut v) = drop_series().iter().last().unwrap();
        for i in 200..400 {
            let t = i as f64 * 300.0;
            if (280..286).contains(&i) {
                v -= 4.0 / 6.0;
            }
            tail.push(t, v);
        }
        idx.ingest_series(&tail).unwrap();
        idx.finish().unwrap();
        idx.verify_consistency().unwrap();
        let (after, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        assert!(after.len() > before_scan.len(), "second drop must appear");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jump_search_finds_rise() {
        let dir = tmpdir("jump");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        // The slow rise adds 0.05 per 5 min = 2 degrees in 200 min: a jump
        // of 1.5 within 3 h exists, a jump of 10 does not.
        let (some, _) = idx
            .query(&QueryRegion::jump(3.0 * HOUR, 1.5), QueryPlan::SeqScan)
            .unwrap();
        assert!(!some.is_empty());
        let (none, _) = idx
            .query(&QueryRegion::jump(3.0 * HOUR, 10.0), QueryPlan::SeqScan)
            .unwrap();
        assert!(none.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_are_consistent() {
        let dir = tmpdir("stats");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        let s = idx.stats();
        assert_eq!(s.n_observations, 200);
        assert!(s.n_segments > 0);
        assert!(s.compression_rate() > 1.0);
        assert_eq!(s.n_rows, s.corner_hist().total());
        assert_eq!(
            s.feature_payload_bytes,
            // our layout: (2k + 4) cols per k-corner row
            8 * (6 * s.corner_hist().counts[0]
                + 8 * s.corner_hist().counts[1]
                + 10 * s.corner_hist().counts[2])
        );
        assert!(s.paper_feature_bytes < s.feature_payload_bytes);
        assert_eq!(idx.segments().unwrap().len() as u64, s.n_segments);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_io_deltas_tile_the_query() {
        let dir = tmpdir("phases");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        for plan in [QueryPlan::SeqScan, QueryPlan::Index] {
            idx.clear_cache().unwrap();
            let (_, stats) = idx.query(&region, plan).unwrap();
            assert!(!stats.phases.is_empty(), "{plan:?} produced no phases");
            let expected_names: &[&str] = match plan {
                QueryPlan::SeqScan => &["plan", "scan", "refine"],
                QueryPlan::Index => &["plan", "probe", "fetch", "refine"],
            };
            let names: Vec<&str> = stats.phases.iter().map(|p| p.name).collect();
            assert_eq!(names, expected_names, "{plan:?}");
            // The acceptance criterion: phase I/O deltas sum to the
            // query's total pool delta, component for component.
            let mut summed = pagestore::PoolStats::default();
            for p in &stats.phases {
                summed = summed.merged(&p.io);
            }
            assert_eq!(summed, stats.io, "{plan:?} phases do not tile the query");
            // Rows flow through the phases consistently.
            let scan = &stats.phases[1];
            assert_eq!(scan.rows_in, stats.rows_considered, "{plan:?}");
            let refine = stats.phases.last().unwrap();
            assert_eq!(refine.rows_out, stats.results, "{plan:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_emits_span_trace() {
        let dir = tmpdir("trace");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        obs::trace_begin();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (_, stats) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let trace = obs::trace_take().expect("query produced a trace");
        assert_eq!(trace.name, "query");
        let child_names: Vec<&str> = trace.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(child_names, ["query.plan", "query.scan", "query.refine"]);
        assert_eq!(
            trace.attr("results").and_then(|j| j.as_u64()),
            Some(stats.results)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_query_hits_and_matches_uncached() {
        let dir = tmpdir("cache");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (plain, _) = idx.query(&region, QueryPlan::Index).unwrap();
        let (first, _, hit1) = idx.query_cached(&region, QueryPlan::Index).unwrap();
        assert!(!hit1, "first cached query must miss");
        let (second, stats2, hit2) = idx.query_cached(&region, QueryPlan::Index).unwrap();
        assert!(hit2, "second cached query must hit");
        assert_eq!(*first, plain, "cached results must equal query()");
        assert_eq!(*second, plain);
        // A hit does no storage work at all.
        assert_eq!(stats2.io, pagestore::PoolStats::default());
        assert_eq!(stats2.rows_considered, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_bumps_epoch_and_invalidates_cache() {
        let dir = tmpdir("epoch");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        let e0 = idx.epoch();
        assert!(e0 > 0, "ingest must advance the epoch");
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (before, _, _) = idx.query_cached(&region, QueryPlan::SeqScan).unwrap();
        // Re-ingest: extend the series with a second, later drop. The
        // cached answer for the old epoch must not resurface.
        let mut tail = TimeSeries::new();
        let mut v = 12.0;
        for i in 200..400 {
            let t = i as f64 * 300.0;
            if (280..286).contains(&i) {
                v -= 4.0 / 6.0;
            }
            tail.push(t, v);
        }
        idx.ingest_series(&tail).unwrap();
        idx.finish().unwrap();
        assert!(idx.epoch() > e0, "re-ingest must advance the epoch");
        let (after, _, hit) = idx.query_cached(&region, QueryPlan::SeqScan).unwrap();
        assert!(!hit, "epoch change must force a recompute");
        assert!(
            after.len() > before.len(),
            "new drop must appear: {} vs {}",
            after.len(),
            before.len()
        );
        // And the fresh answer matches an uncached query exactly.
        let (plain, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(*after, plain);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_mid_ingest_recovers_prefix_consistent() {
        let dir = tmpdir("crash");
        {
            // group_commit 1: every segment commit is appended, so even
            // this short series leaves recoverable commit points.
            let mut idx =
                SegDiffIndex::create(&dir, SegDiffConfig::default().with_group_commit(1)).unwrap();
            idx.ingest_series(&drop_series()).unwrap();
            // No finish(): simulated crash with dirty pages still in the
            // pool and the trailing segment open.
        }
        let mut idx = SegDiffIndex::open(&dir, 4096).unwrap();
        let report = idx.recovery_report().expect("WAL recovery must run");
        assert!(!report.clean, "crash must be detected");
        idx.verify_consistency().unwrap();
        let segments = idx.segments().unwrap();
        assert!(!segments.is_empty(), "committed segments survive the crash");
        let stats = idx.stats();
        assert!(stats.n_observations > 0, "meta recovered from commit blob");
        assert_eq!(stats.n_segments, segments.len() as u64);
        // Ingestion resumes: push the remainder of the series (strictly
        // after the recovered prefix) and the planted drop is found.
        let last_t = segments.last().unwrap().t_end;
        for (t, v) in drop_series().iter().filter(|&(t, _)| t > last_t) {
            idx.push(t, v).unwrap();
        }
        idx.finish().unwrap();
        idx.verify_consistency().unwrap();
        let (results, _) = idx
            .query(&QueryRegion::drop(1.0 * HOUR, -3.0), QueryPlan::SeqScan)
            .unwrap();
        assert!(
            results.iter().any(|p| p.covers(24_000.0, 25_800.0)),
            "planted drop lost across the crash seam: {results:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_resume_crash_stays_consistent() {
        // Three crashes with deferred (grouped) commits, mirroring the
        // crash-harness failure sequence. Crash 2 leaves heap files
        // extended past the durable tail with a *clean* log (all of its
        // commits were deferred), so no recovery truncation repairs the
        // files before crash 3's run appends. That run must append into
        // the leftover pages, or crash 3's logical truncation chops off
        // the rows that landed past the gap of empty pages.
        let dir = tmpdir("crashseam");
        // A zigzag makes the segmenter emit a steady stream of short
        // segments, so commits cross several groups of 32.
        let mut series = TimeSeries::new();
        for i in 0..400 {
            let t = i as f64 * 300.0;
            let v = (i % 8) as f64 * 0.7;
            series.push(t, v);
        }
        let resume = |idx: &mut SegDiffIndex, take: usize| {
            let last_t = idx.segments().unwrap().last().map_or(-1.0, |s| s.t_end);
            for (t, v) in series.iter().filter(|&(t, _)| t > last_t).take(take) {
                idx.push(t, v).unwrap();
            }
        };
        {
            // Crash 1: crosses a commit group, so the next open recovers.
            let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
            resume(&mut idx, 200);
        }
        {
            // Crash 2: every commit of this run stays deferred (fewer
            // than 32 segments), but rows were appended and pages
            // allocated — the files end up extended past the durable
            // tail while the log stays clean.
            let mut idx = SegDiffIndex::open(&dir, 4096).unwrap();
            idx.verify_consistency().unwrap();
            resume(&mut idx, 60);
        }
        {
            // Crash 3: resumes from a clean log over the extended files
            // and crosses at least one commit group.
            let mut idx = SegDiffIndex::open(&dir, 4096).unwrap();
            assert!(
                idx.recovery_report().is_some_and(|r| r.clean),
                "crash 2 must leave a clean log for the gap to persist"
            );
            idx.verify_consistency().unwrap();
            resume(&mut idx, usize::MAX);
        }
        let idx = SegDiffIndex::open(&dir, 4096).unwrap();
        idx.verify_consistency().unwrap();
        assert!(!idx.segments().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_finish_reopens_clean_with_exact_counts() {
        let dir = tmpdir("cleanreopen");
        {
            let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
            idx.ingest_series(&drop_series()).unwrap();
            idx.finish().unwrap();
        }
        let idx = SegDiffIndex::open(&dir, 4096).unwrap();
        assert!(
            idx.recovery_report().unwrap().clean,
            "finish() is a clean shutdown"
        );
        assert!(idx.last_checkpoint_lsn().is_some(), "reopen keeps WAL mode");
        assert_eq!(
            idx.stats().n_observations,
            200,
            "final commit carries the exact count"
        );
        idx.verify_consistency().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_durable_index_skips_wal() {
        let dir = tmpdir("nowal");
        let mut idx =
            SegDiffIndex::create(&dir, SegDiffConfig::default().with_durable(false)).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        assert!(idx.last_checkpoint_lsn().is_none());
        assert!(!dir.join("wal.log").exists());
        idx.verify_consistency().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_consistency_detects_divergence() {
        let dir = tmpdir("diverge");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        // Forge an extra segment row the extractor never saw.
        idx.segments_table.insert(&[1e9, 0.0, 2e9, -5.0]).unwrap();
        assert!(matches!(
            idx.verify_consistency(),
            Err(pagestore::StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "exceeds window")]
    fn query_beyond_window_rejected() {
        let dir = tmpdir("window");
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&drop_series()).unwrap();
        idx.finish().unwrap();
        let region = QueryRegion::drop(9.0 * HOUR, -3.0); // w is 8 h
        let _ = idx.query(&region, QueryPlan::SeqScan);
    }
}
