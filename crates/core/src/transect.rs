//! Managing a whole sensor network: one SegDiff index per sensor.
//!
//! The paper's deployment is twenty-five sensors across a canyon, and its
//! §6.3 reports that "SegDiff can return results for all sensors within 10
//! seconds". [`TransectIndex`] is that operational layer: a directory of
//! per-sensor [`SegDiffIndex`]es sharing one configuration, with fan-out
//! queries executed across sensors in parallel.

use crate::config::SegDiffConfig;
use crate::index::SegDiffIndex;
use crate::query::{QueryPlan, QueryStats};
use crate::result::SegmentPair;
use crate::stats::SegDiffStats;
use featurespace::QueryRegion;
use pagestore::{Result, StoreError};
use sensorgen::TimeSeries;
use std::path::{Path, PathBuf};

/// A collection of per-sensor SegDiff indexes under one root directory
/// (`<root>/sensor-<k>/`).
pub struct TransectIndex {
    root: PathBuf,
    sensors: Vec<SegDiffIndex>,
}

impl TransectIndex {
    /// Creates indexes for `n_sensors` sensors under `root`. The configured
    /// buffer pool is divided evenly across sensors.
    pub fn create(root: &Path, config: SegDiffConfig, n_sensors: u32) -> Result<Self> {
        assert!(n_sensors > 0, "need at least one sensor");
        let per_sensor = (config.pool_pages / n_sensors as usize).max(64);
        let config = config.with_pool_pages(per_sensor);
        let mut sensors = Vec::with_capacity(n_sensors as usize);
        for k in 0..n_sensors {
            sensors.push(SegDiffIndex::create(
                &Self::sensor_dir(root, k),
                config.clone(),
            )?);
        }
        Ok(Self {
            root: root.to_path_buf(),
            sensors,
        })
    }

    /// Reopens a transect previously persisted with
    /// [`TransectIndex::finish_all`]. Sensors are discovered from the
    /// directory layout.
    pub fn open(root: &Path, pool_pages: usize) -> Result<Self> {
        let mut k = 0u32;
        let mut sensors = Vec::new();
        loop {
            let dir = Self::sensor_dir(root, k);
            if !dir.exists() {
                break;
            }
            sensors.push(SegDiffIndex::open(&dir, pool_pages.max(64))?);
            k += 1;
        }
        if sensors.is_empty() {
            return Err(StoreError::NotFound(format!(
                "no sensor indexes under {}",
                root.display()
            )));
        }
        Ok(Self {
            root: root.to_path_buf(),
            sensors,
        })
    }

    fn sensor_dir(root: &Path, sensor: u32) -> PathBuf {
        root.join(format!("sensor-{sensor}"))
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of sensors.
    pub fn num_sensors(&self) -> u32 {
        self.sensors.len() as u32
    }

    /// Ingests one observation for `sensor`.
    pub fn push(&mut self, sensor: u32, t: f64, v: f64) -> Result<()> {
        self.sensors[sensor as usize].push(t, v)
    }

    /// Ingests a whole series for `sensor`.
    pub fn ingest_series(&mut self, sensor: u32, series: &TimeSeries) -> Result<()> {
        self.sensors[sensor as usize].ingest_series(series)
    }

    /// Finishes and persists every sensor.
    pub fn finish_all(&mut self) -> Result<()> {
        for s in &mut self.sensors {
            s.finish()?;
        }
        Ok(())
    }

    /// Builds the query B+trees on every sensor.
    pub fn build_indexes_all(&self) -> Result<()> {
        for s in &self.sensors {
            s.build_indexes()?;
        }
        Ok(())
    }

    /// Queries one sensor.
    pub fn query_sensor(
        &self,
        sensor: u32,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Vec<SegmentPair>, QueryStats)> {
        self.sensors[sensor as usize].query(region, plan)
    }

    /// Queries every sensor in parallel (one worker per sensor); returns
    /// per-sensor results plus merged execution statistics (wall time =
    /// slowest sensor, the rest summed).
    pub fn query_all(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Vec<Vec<SegmentPair>>, QueryStats)> {
        self.query_all_with_threads(region, plan, self.sensors.len())
    }

    /// Like [`TransectIndex::query_all`], but fans the per-sensor queries
    /// out on a fixed pool of at most `threads` worker threads
    /// ([`crate::pool::run_on_pool`]). Results are identical for every
    /// thread count — per-sensor execution is independent and the merge
    /// preserves sensor order — which the integration tests assert.
    pub fn query_all_with_threads(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
        threads: usize,
    ) -> Result<(Vec<Vec<SegmentPair>>, QueryStats)> {
        let outcomes: Vec<Result<(Vec<SegmentPair>, QueryStats)>> =
            crate::pool::run_on_pool(threads.max(1), self.sensors.len(), |k| {
                self.sensors[k].query(region, plan)
            });
        let mut results = Vec::with_capacity(outcomes.len());
        let mut merged = QueryStats::default();
        for outcome in outcomes {
            let (r, s) = outcome?;
            merged.wall_seconds = merged.wall_seconds.max(s.wall_seconds);
            merged.rows_considered += s.rows_considered;
            merged.results += s.results;
            merged.io = merged.io.merged(&s.io);
            // Merge phases by name: rows and I/O sum across sensors; wall
            // time takes the slowest sensor (phases ran in parallel).
            for phase in s.phases {
                match merged.phases.iter_mut().find(|p| p.name == phase.name) {
                    Some(m) => {
                        m.wall_seconds = m.wall_seconds.max(phase.wall_seconds);
                        m.rows_in += phase.rows_in;
                        m.rows_out += phase.rows_out;
                        m.io = m.io.merged(&phase.io);
                    }
                    None => merged.phases.push(phase),
                }
            }
            results.push(r);
        }
        Ok((results, merged))
    }

    /// Sum of the per-sensor invalidation epochs; changes whenever any
    /// sensor's data changes, so it can version fan-out query responses
    /// the way [`SegDiffIndex::epoch`] versions single-sensor ones.
    pub fn epoch(&self) -> u64 {
        self.sensors.iter().map(|s| s.epoch()).sum()
    }

    /// Flushes every sensor's database (dirty pages + checkpoint).
    pub fn flush_all(&self) -> Result<()> {
        for s in &self.sensors {
            s.database().flush()?;
        }
        Ok(())
    }

    /// Per-sensor statistics.
    pub fn stats(&self) -> Vec<SegDiffStats> {
        self.sensors.iter().map(|s| s.stats()).collect()
    }

    /// Aggregate feature payload bytes across sensors.
    pub fn total_feature_bytes(&self) -> u64 {
        self.sensors
            .iter()
            .map(|s| s.stats().feature_payload_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorgen::{generate_sensor, CadTransectConfig, HOUR};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-trans-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn build(tag: &str, sensors: u32, days: u32) -> (TransectIndex, PathBuf) {
        let root = tmpdir(tag);
        let cfg = CadTransectConfig::default()
            .with_days(days)
            .with_sensors(sensors)
            .clean();
        let mut t = TransectIndex::create(&root, SegDiffConfig::default(), sensors).unwrap();
        for k in 0..sensors {
            let series = generate_sensor(&cfg, k, 7);
            t.ingest_series(k, &series).unwrap();
        }
        t.finish_all().unwrap();
        (t, root)
    }

    #[test]
    fn fan_out_query_matches_per_sensor() {
        let (t, root) = build("fanout", 4, 4);
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (all, merged) = t.query_all(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(all.len(), 4);
        let mut total = 0u64;
        for (k, per) in all.iter().enumerate() {
            let (single, _) = t
                .query_sensor(k as u32, &region, QueryPlan::SeqScan)
                .unwrap();
            assert_eq!(per, &single, "sensor {k}");
            total += per.len() as u64;
        }
        assert_eq!(merged.results, total);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Results are identical whatever the worker-pool size — the
    /// acceptance criterion for parallel fan-out.
    #[test]
    fn query_all_is_thread_count_invariant() {
        let (t, root) = build("threads", 5, 3);
        t.build_indexes_all().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        for plan in [QueryPlan::SeqScan, QueryPlan::Index] {
            let (r1, s1) = t.query_all_with_threads(&region, plan, 1).unwrap();
            let (r8, s8) = t.query_all_with_threads(&region, plan, 8).unwrap();
            let (rd, _) = t.query_all(&region, plan).unwrap();
            assert_eq!(r1, r8, "{plan:?}: thread count changed results");
            assert_eq!(r1, rd, "{plan:?}: default fan-out disagrees");
            assert_eq!(s1.results, s8.results);
            assert_eq!(s1.rows_considered, s8.rows_considered);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_preserves_everything() {
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (before, root) = {
            let (t, root) = build("reopen", 3, 4);
            let (results, _) = t.query_all(&region, QueryPlan::SeqScan).unwrap();
            (results, root)
        };
        let t = TransectIndex::open(&root, 256).unwrap();
        assert_eq!(t.num_sensors(), 3);
        let (after, _) = t.query_all(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_missing_root_errors() {
        let root = tmpdir("missing");
        assert!(TransectIndex::open(&root, 256).is_err());
    }

    #[test]
    fn stats_cover_all_sensors() {
        let (t, root) = build("stats", 3, 2);
        let stats = t.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.n_segments > 0));
        assert!(t.total_feature_bytes() > 0);
        std::fs::remove_dir_all(&root).ok();
    }
}
