//! Per-file analysis context: lexed tokens, `#[cfg(test)]` region
//! tracking, brace matching, and `// lint: allow(...)` suppressions.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Tok, TokKind};
use std::collections::HashMap;

/// A parsed `// lint: allow(L1, L3) reason` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules the comment names (known ones).
    pub rules: Vec<Rule>,
    /// Rule names that did not parse (L0 violation).
    pub unknown: Vec<String>,
    /// Free-text justification after the closing paren.
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Line the suppression applies to (same line for trailing
    /// comments, the next code line for standalone ones).
    pub target_line: u32,
    /// Column of the comment.
    pub col: u32,
}

/// Everything the rule passes need to know about one file.
pub struct FileCtx<'s> {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// `crates/<name>/…` → `<name>`; the facade crate is `segdiff-repro`.
    pub crate_name: String,
    /// File contents.
    pub src: &'s str,
    /// Token stream (comments included).
    pub toks: Vec<Tok>,
    /// Whether the whole file is test/bench code (path heuristics).
    pub test_file: bool,
    /// `{` token index → matching `}` token index.
    brace_match: HashMap<usize, usize>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
    /// items.
    test_ranges: Vec<(u32, u32)>,
    /// Parsed suppression comments.
    suppressions: Vec<Suppression>,
}

impl<'s> FileCtx<'s> {
    /// Lexes and indexes one file.
    pub fn new(path: &str, src: &'s str) -> FileCtx<'s> {
        let toks = lex(src);
        let brace_match = match_braces(&toks);
        let test_ranges = find_test_ranges(&toks, src, &brace_match);
        let suppressions = find_suppressions(&toks, src);
        FileCtx {
            path: path.to_string(),
            crate_name: crate_of(path),
            src,
            test_file: is_test_path(path),
            toks,
            brace_match,
            test_ranges,
            suppressions,
        }
    }

    /// The `}` matching the `{` at token index `open`, if balanced.
    pub fn close_of(&self, open: usize) -> Option<usize> {
        self.brace_match.get(&open).copied()
    }

    /// Whether `line` falls inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_file
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| line >= a && line <= b)
    }

    /// Whether `rule` is suppressed at `line` (by a comment with a
    /// non-empty reason; empty-reason suppressions do not count — they
    /// are themselves L0 violations).
    pub fn suppressed(&self, rule: Rule, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.target_line == line && !s.reason.is_empty() && s.rules.contains(&rule))
    }

    /// The L0 pass: every suppression must name only known rules and
    /// carry a non-empty reason.
    pub fn audit_suppressions(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for s in &self.suppressions {
            for u in &s.unknown {
                out.push(self.diag(
                    Rule::L0,
                    s.comment_line,
                    s.col,
                    format!("unknown rule `{u}` in `lint: allow(...)`"),
                    "valid rules are L0-L8".to_string(),
                ));
            }
            if s.reason.is_empty() {
                out.push(self.diag(
                    Rule::L0,
                    s.comment_line,
                    s.col,
                    "suppression without a reason".to_string(),
                    "write `// lint: allow(<rule>) <why this is sound>`".to_string(),
                ));
            }
        }
        out
    }

    /// The parsed suppression comments, in file order.
    pub fn suppressions(&self) -> &[Suppression] {
        &self.suppressions
    }

    /// Convenience constructor for a diagnostic in this file.
    pub fn diag(
        &self,
        rule: Rule,
        line: u32,
        col: u32,
        message: String,
        help: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.path.clone(),
            line,
            col,
            message,
            help,
        }
    }
}

/// Workspace-wide suppression inventory. The rules emit every finding
/// they see; [`SuppressionIndex::filter`] drops the suppressed ones
/// centrally — so the cross-file passes (L4/L6/L8) honor suppressions
/// exactly like the per-file rules — and records which suppressions
/// actually fired. [`SuppressionIndex::dead`] then audits the rest: a
/// `// lint: allow(<rule>)` that no longer suppresses any diagnostic
/// is itself an L0 violation, which keeps the suppression inventory
/// honest as rules and code evolve.
#[derive(Debug, Default)]
pub struct SuppressionIndex {
    /// Per file: (suppression, fired-at-least-once).
    files: Vec<(String, Vec<(Suppression, bool)>)>,
}

impl SuppressionIndex {
    /// Registers one file's suppressions.
    pub fn add_file(&mut self, ctx: &FileCtx) {
        if !ctx.suppressions.is_empty() {
            self.files.push((
                ctx.path.clone(),
                ctx.suppressions
                    .iter()
                    .map(|s| (s.clone(), false))
                    .collect(),
            ));
        }
    }

    /// Drops every diagnostic covered by a valid suppression (known
    /// rule, non-empty reason, matching target line), marking those
    /// suppressions as used.
    pub fn filter(&mut self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| {
                let mut covered = false;
                if let Some((_, entries)) = self.files.iter_mut().find(|(p, _)| *p == d.file) {
                    for (s, used) in entries.iter_mut() {
                        if s.target_line == d.line
                            && !s.reason.is_empty()
                            && s.rules.contains(&d.rule)
                        {
                            *used = true;
                            covered = true;
                        }
                    }
                }
                !covered
            })
            .collect()
    }

    /// The dead-suppression audit. Malformed suppressions (unknown
    /// rule, empty reason) are already flagged by
    /// [`FileCtx::audit_suppressions`]; this pass flags the well-formed
    /// ones that never fired. A suppression naming a rule that was not
    /// enabled this run is skipped — it had no chance to fire.
    pub fn dead(&self, enabled: &std::collections::BTreeSet<Rule>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (path, entries) in &self.files {
            for (s, used) in entries {
                if *used
                    || s.reason.is_empty()
                    || !s.unknown.is_empty()
                    || s.rules.is_empty()
                    || s.rules.iter().any(|r| !enabled.contains(r))
                {
                    continue;
                }
                let names: Vec<&str> = s.rules.iter().map(|r| r.id()).collect();
                out.push(Diagnostic {
                    rule: Rule::L0,
                    file: path.clone(),
                    line: s.comment_line,
                    col: s.col,
                    message: format!(
                        "dead suppression: `lint: allow({})` no longer suppresses any diagnostic",
                        names.join(", ")
                    ),
                    help: "the suppressed violation is gone — delete the comment".to_string(),
                });
            }
        }
        out
    }
}

/// Path-level test/bench classification: integration tests, benches,
/// the bench harness crate, and the `#[cfg(test)] mod x;` file modules
/// (`*_tests.rs`, `proptests.rs`, `tests.rs`, `appendix_tests.rs`).
fn is_test_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    if p.contains("/tests/") || p.contains("/benches/") || p.starts_with("crates/bench/") {
        return true;
    }
    let file = p.rsplit('/').next().unwrap_or(&p);
    file.ends_with("_tests.rs") || file == "proptests.rs" || file == "tests.rs"
}

/// `crates/<name>/…` → `<name>`; anything else is the facade crate.
fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    match p.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
        Some(name) => name.to_string(),
        None => "segdiff-repro".to_string(),
    }
}

/// Builds the `{` → `}` token-index map.
fn match_braces(toks: &[Tok]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct(b'{') => stack.push(i),
            TokKind::Punct(b'}') => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                }
            }
            _ => {}
        }
    }
    map
}

/// Is the token a comment?
pub fn is_comment(k: TokKind) -> bool {
    matches!(k, TokKind::LineComment | TokKind::BlockComment)
}

/// Finds line ranges covered by `#[cfg(test)]` / `#[test]`-attributed
/// items. `#[cfg(not(test))]` and friends are correctly not treated as
/// test markers (any `not` in the attribute disqualifies it — the
/// codebase never nests `test` under `not(...)` any other way).
fn find_test_ranges(toks: &[Tok], src: &str, braces: &HashMap<usize, usize>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Punct(b'#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 1;
        // Inner attribute `#![…]` — never a test item marker.
        if toks.get(j).map(|t| t.kind) == Some(TokKind::Punct(b'!')) {
            j += 1;
        }
        if toks.get(j).map(|t| t.kind) != Some(TokKind::Punct(b'[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => idents.push(toks[k].text(src)),
                _ => {}
            }
            k += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"test") => true,
            Some(&"cfg" | &"cfg_attr") => idents.contains(&"test") && !idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            i = k + 1;
            continue;
        }
        // Skip further attributes and comments, then find the item body.
        let mut m = k + 1;
        while m < toks.len() {
            if is_comment(toks[m].kind) {
                m += 1;
            } else if toks[m].kind == TokKind::Punct(b'#') {
                // another attribute: skip to its `]`
                let mut d = 0usize;
                while m < toks.len() {
                    match toks[m].kind {
                        TokKind::Punct(b'[') => d += 1,
                        TokKind::Punct(b']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                m += 1;
            } else {
                break;
            }
        }
        // The item: mark everything to its closing `}` (or `;`).
        let mut end_line = None;
        let mut n = m;
        while n < toks.len() {
            match toks[n].kind {
                TokKind::Punct(b'{') => {
                    end_line = braces.get(&n).map(|&c| toks[c].line);
                    break;
                }
                TokKind::Punct(b';') => {
                    end_line = Some(toks[n].line);
                    break;
                }
                _ => n += 1,
            }
        }
        if let Some(end) = end_line {
            out.push((attr_line, end));
            // Resume after the item so nested attrs inside it don't
            // produce overlapping ranges (harmless but wasteful).
            while n < toks.len() && toks[n].line <= end {
                n += 1;
            }
            i = n;
        } else {
            i = k + 1;
        }
    }
    out
}

/// Parses `lint: allow(...)` comments and computes their target lines.
fn find_suppressions(toks: &[Tok], src: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rule_list, reason) = match rest.strip_prefix('(') {
            Some(r) => match r.split_once(')') {
                Some((inside, after)) => (inside, after),
                None => (r, ""),
            },
            None => ("", rest),
        };
        let mut rules = Vec::new();
        let mut unknown = Vec::new();
        for part in rule_list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match Rule::parse(part) {
                Some(r) => rules.push(r),
                None => unknown.push(part.to_string()),
            }
        }
        let reason = reason
            .trim_start_matches([':', '-', ' '])
            .trim()
            .to_string();
        // Trailing comment (code earlier on the same line) targets its
        // own line; a standalone comment targets the next code line.
        let trailing = toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !is_comment(p.kind));
        let target_line = if trailing {
            t.line
        } else {
            toks[i + 1..]
                .iter()
                .find(|n| !is_comment(n.kind))
                .map(|n| n.line)
                .unwrap_or(t.line)
        };
        out.push(Suppression {
            rules,
            unknown,
            reason,
            comment_line: t.line,
            target_line,
            col: t.col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection() {
        let src = r#"
fn prod() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
"#;
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(!ctx.in_test(2));
        assert!(ctx.in_test(5));
        assert!(ctx.in_test(7));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() {}\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(!ctx.in_test(2));
    }

    #[test]
    fn test_attr_on_fn() {
        let src = "#[test]\nfn t() {\n  body();\n}\nfn prod() {}\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx.in_test(3));
        assert!(!ctx.in_test(5));
    }

    #[test]
    fn path_heuristics() {
        for p in [
            "crates/pagestore/src/stress_tests.rs",
            "crates/pagestore/src/proptests.rs",
            "crates/cli/tests/cli.rs",
            "crates/bench/src/report.rs",
        ] {
            assert!(FileCtx::new(p, "").test_file, "{p}");
        }
        assert!(!FileCtx::new("crates/server/src/loadgen.rs", "").test_file);
    }

    #[test]
    fn suppression_parsing() {
        let src = "\
let a = x.unwrap(); // lint: allow(L1) checked above
// lint: allow(L1, L5): startup only
let b = y.unwrap();
// lint: allow(L1)
let c = z.unwrap();
// lint: allow(L9) whatever
let d = w.unwrap();
";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx.suppressed(Rule::L1, 1));
        assert!(ctx.suppressed(Rule::L1, 3));
        assert!(ctx.suppressed(Rule::L5, 3));
        assert!(!ctx.suppressed(Rule::L2, 3));
        // Reason-less suppression does not suppress…
        assert!(!ctx.suppressed(Rule::L1, 5));
        // …and both it and the unknown-rule one are L0 violations.
        let audit = ctx.audit_suppressions();
        assert_eq!(audit.len(), 2);
        assert!(audit.iter().any(|d| d.message.contains("without a reason")));
        assert!(audit
            .iter()
            .any(|d| d.message.contains("unknown rule `L9`")));
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/pagestore/src/db.rs"), "pagestore");
        assert_eq!(crate_of("src/lib.rs"), "segdiff-repro");
    }
}
