//! Beyond-paper experiment: throughput of the concurrent query service.
//!
//! The paper measures single-query latency; a deployment cares about
//! sustained queries/second under concurrency. This experiment builds
//! one index, then for each worker-thread count starts the HTTP server
//! in-process, drives it with the closed-loop load generator, and
//! reports throughput, tail latency, and result-cache effectiveness.
//! Scaling from 1 worker to N workers is the end-to-end proof that the
//! striped buffer pool and reader/writer table locks actually let
//! queries execute in parallel.

use crate::harness::{build_segdiff, default_series, scratch_dir, Scale};
use crate::report::Report;
use segdiff_server::loadgen::{self, query_mix};
use segdiff_server::{LoadgenConfig, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// One measured `(threads, load)` combination.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// Server worker threads.
    pub threads: usize,
    /// Completed 2xx requests per second.
    pub qps: f64,
    /// Completed 2xx requests.
    pub ok: u64,
    /// Non-2xx responses plus transport errors.
    pub failures: u64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Result-cache hits during the run.
    pub cache_hits: u64,
    /// Result-cache misses during the run.
    pub cache_misses: u64,
}

/// Runs the load mix against servers with each thread count in
/// `thread_counts`, `duration` per point. The result cache is cleared
/// before every point so each configuration warms it from the same
/// cold start.
pub fn run_serving(
    scale: &Scale,
    thread_counts: &[usize],
    duration: Duration,
) -> Vec<ServingPoint> {
    let dir = scratch_dir("serving");
    let series = default_series(scale.subset_days, scale.seed);
    let built = build_segdiff(&series, 0.2, 8.0 * 3600.0, 4096, &dir, true);
    let index = Arc::new(built.index);
    let bodies = query_mix("drop", -2.0, 1.0);

    let mut points = Vec::new();
    for &threads in thread_counts {
        index.result_cache().clear();
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&index),
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
        .expect("bind serving benchmark server");
        let host = server.local_addr().to_string();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("server run"));

        let before = obs::global().snapshot();
        let report = loadgen::run(&LoadgenConfig {
            host,
            concurrency: 8,
            duration,
            bodies: bodies.clone(),
        })
        .expect("loadgen run");
        let delta = obs::global().snapshot().delta(&before);

        flag.store(true, std::sync::atomic::Ordering::Release);
        handle.join().expect("server thread");

        let ms = |nanos: u64| nanos as f64 / 1e6;
        points.push(ServingPoint {
            threads,
            qps: report.qps(),
            ok: report.ok,
            failures: report.non_2xx + report.errors,
            p50_ms: ms(report.latency.p50),
            p90_ms: ms(report.latency.p90),
            p99_ms: ms(report.latency.p99),
            cache_hits: delta.counters.get("cache.hit").copied().unwrap_or(0),
            cache_misses: delta.counters.get("cache.miss").copied().unwrap_or(0),
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    points
}

/// Renders the serving table and the threads-1-vs-N scaling ratio.
pub fn serving_report(points: &[ServingPoint], report: &mut Report) {
    report.heading("Serving (beyond the paper): concurrent query service");
    report.para(
        "One shared index served over HTTP by a fixed worker pool; a closed-loop \
         load generator (8 connections) drives a drop/jump mix over both plans. \
         Queries repeat, so most are answered by the epoch-tagged result cache; \
         scaling with worker threads shows the striped buffer pool and RwLock \
         table internals executing queries in parallel.",
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                format!("{:.0}", p.qps),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p90_ms),
                format!("{:.2}", p.p99_ms),
                p.ok.to_string(),
                p.failures.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * p.cache_hits as f64 / (p.cache_hits + p.cache_misses).max(1) as f64
                ),
            ]
        })
        .collect();
    report.table(
        &[
            "threads",
            "qps",
            "p50 ms",
            "p90 ms",
            "p99 ms",
            "ok",
            "failures",
            "cache hit rate",
        ],
        &rows,
    );
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        if first.threads < last.threads && first.qps > 0.0 {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            report.para(&format!(
                "Scaling {} -> {} worker threads: {:.2}x throughput \
                 (host parallelism: {} core{}; thread scaling is bounded by \
                 the cores available to the run).",
                first.threads,
                last.threads,
                last.qps / first.qps,
                cores,
                if cores == 1 { "" } else { "s" }
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_point_renders() {
        let points = vec![
            ServingPoint {
                threads: 1,
                qps: 100.0,
                ok: 100,
                failures: 0,
                p50_ms: 1.0,
                p90_ms: 2.0,
                p99_ms: 3.0,
                cache_hits: 90,
                cache_misses: 10,
            },
            ServingPoint {
                threads: 8,
                qps: 400.0,
                ok: 400,
                failures: 0,
                p50_ms: 0.5,
                p90_ms: 1.0,
                p99_ms: 2.0,
                cache_hits: 390,
                cache_misses: 10,
            },
        ];
        let mut report = Report::new();
        serving_report(&points, &mut report);
        let md = report.markdown();
        assert!(md.contains("| threads |"), "{md}");
        assert!(md.contains("4.00x throughput"), "{md}");
        assert!(md.contains("90.0%"), "{md}");
    }

    #[test]
    fn tiny_serving_run_completes() {
        let points = run_serving(&Scale::tiny(), &[2], Duration::from_millis(400));
        assert_eq!(points.len(), 1);
        assert!(points[0].ok > 0, "{points:?}");
        assert_eq!(points[0].failures, 0, "{points:?}");
    }
}
