//! Query plans and execution over the feature tables (§4.4).
//!
//! Execution is split into named *phases* whose buffer-pool deltas tile
//! the query: snapshots are taken only at phase boundaries, so the sum of
//! per-phase I/O deltas equals the pool's total delta for the query by
//! construction. Each phase also runs under an [`obs::span`], so query
//! execution feeds the `span.query.*` latency histograms and — when a
//! trace is active — an `EXPLAIN ANALYZE`-style call tree.

use crate::result::SegmentPair;
use crate::tables::{boundary_from_row, pair_from_row};
use featurespace::{edge_crosses_region, FeaturePoint, QueryRegion, SearchKind};
use pagestore::{Database, PoolStats, Result, Table};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// How a search is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPlan {
    /// Sequential scan of the feature tables, evaluating the full
    /// intersection predicate per row.
    SeqScan,
    /// B+tree range scans: one point query per stored corner column pair
    /// and one line query per boundary edge, unioned by row id — the
    /// paper's indexed execution.
    Index,
}

impl QueryPlan {
    /// Stable display name (`seq_scan` / `index`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryPlan::SeqScan => "seq_scan",
            QueryPlan::Index => "index",
        }
    }
}

/// Metrics for one execution phase of a query.
///
/// Phases tile the query's execution: buffer-pool snapshots are taken
/// only at phase boundaries, so summing `io` over the phases reproduces
/// [`QueryStats::io`] exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase name (`plan`, `scan`, `probe`, `fetch`, `refine`).
    pub name: &'static str,
    /// Wall-clock time spent in the phase, in seconds.
    pub wall_seconds: f64,
    /// Rows (or index entries) entering the phase.
    pub rows_in: u64,
    /// Rows leaving the phase.
    pub rows_out: u64,
    /// Buffer-pool activity during the phase.
    pub io: PoolStats,
}

/// Execution metrics for one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Wall-clock execution time in seconds.
    pub wall_seconds: f64,
    /// Rows (or index entries) examined.
    pub rows_considered: u64,
    /// Result tuples returned (after deduplication).
    pub results: u64,
    /// Buffer-pool activity during the query.
    pub io: PoolStats,
    /// Per-phase breakdown; the phase `io` deltas sum to `io`.
    pub phases: Vec<PhaseStats>,
}

/// Measures one phase: wall time, an [`obs`] span, and the pool delta
/// from construction to [`Phase::finish`]. Phases must be constructed
/// and finished back-to-back so their deltas tile the query.
struct Phase<'a> {
    db: &'a Database,
    span: obs::SpanGuard,
    io_start: PoolStats,
    t_start: Instant,
}

impl<'a> Phase<'a> {
    fn start(db: &'a Database, name: &'static str) -> Self {
        Phase {
            db,
            span: obs::span(name),
            io_start: db.stats(),
            t_start: Instant::now(),
        }
    }

    fn finish(self, rows_in: u64, rows_out: u64) -> PhaseStats {
        let io = self.db.stats().since(&self.io_start);
        let wall_seconds = self.t_start.elapsed().as_secs_f64();
        self.span.record("rows_in", rows_in);
        self.span.record("rows_out", rows_out);
        self.span.record("physical_reads", io.physical_reads);
        self.span.record("physical_writes", io.physical_writes);
        self.span.record("pool_hits", io.hits);
        self.span.record("pool_misses", io.misses);
        // Strip the "query." prefix used for span/histogram names.
        let name = self
            .span
            .name()
            .rsplit_once('.')
            .map_or(self.span.name(), |(_, last)| last);
        PhaseStats {
            name,
            wall_seconds,
            rows_in,
            rows_out,
            io,
        }
    }
}

/// Runs a drop/jump search over the three per-corner-count feature tables
/// of the matching kind. Returns deduplicated, time-ordered segment pairs
/// plus the per-phase breakdown.
pub(crate) fn run_feature_query(
    db: &Database,
    tables: &[Arc<Table>; 3],
    region: &QueryRegion,
    plan: QueryPlan,
    rows_considered: &mut u64,
) -> Result<(Vec<SegmentPair>, Vec<PhaseStats>)> {
    let mut phases = Vec::with_capacity(4);

    // Phase: plan selection. Trivial here (the caller chose), but gives
    // the trace its "plan chosen" node and anchors the I/O accounting.
    let p = Phase::start(db, "query.plan");
    p.span.record("plan", plan.name());
    p.span.record("kind", region.kind.name());
    phases.push(p.finish(0, 0));

    let mut out = Vec::new();
    match plan {
        QueryPlan::SeqScan => {
            // Phase: sequential candidate scan with the ε-shifted corner
            // intersection test fused into the scan (one pass, no
            // candidate materialization).
            let p = Phase::start(db, "query.scan");
            let mut scanned = 0u64;
            for (i, table) in tables.iter().enumerate() {
                let corners = i + 1;
                table.seq_scan(|_rid, row| {
                    scanned += 1;
                    if boundary_from_row(row, corners).intersects(region) {
                        out.push(pair_from_row(row, corners));
                    }
                    true
                })?;
            }
            *rows_considered += scanned;
            phases.push(p.finish(scanned, out.len() as u64));
        }
        QueryPlan::Index => {
            // Phase: index probes — point and line B+tree range scans with
            // the ε-shifted corner predicate applied to each entry, unioned
            // by row id.
            let p = Phase::start(db, "query.probe");
            let mut probed = 0u64;
            let mut all_rids: Vec<(usize, HashSet<u64>)> = Vec::with_capacity(3);
            for (i, table) in tables.iter().enumerate() {
                let corners = i + 1;
                let mut rids: HashSet<u64> = HashSet::new();
                // Point queries: corner j inside the region.
                for j in 1..=corners {
                    let lo = [f64::NEG_INFINITY, f64::NEG_INFINITY];
                    let hi = [region.t, f64::INFINITY];
                    table.index_scan(&format!("pt{j}"), &lo, &hi, |rid, cols| {
                        probed += 1;
                        let matches = match region.kind {
                            SearchKind::Drop => cols[1] <= region.v,
                            SearchKind::Jump => cols[1] >= region.v,
                        };
                        if matches {
                            rids.insert(rid);
                        }
                        true
                    })?;
                }
                // Line queries: edge (j, j+1) crosses the region with both
                // ends outside.
                for j in 1..corners {
                    let lo = [f64::NEG_INFINITY; 4];
                    let hi = [region.t, f64::INFINITY, f64::INFINITY, f64::INFINITY];
                    table.index_scan(&format!("ln{j}"), &lo, &hi, |rid, cols| {
                        probed += 1;
                        let p1 = FeaturePoint::new(cols[0], cols[1]);
                        let p2 = FeaturePoint::new(cols[2], cols[3]);
                        if edge_crosses_region(p1, p2, region) {
                            rids.insert(rid);
                        }
                        true
                    })?;
                }
                all_rids.push((corners, rids));
            }
            *rows_considered += probed;
            let n_rids: u64 = all_rids.iter().map(|(_, r)| r.len() as u64).sum();
            phases.push(p.finish(probed, n_rids));

            // Phase: fetch the matched heap rows.
            let p = Phase::start(db, "query.fetch");
            let mut rowbuf = Vec::new();
            for (corners, rids) in all_rids {
                let table = &tables[corners - 1];
                for rid in rids {
                    table.fetch(rid, &mut rowbuf)?;
                    out.push(pair_from_row(&rowbuf, corners));
                }
            }
            phases.push(p.finish(n_rids, out.len() as u64));
        }
    }

    // Phase: refinement — sort by time and drop duplicate pairs.
    let p = Phase::start(db, "query.refine");
    let before = out.len() as u64;
    crate::result::sort_dedup(&mut out);
    phases.push(p.finish(before, out.len() as u64));

    Ok((out, phases))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_comparable() {
        assert_ne!(QueryPlan::SeqScan, QueryPlan::Index);
    }

    #[test]
    fn stats_default_zeroed() {
        let s = QueryStats::default();
        assert_eq!(s.rows_considered, 0);
        assert_eq!(s.results, 0);
        assert_eq!(s.wall_seconds, 0.0);
        assert!(s.phases.is_empty());
    }

    #[test]
    fn plan_names_are_stable() {
        assert_eq!(QueryPlan::SeqScan.name(), "seq_scan");
        assert_eq!(QueryPlan::Index.name(), "index");
    }
}
