//! Compressed columnar data pages.
//!
//! A columnar page stores the same rows as a raw heap page but column by
//! column, with a per-column encoding chosen per page:
//!
//! * `RAW` — 8-byte little-endian f64s, the fallback when nothing pays.
//! * `INT_FOR` — frame-of-reference over integer-valued columns: values
//!   are exact integers (the timestamp and `dt` columns are multiples of
//!   the sample period), so we store `(v - min) / gcd` bit-packed at the
//!   smallest width that covers the range.
//! * `INT_DELTA` — delta coding for near-sorted integer columns (the
//!   boundary timestamps ascend row to row): zig-zagged successive
//!   differences divided by their gcd, bit-packed.
//! * `XOR` — fixed-width bit similarity for full-precision floats:
//!   every value is XORed with the first one and the common leading and
//!   trailing zero bits of the page are stripped.
//! * `GORILLA` — XOR against the *previous* value with per-value control
//!   bits (Facebook's Gorilla TSDB scheme): smooth full-precision columns
//!   compress even when the page spans several exponents, which defeats
//!   the fixed-width `XOR` mode.
//! * `SPLIT` — sign / exponent / mantissa bit split: the sign bit is
//!   stored verbatim, the 11-bit exponent is frame-of-reference packed
//!   (a `dv` column spans a few exponents, so 2-5 bits suffice even when
//!   both signs occur), and the mantissa keeps only the bits below the
//!   page's common trailing-zero count. Order-independent, so it floors
//!   the cost of full-entropy mantissas at ~56 bits/value where Gorilla
//!   degenerates.
//!
//! All encodings are exactly invertible at the bit level (`f64::to_bits`
//! round-trips, including `-0.0` and non-canonical NaNs under `RAW`/`XOR`;
//! the integer encodings only ever apply to values that are provably exact
//! integers with a positive sign bit pattern), which the storage layer
//! relies on: replay verification compares stored rows byte for byte.
//!
//! Page layout (within the fixed `PAGE_SIZE` frame):
//!
//! ```text
//! 0..2   u16 row count            (same offset as raw pages)
//! 2..4   u16 tag = COLPAGE_TAG    (raw pages keep zero padding here)
//! 4..6   u16 column count
//! 6..8   reserved
//! 8..    column directory, 16 bytes per column:
//!          u8  encoding   u8 bit width   u16 payload offset
//!          u32 aux (gcd / xor shift)     u64 reference value
//! then   byte-aligned bit-packed payloads, one per column
//! ```

use crate::error::Result;
use crate::{StoreError, PAGE_SIZE};

/// Per-page format tag at byte offset 2 (raw pages store zero there).
pub const COLPAGE_TAG: u16 = 0xC7A9;

/// Page header bytes (shared with raw pages: row count at offset 0).
const HDR: usize = 8;
/// Directory entry bytes per column.
const DIR: usize = 16;

/// Column encodings. The discriminants are the on-disk bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ColEncoding {
    /// Uncompressed little-endian f64s (the fallback when nothing pays).
    Raw = 0,
    /// Frame of reference over exact-integer values: `(v - min) / gcd`
    /// bit-packed, with `min` and `gcd` in the directory.
    IntFor = 1,
    /// Zigzagged successive differences of exact-integer values, divided
    /// by their gcd; the first value rides in the directory.
    IntDelta = 2,
    /// XOR against the first value's bits, with the common
    /// leading/trailing zero bits stripped (one width for the page).
    Xor = 3,
    /// XOR against the previous value with per-value control bits and
    /// meaningful-bit windows (the Gorilla TSDB float scheme).
    Gorilla = 4,
    /// Verbatim sign bit, frame-of-reference exponent, and mantissa bits
    /// above the page's common trailing zeros.
    Split = 5,
}

impl ColEncoding {
    fn from_byte(b: u8) -> Result<Self> {
        Ok(match b {
            0 => ColEncoding::Raw,
            1 => ColEncoding::IntFor,
            2 => ColEncoding::IntDelta,
            3 => ColEncoding::Xor,
            4 => ColEncoding::Gorilla,
            5 => ColEncoding::Split,
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown column encoding byte {other}"
                )))
            }
        })
    }
}

/// True when the page bytes carry the columnar tag.
pub fn is_colpage(page: &[u8]) -> bool {
    u16::from_le_bytes([page[2], page[3]]) == COLPAGE_TAG
}

/// Row count of a columnar (or raw) data page.
pub fn page_nrows(page: &[u8]) -> usize {
    u16::from_le_bytes([page[0], page[1]]) as usize
}

/// Largest column count a single row can always fit in one page.
pub fn max_cols() -> usize {
    // One row per page in the worst (all-RAW) case.
    (PAGE_SIZE - HDR) / (DIR + 8)
}

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

#[inline]
fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Writes the low `w` bits of `v` at bit offset `bit` (LSB-first).
#[inline]
fn write_bits(buf: &mut [u8], bit: usize, w: u32, v: u64) {
    if w == 0 {
        return;
    }
    let byte = bit / 8;
    let shift = (bit % 8) as u32;
    let acc = (v as u128 & mask(w) as u128) << shift;
    let nbytes = ((shift + w) as usize).div_ceil(8);
    for (i, b) in buf[byte..byte + nbytes].iter_mut().enumerate() {
        *b |= (acc >> (8 * i)) as u8;
    }
}

/// Reads `w` bits at bit offset `bit` (LSB-first).
#[inline]
fn read_bits(buf: &[u8], bit: usize, w: u32) -> u64 {
    if w == 0 {
        return 0;
    }
    let byte = bit / 8;
    let shift = (bit % 8) as u32;
    let nbytes = ((shift + w) as usize).div_ceil(8);
    let mut acc = 0u128;
    for (i, b) in buf[byte..byte + nbytes].iter().enumerate() {
        acc |= (*b as u128) << (8 * i);
    }
    ((acc >> shift) as u64) & mask(w)
}

#[inline]
fn bits_needed(v: u64) -> u32 {
    64 - v.leading_zeros()
}

#[inline]
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Exact-integer eligibility: the value must round-trip through `i64`
/// bit-for-bit. `-0.0` and anything beyond ±2^51 are excluded.
#[inline]
fn as_exact_int(v: f64) -> Option<i64> {
    if !v.is_finite() || v.fract() != 0.0 || v.abs() > (1u64 << 51) as f64 {
        return None;
    }
    if v.to_bits() == (-0.0f64).to_bits() {
        return None;
    }
    Some(v as i64)
}

// ---------------------------------------------------------------------------
// Gorilla window
// ---------------------------------------------------------------------------

/// The meaningful-bit window the Gorilla scheme carries between values.
/// [`ColStats`] and the encoder both drive this state machine, so the
/// builder's size accounting is exact, not an estimate.
#[derive(Debug, Clone, Copy)]
struct GorillaWindow {
    lead: u32,
    sig: u32,
}

impl GorillaWindow {
    fn new() -> Self {
        GorillaWindow { lead: 0, sig: 0 }
    }

    /// Advances the window over one xor'd value and returns the exact
    /// number of payload bits the encoder will spend on it:
    /// `1` (identical), `2 + sig` (fits the current window), or
    /// `2 + 5 + 6 + sig` (opens a new window).
    fn step(&mut self, x: u64) -> u32 {
        if x == 0 {
            return 1;
        }
        // 5 control bits cap the recorded leading-zero count at 31;
        // excess leading zeros just ride inside the meaningful bits.
        let lead = x.leading_zeros().min(31);
        let trail = x.trailing_zeros();
        if self.sig != 0 && lead >= self.lead && trail >= 64 - self.lead - self.sig {
            2 + self.sig
        } else {
            self.lead = lead;
            self.sig = 64 - lead - trail;
            2 + 5 + 6 + self.sig
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental per-column statistics
// ---------------------------------------------------------------------------

/// Append-only statistics sufficient to compute every candidate encoding's
/// exact payload size without rescanning the rows. All fields are monotone
/// under append, so [`ColPageBuilder::try_push`] can cheaply test whether
/// one more row still fits the page.
#[derive(Debug, Clone, Copy)]
struct ColStats {
    first_bits: u64,
    /// OR of `bits[i] ^ bits[0]` — drives the XOR width.
    or_acc: u64,
    int_ok: bool,
    first_i: i64,
    prev_i: i64,
    min_i: i64,
    max_i: i64,
    /// gcd of `x_i - x_0` (shift-invariant, so it divides `x_i - min`).
    g_for: u64,
    /// gcd and max of the zig-zagged successive differences.
    g_delta: u64,
    max_zz: u64,
    /// Previous value's bits and the running Gorilla cost/window.
    prev_bits: u64,
    gor: GorillaWindow,
    gor_bits: usize,
    /// Exponent range and OR of all value bits for `SPLIT`.
    min_exp: u16,
    max_exp: u16,
    or_all: u64,
}

impl ColStats {
    fn new(v: f64) -> Self {
        let bits = v.to_bits();
        let int = as_exact_int(v);
        ColStats {
            first_bits: bits,
            or_acc: 0,
            int_ok: int.is_some(),
            first_i: int.unwrap_or(0),
            prev_i: int.unwrap_or(0),
            min_i: int.unwrap_or(0),
            max_i: int.unwrap_or(0),
            g_for: 0,
            g_delta: 0,
            max_zz: 0,
            prev_bits: bits,
            gor: GorillaWindow::new(),
            gor_bits: 0,
            min_exp: ((bits >> 52) & 0x7FF) as u16,
            max_exp: ((bits >> 52) & 0x7FF) as u16,
            or_all: bits,
        }
    }

    fn push(&mut self, v: f64) {
        self.or_acc |= v.to_bits() ^ self.first_bits;
        self.gor_bits += self.gor.step(v.to_bits() ^ self.prev_bits) as usize;
        self.prev_bits = v.to_bits();
        let exp = ((v.to_bits() >> 52) & 0x7FF) as u16;
        self.min_exp = self.min_exp.min(exp);
        self.max_exp = self.max_exp.max(exp);
        self.or_all |= v.to_bits();
        if self.int_ok {
            match as_exact_int(v) {
                Some(i) => {
                    self.min_i = self.min_i.min(i);
                    self.max_i = self.max_i.max(i);
                    self.g_for = gcd(self.g_for, i.abs_diff(self.first_i));
                    let zz = zigzag(i - self.prev_i);
                    self.g_delta = gcd(self.g_delta, zz);
                    self.max_zz = self.max_zz.max(zz);
                    self.prev_i = i;
                }
                None => self.int_ok = false,
            }
        }
    }

    fn xor_width(&self) -> u32 {
        if self.or_acc == 0 {
            0
        } else {
            64 - self.or_acc.leading_zeros() - self.or_acc.trailing_zeros()
        }
    }

    fn for_width(&self) -> u32 {
        let g = self.g_for.max(1);
        bits_needed(self.min_i.abs_diff(self.max_i) / g)
    }

    fn delta_width(&self) -> u32 {
        let g = self.g_delta.max(1);
        bits_needed(self.max_zz / g)
    }

    /// Mantissa bits `SPLIT` keeps: 52 minus the trailing zeros common to
    /// every value on the page.
    fn split_mant_width(&self) -> u32 {
        52 - (self.or_all.trailing_zeros().min(52))
    }

    /// Per-value bits of the `SPLIT` encoding: the sign bit, the packed
    /// exponent delta, and the kept mantissa bits.
    fn split_width(&self) -> u32 {
        1 + bits_needed((self.max_exp - self.min_exp) as u64) + self.split_mant_width()
    }

    /// `(encoding, payload bytes)` of the best encoding for `n` rows.
    fn best(&self, n: usize) -> (ColEncoding, usize) {
        let mut enc = ColEncoding::Raw;
        let mut size = n * 8;
        let xor = (n * self.xor_width() as usize).div_ceil(8);
        if xor < size {
            enc = ColEncoding::Xor;
            size = xor;
        }
        let gor = self.gor_bits.div_ceil(8);
        if gor < size {
            enc = ColEncoding::Gorilla;
            size = gor;
        }
        let split = (n * self.split_width() as usize).div_ceil(8);
        if split < size {
            enc = ColEncoding::Split;
            size = split;
        }
        if self.int_ok {
            let fo = (n * self.for_width() as usize).div_ceil(8);
            if fo < size {
                enc = ColEncoding::IntFor;
                size = fo;
            }
            let de = ((n - 1) * self.delta_width() as usize).div_ceil(8);
            if de < size {
                enc = ColEncoding::IntDelta;
                size = de;
            }
        }
        (enc, size)
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Accumulates rows and seals them into one compressed columnar page.
#[derive(Debug)]
pub struct ColPageBuilder {
    ncols: usize,
    /// Row-major staging area (the encoder walks it column by column).
    rows: Vec<f64>,
    stats: Vec<ColStats>,
}

impl ColPageBuilder {
    /// A builder for rows of `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        assert!(
            ncols > 0 && ncols <= max_cols(),
            "column count {ncols} out of range for a columnar page"
        );
        ColPageBuilder {
            ncols,
            rows: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Number of staged rows.
    pub fn nrows(&self) -> usize {
        if self.stats.is_empty() {
            0
        } else {
            self.rows.len() / self.ncols
        }
    }

    /// True when no rows are staged.
    pub fn is_empty(&self) -> bool {
        self.nrows() == 0
    }

    /// Drops all staged rows.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.stats.clear();
    }

    /// Exact encoded size of the staged rows.
    pub fn encoded_size(&self) -> usize {
        let n = self.nrows();
        if n == 0 {
            return HDR;
        }
        HDR + self.stats.iter().map(|s| DIR + s.best(n).1).sum::<usize>()
    }

    /// Appends one row if the sealed page would still fit `PAGE_SIZE`;
    /// returns `false` (leaving the builder unchanged) otherwise.
    pub fn try_push(&mut self, row: &[f64]) -> bool {
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        let n = self.nrows();
        if n >= u16::MAX as usize {
            return false;
        }
        // Trial-update a copy of the stats: every statistic is monotone
        // under append, so accept/reject is exact, not a heuristic.
        let mut trial: Vec<ColStats> = if n == 0 {
            row.iter().map(|&v| ColStats::new(v)).collect()
        } else {
            let mut t = self.stats.clone();
            for (s, &v) in t.iter_mut().zip(row) {
                s.push(v);
            }
            t
        };
        let size = HDR + trial.iter().map(|s| DIR + s.best(n + 1).1).sum::<usize>();
        if size > PAGE_SIZE {
            return false;
        }
        std::mem::swap(&mut self.stats, &mut trial);
        self.rows.extend_from_slice(row);
        true
    }

    /// Encodes the staged rows into `page` (fully overwritten).
    pub fn seal_into(&self, page: &mut [u8; PAGE_SIZE]) {
        let n = self.nrows();
        debug_assert!(self.encoded_size() <= PAGE_SIZE);
        page.fill(0);
        page[0..2].copy_from_slice(&(n as u16).to_le_bytes());
        page[2..4].copy_from_slice(&COLPAGE_TAG.to_le_bytes());
        page[4..6].copy_from_slice(&(self.ncols as u16).to_le_bytes());
        let mut off = HDR + DIR * self.ncols;
        for (c, s) in self.stats.iter().enumerate() {
            let (enc, size) = s.best(n);
            let (width, aux, reference) = match enc {
                ColEncoding::Raw => (64u32, 0u32, 0u64),
                ColEncoding::IntFor => (s.for_width(), s.g_for.max(1) as u32, s.min_i as u64),
                ColEncoding::IntDelta => {
                    (s.delta_width(), s.g_delta.max(1) as u32, s.first_i as u64)
                }
                ColEncoding::Xor => {
                    let trail = if s.or_acc == 0 {
                        0
                    } else {
                        s.or_acc.trailing_zeros()
                    };
                    (s.xor_width(), trail, s.first_bits)
                }
                // Variable-width payload: the byte length rides in `aux`
                // and the first value in the reference slot.
                ColEncoding::Gorilla => (0u32, size as u32, s.first_bits),
                ColEncoding::Split => {
                    let ew = s.split_width() - 1 - s.split_mant_width();
                    let aux = ew | (s.split_mant_width() << 8);
                    (s.split_width(), aux, s.min_exp as u64)
                }
            };
            let d = HDR + DIR * c;
            page[d] = enc as u8;
            page[d + 1] = width as u8;
            page[d + 2..d + 4].copy_from_slice(&(off as u16).to_le_bytes());
            page[d + 4..d + 8].copy_from_slice(&aux.to_le_bytes());
            page[d + 8..d + 16].copy_from_slice(&reference.to_le_bytes());
            self.encode_column(c, enc, width, aux, &mut page[off..off + size]);
            off += size;
        }
    }

    fn encode_column(&self, c: usize, enc: ColEncoding, width: u32, aux: u32, out: &mut [u8]) {
        let n = self.nrows();
        let col = || (0..n).map(|r| self.rows[r * self.ncols + c]);
        match enc {
            ColEncoding::Raw => {
                for (i, v) in col().enumerate() {
                    out[i * 8..i * 8 + 8].copy_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            ColEncoding::IntFor => {
                let g = aux as u64;
                let min = self.stats[c].min_i;
                for (i, v) in col().enumerate() {
                    let delta = (v as i64 - min) as u64 / g;
                    write_bits(out, i * width as usize, width, delta);
                }
            }
            ColEncoding::IntDelta => {
                let g = aux as u64;
                let mut prev = self.stats[c].first_i;
                for (i, v) in col().enumerate().skip(1) {
                    let zz = zigzag(v as i64 - prev) / g;
                    write_bits(out, (i - 1) * width as usize, width, zz);
                    prev = v as i64;
                }
            }
            ColEncoding::Xor => {
                let first = self.stats[c].first_bits;
                for (i, v) in col().enumerate() {
                    let x = (v.to_bits() ^ first) >> aux;
                    write_bits(out, i * width as usize, width, x);
                }
            }
            ColEncoding::Gorilla => {
                let mut w = GorillaWindow::new();
                let mut prev = self.stats[c].first_bits;
                let mut bit = 0usize;
                for v in col().skip(1) {
                    let x = v.to_bits() ^ prev;
                    prev = v.to_bits();
                    if x == 0 {
                        bit += 1; // control '0' (the buffer is zeroed)
                        continue;
                    }
                    write_bits(out, bit, 1, 1);
                    bit += 1;
                    let lead = x.leading_zeros().min(31);
                    let trail = x.trailing_zeros();
                    let fits = w.sig != 0 && lead >= w.lead && trail >= 64 - w.lead - w.sig;
                    if !fits {
                        w.lead = lead;
                        w.sig = 64 - lead - trail;
                        write_bits(out, bit, 1, 1);
                        bit += 1;
                        write_bits(out, bit, 5, w.lead as u64);
                        bit += 5;
                        write_bits(out, bit, 6, (w.sig - 1) as u64);
                        bit += 6;
                    } else {
                        bit += 1; // control '0': reuse the window
                    }
                    write_bits(out, bit, w.sig, x >> (64 - w.lead - w.sig));
                    bit += w.sig as usize;
                }
            }
            ColEncoding::Split => {
                let s = &self.stats[c];
                let (min_exp, ew, mw) = (
                    s.min_exp as u64,
                    width - 1 - s.split_mant_width(),
                    s.split_mant_width(),
                );
                for (i, v) in col().enumerate() {
                    let bits = v.to_bits();
                    let mut bit = i * width as usize;
                    write_bits(out, bit, 1, bits >> 63);
                    bit += 1;
                    write_bits(out, bit, ew, ((bits >> 52) & 0x7FF) - min_exp);
                    bit += ew as usize;
                    write_bits(out, bit, mw, (bits & ((1u64 << 52) - 1)) >> (52 - mw));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Transposes row `r` of decoded column buffers into `row`.
pub fn gather_row(cols: &[Vec<f64>], r: usize, row: &mut [f64]) {
    for (v, col) in row.iter_mut().zip(cols.iter()) {
        *v = col[r];
    }
}

/// Decodes a columnar page, appending each column's values to `cols[c]`.
/// Returns the number of rows decoded.
pub fn decode_into(page: &[u8], ncols: usize, cols: &mut [Vec<f64>]) -> Result<usize> {
    debug_assert!(page.len() >= PAGE_SIZE);
    if !is_colpage(page) {
        return Err(StoreError::Corrupt(
            "decode of a non-columnar page".to_string(),
        ));
    }
    let n = page_nrows(page);
    let stored_cols = u16::from_le_bytes([page[4], page[5]]) as usize;
    if stored_cols != ncols || cols.len() != ncols {
        return Err(StoreError::Corrupt(format!(
            "columnar page has {stored_cols} columns, expected {ncols}"
        )));
    }
    for (c, out) in cols.iter_mut().enumerate() {
        let d = HDR + DIR * c;
        let enc = ColEncoding::from_byte(page[d])?;
        let width = page[d + 1] as u32;
        let off = u16::from_le_bytes([page[d + 2], page[d + 3]]) as usize;
        let aux = u32::from_le_bytes([page[d + 4], page[d + 5], page[d + 6], page[d + 7]]);
        let reference = u64::from_le_bytes([
            page[d + 8],
            page[d + 9],
            page[d + 10],
            page[d + 11],
            page[d + 12],
            page[d + 13],
            page[d + 14],
            page[d + 15],
        ]);
        let end = match enc {
            ColEncoding::Raw => off + n * 8,
            ColEncoding::IntDelta => off + (n.saturating_sub(1) * width as usize).div_ceil(8),
            ColEncoding::Gorilla => off + aux as usize,
            _ => off + (n * width as usize).div_ceil(8),
        };
        if end > PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "columnar payload for column {c} overruns the page ({end} > {PAGE_SIZE})"
            )));
        }
        let payload = &page[off..end];
        out.reserve(n);
        match enc {
            ColEncoding::Raw => {
                for i in 0..n {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&payload[i * 8..i * 8 + 8]);
                    out.push(f64::from_bits(u64::from_le_bytes(b)));
                }
            }
            ColEncoding::IntFor => {
                let g = aux as u64;
                let min = reference as i64;
                for i in 0..n {
                    let delta = read_bits(payload, i * width as usize, width);
                    out.push((min + (delta * g) as i64) as f64);
                }
            }
            ColEncoding::IntDelta => {
                let g = aux as u64;
                let mut cur = reference as i64;
                out.push(cur as f64);
                for i in 1..n {
                    let zz = read_bits(payload, (i - 1) * width as usize, width) * g;
                    cur += unzigzag(zz);
                    out.push(cur as f64);
                }
            }
            ColEncoding::Xor => {
                for i in 0..n {
                    let x = read_bits(payload, i * width as usize, width) << aux;
                    out.push(f64::from_bits(x ^ reference));
                }
            }
            ColEncoding::Gorilla => {
                let mut prev = reference;
                out.push(f64::from_bits(prev));
                let (mut bit, mut lead, mut sig) = (0usize, 0u32, 0u32);
                for _ in 1..n {
                    if read_bits(payload, bit, 1) == 0 {
                        bit += 1;
                        out.push(f64::from_bits(prev));
                        continue;
                    }
                    bit += 1;
                    if read_bits(payload, bit, 1) == 1 {
                        bit += 1;
                        lead = read_bits(payload, bit, 5) as u32;
                        bit += 5;
                        sig = read_bits(payload, bit, 6) as u32 + 1;
                        bit += 6;
                    } else {
                        bit += 1;
                    }
                    if lead + sig > 64 {
                        return Err(StoreError::Corrupt(format!(
                            "gorilla window {lead}+{sig} exceeds 64 bits in column {c}"
                        )));
                    }
                    let m = read_bits(payload, bit, sig);
                    bit += sig as usize;
                    prev ^= m << (64 - lead - sig);
                    out.push(f64::from_bits(prev));
                }
            }
            ColEncoding::Split => {
                let (ew, mw) = (aux & 0xFF, (aux >> 8) & 0xFF);
                if 1 + ew + mw != width || mw > 52 || ew > 11 {
                    return Err(StoreError::Corrupt(format!(
                        "split widths 1+{ew}+{mw} disagree with {width} in column {c}"
                    )));
                }
                for i in 0..n {
                    let mut bit = i * width as usize;
                    let sign = read_bits(payload, bit, 1);
                    bit += 1;
                    let exp = read_bits(payload, bit, ew) + reference;
                    bit += ew as usize;
                    let mant = read_bits(payload, bit, mw) << (52 - mw);
                    out.push(f64::from_bits((sign << 63) | (exp << 52) | mant));
                }
            }
        }
    }
    Ok(n)
}

/// Per-column `(encoding, payload bytes)` of a sealed page, for the
/// compression accounting surfaced in benchmarks and experiments.
pub fn column_layout(page: &[u8], ncols: usize) -> Result<Vec<(ColEncoding, usize)>> {
    if !is_colpage(page) {
        return Err(StoreError::Corrupt(
            "layout of a non-columnar page".to_string(),
        ));
    }
    let n = page_nrows(page);
    let mut out = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let d = HDR + DIR * c;
        let enc = ColEncoding::from_byte(page[d])?;
        let width = page[d + 1] as u32;
        let aux = u32::from_le_bytes([page[d + 4], page[d + 5], page[d + 6], page[d + 7]]);
        let bytes = match enc {
            ColEncoding::Raw => n * 8,
            ColEncoding::IntDelta => (n.saturating_sub(1) * width as usize).div_ceil(8),
            ColEncoding::Gorilla => aux as usize,
            _ => (n * width as usize).div_ceil(8),
        };
        out.push((enc, bytes));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let ncols = rows[0].len();
        let mut b = ColPageBuilder::new(ncols);
        for r in rows {
            assert!(b.try_push(r), "row must fit in these tests");
        }
        let mut page = [0u8; PAGE_SIZE];
        let mut boxed: Box<[u8; PAGE_SIZE]> = Box::new(page);
        b.seal_into(&mut boxed);
        page = *boxed;
        assert!(is_colpage(&page));
        assert_eq!(page_nrows(&page), rows.len());
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); ncols];
        let n = decode_into(&page, ncols, &mut cols).unwrap();
        assert_eq!(n, rows.len());
        (0..n)
            .map(|r| (0..ncols).map(|c| cols[c][r]).collect())
            .collect()
    }

    fn assert_bit_exact(rows: &[Vec<f64>]) {
        let back = roundtrip(rows);
        for (a, b) in rows.iter().zip(&back) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn timestamps_and_floats_roundtrip() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    300.0 * (i % 7 + 1) as f64,         // dt: multiples of 300
                    -3.0 - (i as f64) * 0.001,          // dv: full precision
                    1.0e6 + 300.0 * i as f64,           // ascending timestamps
                    1.0e6 + 300.0 * (i as f64) + 600.0, // more timestamps
                ]
            })
            .collect();
        assert_bit_exact(&rows);
    }

    #[test]
    fn constant_and_special_values_roundtrip() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                vec![
                    42.0,
                    -0.0,
                    if i % 2 == 0 { f64::INFINITY } else { -1.5 },
                    f64::MIN_POSITIVE * (i + 1) as f64,
                ]
            })
            .collect();
        assert_bit_exact(&rows);
    }

    #[test]
    fn integer_columns_pick_integer_encodings() {
        let mut b = ColPageBuilder::new(2);
        for i in 0..300 {
            assert!(b.try_push(&[300.0 * (i % 90) as f64, 1.0e8 + 300.0 * i as f64]));
        }
        let mut page = Box::new([0u8; PAGE_SIZE]);
        b.seal_into(&mut page);
        let layout = column_layout(&page[..], 2).unwrap();
        assert!(
            matches!(layout[0].0, ColEncoding::IntFor | ColEncoding::IntDelta),
            "{layout:?}"
        );
        assert!(
            matches!(layout[1].0, ColEncoding::IntFor | ColEncoding::IntDelta),
            "{layout:?}"
        );
        // Multiples of 300 with small range: far better than 2x.
        let packed: usize = layout.iter().map(|(_, b)| b).sum();
        assert!(packed * 4 < 300 * 2 * 8, "packed={packed}");
    }

    #[test]
    fn full_precision_column_falls_back_without_loss() {
        // Values engineered so no integer or xor encoding can win.
        let mut rows = Vec::new();
        let mut x = 0.123_456_789_f64;
        for _ in 0..100 {
            x = (x * 1.000_1).sin() + 1.0e-9;
            rows.push(vec![x, -x]);
        }
        assert_bit_exact(&rows);
    }

    #[test]
    fn builder_rejects_rows_past_capacity() {
        let mut b = ColPageBuilder::new(4);
        let mut n = 0usize;
        // Incompressible noise: capacity is the raw bound.
        let mut bits = 0x9E3779B97F4A7C15u64;
        loop {
            let mut row = [0.0f64; 4];
            for v in row.iter_mut() {
                bits = bits.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v = f64::from_bits((bits >> 12) | 0x3FF0000000000000);
            }
            if !b.try_push(&row) {
                break;
            }
            n += 1;
        }
        assert_eq!(b.nrows(), n);
        assert!(b.encoded_size() <= PAGE_SIZE);
        // Raw capacity for 4 columns: (4096 - 8 - 64) / 32 rows, and the
        // builder must reach at least that even for pure noise.
        assert!(n >= (PAGE_SIZE - HDR - 4 * DIR) / 32, "n={n}");
        let mut page = Box::new([0u8; PAGE_SIZE]);
        b.seal_into(&mut page);
        assert_eq!(page_nrows(&page[..]), n);
    }

    #[test]
    fn decode_rejects_raw_pages_and_bad_counts() {
        let page = [0u8; PAGE_SIZE];
        let mut cols = vec![Vec::new(); 2];
        assert!(decode_into(&page, 2, &mut cols).is_err());
        let mut b = ColPageBuilder::new(2);
        b.try_push(&[1.0, 2.0]);
        let mut sealed = Box::new([0u8; PAGE_SIZE]);
        b.seal_into(&mut sealed);
        let mut three = vec![Vec::new(); 3];
        assert!(decode_into(&sealed[..], 3, &mut three).is_err());
    }

    #[test]
    fn bit_io_roundtrips_across_boundaries() {
        let mut buf = vec![0u8; 64];
        let vals = [0u64, 1, 0x7F, 0xDEAD_BEEF, u64::MAX, 1 << 63];
        let widths = [1u32, 7, 13, 32, 64, 64];
        let mut bit = 3usize;
        for (v, w) in vals.iter().zip(widths) {
            write_bits(&mut buf, bit, w, *v);
            bit += w as usize;
        }
        bit = 3;
        for (v, w) in vals.iter().zip(widths) {
            assert_eq!(read_bits(&buf, bit, w), v & mask(w));
            bit += w as usize;
        }
    }
}

#[cfg(all(test, not(miri)))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A mix of the codec's interesting cases: sample-period multiples
    /// (IntFor/IntDelta fodder), large exact integers, arbitrary bit
    /// patterns (NaNs and infinities included — the codec is bit-exact,
    /// not value-exact), and the signed zeros.
    fn arb_value() -> impl Strategy<Value = f64> {
        (0u32..6, any::<u64>()).prop_map(|(kind, bits)| match kind {
            0 => (((bits % 20_000) as i64 - 10_000) * 300) as f64,
            1 => (bits & ((1u64 << 40) - 1)) as f64,
            2 | 3 => f64::from_bits(bits),
            4 => [0.0, -0.0][(bits % 2) as usize],
            _ => [f64::INFINITY, f64::NEG_INFINITY, f64::NAN][(bits % 3) as usize],
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_page_roundtrips_bit_exactly(
            ncols in 1usize..6,
            rows in proptest::collection::vec(
                proptest::collection::vec(arb_value(), 6), 1..120),
        ) {
            let mut b = ColPageBuilder::new(ncols);
            let mut staged: Vec<Vec<f64>> = Vec::new();
            for r in &rows {
                if b.try_push(&r[..ncols]) {
                    staged.push(r[..ncols].to_vec());
                }
            }
            prop_assume!(!staged.is_empty());
            let mut page = Box::new([0u8; PAGE_SIZE]);
            b.seal_into(&mut page);
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); ncols];
            let n = decode_into(&page[..], ncols, &mut cols).unwrap();
            prop_assert_eq!(n, staged.len());
            for (r, row) in staged.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    prop_assert_eq!(cols[c][r].to_bits(), v.to_bits());
                }
            }
        }
    }
}
