//! Diagnostics: rule identifiers, one finding, and the two output
//! formats (rustc-style text, JSON for CI artifacts).

use std::fmt;

/// The lint rules. `L0` audits the suppression comments themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Suppression audit: `// lint: allow(…)` must name known rules and
    /// carry a non-empty reason.
    L0,
    /// No `.unwrap()` / `.expect()` / `panic!` / `unimplemented!` /
    /// `todo!` in production code paths.
    L1,
    /// Every `unsafe` is immediately preceded by a `// SAFETY:` comment.
    L2,
    /// Lock acquisitions respect the declared partial order.
    L3,
    /// Metric names match the `obs::names` registry (both directions),
    /// and the README table is in sync.
    L4,
    /// No `let _ =` result discards in `pagestore` / `core`.
    L5,
    /// Interprocedural lock order: the classes a callee acquires
    /// (transitively, bounded depth) respect the partial order against
    /// the classes the caller holds at the call site.
    L6,
    /// No blocking call (file I/O, fsync, socket ops, sleep, recv)
    /// while any guard is live, outside the `[[allow_blocking]]`
    /// allowlist in `ci/lock-order.toml`.
    L7,
    /// Contract drift: HTTP routes vs the `routes.rs` registry vs
    /// `check_query_params` coverage vs the README table, and CLI
    /// subcommands vs the usage text vs the README.
    L8,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::L0,
        Rule::L1,
        Rule::L2,
        Rule::L3,
        Rule::L4,
        Rule::L5,
        Rule::L6,
        Rule::L7,
        Rule::L8,
    ];

    /// Parses `"L1"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "L0" => Some(Rule::L0),
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            "L7" => Some(Rule::L7),
            "L8" => Some(Rule::L8),
            _ => None,
        }
    }

    /// `"L1"`, …
    pub fn id(self) -> &'static str {
        match self {
            Rule::L0 => "L0",
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
        }
    }

    /// One-line rule description (for `--list`).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::L0 => "suppression comments name known rules, carry a reason, and still fire",
            Rule::L1 => "no unwrap/expect/panic!/unimplemented!/todo! in production paths",
            Rule::L2 => "every `unsafe` is immediately preceded by a `// SAFETY:` comment",
            Rule::L3 => "lock acquisitions respect the order declared in ci/lock-order.toml",
            Rule::L4 => "obs metric names match the crates/obs/src/names.rs registry",
            Rule::L5 => "no `let _ =` result discards in pagestore/core production code",
            Rule::L6 => "lock order holds across intra-crate calls (call-graph summaries)",
            Rule::L7 => "no blocking call under a live guard outside the allowlist",
            Rule::L8 => "HTTP routes and CLI subcommands match their registries and docs",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding at a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or suppress it.
    pub help: String,
}

impl Diagnostic {
    /// rustc-style rendering:
    /// `error[L1]: message\n  --> file:line:col\n   = help: …`
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "error[{}]: {}\n  --> {}:{}:{}\n",
            self.rule, self.message, self.file, self.line, self.col
        );
        if !self.help.is_empty() {
            out.push_str(&format!("   = help: {}\n", self.help));
        }
        out
    }

    /// One JSON object (manual serialization; the crate is zero-dep).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{}}}",
            self.rule,
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.help),
        )
    }
}

/// One full run, for the stable `--format json` schema (documented in
/// the README "Static analysis" section): schema version, what was
/// analyzed, how long it took, per-rule counts, and the findings.
#[derive(Debug, Clone)]
pub struct Report {
    /// Sorted findings.
    pub diags: Vec<Diagnostic>,
    /// Rules that ran, in report order.
    pub rules: Vec<Rule>,
    /// Number of `.rs` files analyzed.
    pub files_analyzed: usize,
    /// Wall-clock of the whole run in milliseconds.
    pub wall_ms: u64,
}

impl Report {
    /// The versioned JSON artifact shape:
    ///
    /// ```json
    /// {"schema":1,"files_analyzed":N,"wall_ms":M,"count":K,
    ///  "rule_counts":{"L0":0,…},"diagnostics":[{…}]}
    /// ```
    ///
    /// `rule_counts` has one key per *enabled* rule (so a zero means
    /// "ran and found nothing", a missing key means "not run");
    /// `count` is the total and equals the `diagnostics` length.
    pub fn render_json(&self) -> String {
        let counts: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                let n = self.diags.iter().filter(|d| d.rule == *r).count();
                format!("\"{}\":{}", r.id(), n)
            })
            .collect();
        let items: Vec<String> = self.diags.iter().map(|d| d.render_json()).collect();
        format!(
            "{{\"schema\":1,\"files_analyzed\":{},\"wall_ms\":{},\"count\":{},\"rule_counts\":{{{}}},\"diagnostics\":[{}]}}\n",
            self.files_analyzed,
            self.wall_ms,
            self.diags.len(),
            counts.join(","),
            items.join(",")
        )
    }
}

/// Renders the full report in the requested format. Text mode ends with
/// a `error: N violation(s)` summary line; JSON mode is the versioned
/// [`Report::render_json`] object, stable for CI artifact consumers.
pub fn render_report(report: &Report, json: bool) -> String {
    if json {
        report.render_json()
    } else if report.diags.is_empty() {
        String::new()
    } else {
        let mut out = String::new();
        for d in &report.diags {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!("error: {} violation(s)\n", report.diags.len()));
        out
    }
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: Rule::L1,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 13,
            message: "`.unwrap()` in production code".into(),
            help: "propagate the error".into(),
        }
    }

    #[test]
    fn text_is_rustc_style() {
        let t = sample().render_text();
        assert!(t.starts_with("error[L1]: "));
        assert!(t.contains("--> crates/x/src/lib.rs:7:13"));
        assert!(t.contains("= help: propagate"));
    }

    #[test]
    fn json_shape() {
        let report = Report {
            diags: vec![sample()],
            rules: vec![Rule::L0, Rule::L1],
            files_analyzed: 42,
            wall_ms: 17,
        };
        let j = render_report(&report, true);
        assert!(j.contains("\"schema\":1"));
        assert!(j.contains("\"files_analyzed\":42"));
        assert!(j.contains("\"wall_ms\":17"));
        assert!(j.contains("\"count\":1"));
        // Enabled-but-clean rules report an explicit zero.
        assert!(j.contains("\"rule_counts\":{\"L0\":0,\"L1\":1}"));
        assert!(j.contains("\"rule\":\"L1\""));
        assert!(j.contains("\"line\":7"));
        // Valid-enough JSON: balanced braces, no trailing comma.
        assert!(j.trim_end().ends_with("}]}"));
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn rule_parse_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("l3"), Some(Rule::L3));
        assert_eq!(Rule::parse("L9"), None);
    }
}
