//! Query plans and execution over the feature tables (§4.4).
//!
//! Execution is split into named *phases* whose buffer-pool deltas tile
//! the query: snapshots are taken only at phase boundaries, so the sum of
//! per-phase I/O deltas equals the pool's total delta for the query by
//! construction. Each phase also runs under an [`obs::span`], so query
//! execution feeds the `span.query.*` latency histograms and — when a
//! trace is active — an `EXPLAIN ANALYZE`-style call tree.

use crate::result::SegmentPair;
use crate::tables::pair_from_row;
use featurespace::batch::{boundaries_intersect_cols, zone_may_intersect};
use featurespace::{edge_crosses_region, FeaturePoint, QueryRegion, SearchKind};
use pagestore::{Database, PoolStats, Result, Table, ZoneScanStats};
use std::sync::Arc;
use std::time::Instant;

/// How a search is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPlan {
    /// Sequential scan of the feature tables, evaluating the full
    /// intersection predicate per row.
    SeqScan,
    /// B+tree range scans: a point query on the single-corner table and
    /// one line query per boundary edge (each edge entry carries both
    /// endpoints, so corner membership folds into the edge scans),
    /// unioned by row id — the paper's indexed execution.
    Index,
}

impl QueryPlan {
    /// Stable display name (`seq_scan` / `index`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryPlan::SeqScan => "seq_scan",
            QueryPlan::Index => "index",
        }
    }
}

/// Metrics for one execution phase of a query.
///
/// Phases tile the query's execution: buffer-pool snapshots are taken
/// only at phase boundaries, so summing `io` over the phases reproduces
/// [`QueryStats::io`] exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase name (`plan`, `scan`, `probe`, `fetch`, `refine`).
    pub name: &'static str,
    /// Wall-clock time spent in the phase, in seconds.
    pub wall_seconds: f64,
    /// Rows (or index entries) entering the phase.
    pub rows_in: u64,
    /// Rows leaving the phase.
    pub rows_out: u64,
    /// Buffer-pool activity during the phase.
    pub io: PoolStats,
}

/// Execution metrics for one query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Wall-clock execution time in seconds.
    pub wall_seconds: f64,
    /// Rows (or index entries) examined.
    pub rows_considered: u64,
    /// Result tuples returned (after deduplication).
    pub results: u64,
    /// Buffer-pool activity during the query.
    pub io: PoolStats,
    /// Per-phase breakdown; the phase `io` deltas sum to `io`.
    pub phases: Vec<PhaseStats>,
}

/// Measures one phase: wall time, an [`obs`] span, and the pool delta
/// from construction to [`Phase::finish`]. Phases must be constructed
/// and finished back-to-back so their deltas tile the query.
struct Phase<'a> {
    db: &'a Database,
    span: obs::SpanGuard,
    io_start: PoolStats,
    t_start: Instant,
}

impl<'a> Phase<'a> {
    fn start(db: &'a Database, name: &'static str) -> Self {
        Phase {
            db,
            span: obs::span(name),
            io_start: db.stats(),
            t_start: Instant::now(),
        }
    }

    fn finish(self, rows_in: u64, rows_out: u64) -> PhaseStats {
        let io = self.db.stats().since(&self.io_start);
        let wall_seconds = self.t_start.elapsed().as_secs_f64();
        self.span.record("rows_in", rows_in);
        self.span.record("rows_out", rows_out);
        self.span.record("physical_reads", io.physical_reads);
        self.span.record("physical_writes", io.physical_writes);
        self.span.record("pool_hits", io.hits);
        self.span.record("pool_misses", io.misses);
        // Strip the "query." prefix used for span/histogram names.
        let name = self
            .span
            .name()
            .rsplit_once('.')
            .map_or(self.span.name(), |(_, last)| last);
        PhaseStats {
            name,
            wall_seconds,
            rows_in,
            rows_out,
            io,
        }
    }
}

/// Fault-injection hatch for the alert-smoke harness: when
/// `SEGDIFF_FAULT_SLEEP_MS` is set, every query executed after
/// `SEGDIFF_FAULT_DELAY_SECS` (default 0, measured from the *first*
/// query) sleeps that long before running — a controlled latency jump
/// the dogfooded alerting pipeline must detect. Both variables are read
/// once; unset or unparsable values disable the hatch entirely, so
/// production runs pay one atomic load.
fn fault_injection_sleep() {
    use std::sync::OnceLock;
    use std::time::Duration;
    static CONFIG: OnceLock<Option<(Duration, Duration)>> = OnceLock::new();
    static FIRST_QUERY: OnceLock<Instant> = OnceLock::new();
    fn read_config() -> Option<(Duration, Duration)> {
        let sleep_ms: u64 = std::env::var("SEGDIFF_FAULT_SLEEP_MS").ok()?.parse().ok()?;
        let delay_secs: u64 = std::env::var("SEGDIFF_FAULT_DELAY_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Some((
            Duration::from_millis(sleep_ms),
            Duration::from_secs(delay_secs),
        ))
    }
    let Some((sleep, delay)) = *CONFIG.get_or_init(read_config) else {
        return;
    };
    let first = *FIRST_QUERY.get_or_init(Instant::now);
    if first.elapsed() >= delay {
        std::thread::sleep(sleep);
    }
}

/// Runs a drop/jump search over the three per-corner-count feature tables
/// of the matching kind. Returns deduplicated, time-ordered segment pairs
/// plus the per-phase breakdown.
pub(crate) fn run_feature_query(
    db: &Database,
    tables: &[Arc<Table>; 3],
    region: &QueryRegion,
    plan: QueryPlan,
    rows_considered: &mut u64,
) -> Result<(Vec<SegmentPair>, Vec<PhaseStats>)> {
    let mut phases = Vec::with_capacity(4);
    fault_injection_sleep();

    // Phase: plan selection. Trivial here (the caller chose), but gives
    // the trace its "plan chosen" node and anchors the I/O accounting.
    let p = Phase::start(db, "query.plan");
    p.span.record("plan", plan.name());
    p.span.record("kind", region.kind.name());
    if let Some(id) = obs::current_trace_id() {
        // The server tags the worker thread with the request's trace id;
        // stamping it here proves propagation reached the executor.
        p.span.record("trace_id", id);
    }
    phases.push(p.finish(0, 0));

    let mut out = Vec::new();
    match plan {
        QueryPlan::SeqScan => {
            // Phase: sequential candidate scan, a page at a time. The
            // zone hierarchy is pruned top-down — whole segment, then
            // 64-page extents, then page entries — before any page is
            // read; each skip is conservative, so pruning is lossless.
            // Surviving pages (compressed columnar or raw) decode
            // straight into struct-of-arrays column buffers, which the
            // batch intersection kernel evaluates in place; only the few
            // matching rows are ever materialized row-wise, for result
            // assembly. `rows_considered` counts only rows actually
            // examined — pruned pages contribute nothing.
            let p = Phase::start(db, "query.scan");
            let mut scanned = 0u64;
            let mut zstats = ZoneScanStats::default();
            let mut cols: Vec<Vec<f64>> = Vec::new();
            let mut mask: Vec<bool> = Vec::new();
            let mut row: Vec<f64> = Vec::new();
            for (i, table) in tables.iter().enumerate() {
                let corners = i + 1;
                let s = table.scan_columns(
                    |mins, maxs| zone_may_intersect(corners, mins, maxs, region),
                    &mut cols,
                    |cols, n| {
                        scanned += n as u64;
                        boundaries_intersect_cols(corners, cols, n, region, &mut mask);
                        for r in 0..n {
                            if mask[r] {
                                row.clear();
                                row.extend(cols.iter().map(|c| c[r]));
                                out.push(pair_from_row(&row, corners));
                            }
                        }
                        true
                    },
                )?;
                zstats.pages_scanned += s.pages_scanned;
                zstats.pages_pruned += s.pages_pruned;
                zstats.extents_pruned += s.extents_pruned;
            }
            *rows_considered += scanned;
            p.span.record("pages_scanned", zstats.pages_scanned);
            p.span.record("pages_pruned", zstats.pages_pruned);
            p.span.record("extents_pruned", zstats.extents_pruned);
            phases.push(p.finish(scanned, out.len() as u64));
        }
        QueryPlan::Index => {
            // Phase: index probes — B+tree range scans issued through
            // the batched descend-once-merge-along-the-leaf-chain path,
            // with the ε-shifted corner/edge predicate applied to each
            // entry. Matching row ids are unioned with sort + dedup (not
            // a hash set), so the candidate order — and everything
            // downstream — is deterministic.
            let p = Phase::start(db, "query.probe");
            let mut probed = 0u64;
            let mut all_rids: Vec<(usize, Vec<u64>)> = Vec::with_capacity(3);
            let in_region = |dt: f64, dv: f64| {
                dt <= region.t
                    && match region.kind {
                        SearchKind::Drop => dv <= region.v,
                        SearchKind::Jump => dv >= region.v,
                    }
            };
            for (i, table) in tables.iter().enumerate() {
                let corners = i + 1;
                let mut rids: Vec<u64> = Vec::new();
                // Top of the zone hierarchy: when the table's whole-heap
                // summary cannot intersect the region, skip all of its
                // B+tree probes. The summary bounds every stored row, so
                // the skip is as lossless as page-level pruning.
                if table.prune_whole_segment(|mins, maxs| {
                    zone_may_intersect(corners, mins, maxs, region)
                }) {
                    all_rids.push((corners, rids));
                    continue;
                }
                if corners == 1 {
                    // Degenerate single-corner boundary: a point query on
                    // the lone corner.
                    let pt_lo = [f64::NEG_INFINITY, f64::NEG_INFINITY];
                    let pt_hi = [region.t, f64::INFINITY];
                    let ranges: [(&[f64], &[f64]); 1] = [(&pt_lo, &pt_hi)];
                    table.index_scan_batch("pt1", &ranges, |_, rid, cols| {
                        probed += 1;
                        if in_region(cols[0], cols[1]) {
                            rids.push(rid);
                        }
                        true
                    })?;
                } else {
                    // Multi-corner boundaries need no separate point
                    // probes: each ln{j} entry stores both endpoints of
                    // edge (j, j+1), so one scan per edge tree evaluates
                    // corner j+1's membership (corner 1 rides along on
                    // ln1) and the edge-crossing test together. Coverage
                    // is complete because corners ascend in Δt
                    // (`featurespace::Boundary`): a corner inside the
                    // region or an edge entering it forces the leading
                    // key dt_j ≤ t of some edge entry, which the range
                    // below scans.
                    let ln_lo = [f64::NEG_INFINITY; 4];
                    let ln_hi = [region.t, f64::INFINITY, f64::INFINITY, f64::INFINITY];
                    for j in 1..corners {
                        let first = j == 1;
                        let ranges: [(&[f64], &[f64]); 1] = [(&ln_lo, &ln_hi)];
                        table.index_scan_batch(&format!("ln{j}"), &ranges, |_, rid, cols| {
                            probed += 1;
                            if (first && in_region(cols[0], cols[1]))
                                || in_region(cols[2], cols[3])
                                || edge_crosses_region(
                                    FeaturePoint::new(cols[0], cols[1]),
                                    FeaturePoint::new(cols[2], cols[3]),
                                    region,
                                )
                            {
                                rids.push(rid);
                            }
                            true
                        })?;
                    }
                }
                rids.sort_unstable();
                rids.dedup();
                all_rids.push((corners, rids));
            }
            *rows_considered += probed;
            let n_rids: u64 = all_rids.iter().map(|(_, r)| r.len() as u64).sum();
            phases.push(p.finish(probed, n_rids));

            // Phase: fetch the matched heap rows. The ids are sorted
            // (page-major), so the batched fetch reads each heap page
            // once instead of once per row.
            let p = Phase::start(db, "query.fetch");
            for (corners, rids) in &all_rids {
                let table = &tables[*corners - 1];
                table.fetch_many(rids, |_, row| {
                    out.push(pair_from_row(row, *corners));
                    true
                })?;
            }
            phases.push(p.finish(n_rids, out.len() as u64));
        }
    }

    // Phase: refinement — sort by time and drop duplicate pairs.
    let p = Phase::start(db, "query.refine");
    let before = out.len() as u64;
    crate::result::sort_dedup(&mut out);
    phases.push(p.finish(before, out.len() as u64));

    Ok((out, phases))
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{SegDiffConfig, SegDiffIndex};
    use proptest::prelude::*;
    use sensorgen::{TimeSeries, HOUR};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "segdiff-qprop-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Zone-map pruning is lossless and all plans agree: for a random
        /// series and a random (V, T) region, the pruned sequential scan,
        /// the unpruned sequential scan, and the index plan return the
        /// identical result vector (same pairs, same order).
        #[test]
        fn pruned_scan_equals_unpruned_scan_equals_index(
            steps in prop::collection::vec(-1.2f64..1.2, 60..250),
            t_frac in 0.05f64..1.0,
            v_mag in 0.05f64..4.0,
            is_drop in any::<bool>(),
        ) {
            let mut series = TimeSeries::new();
            let mut val = 10.0;
            for (i, s) in steps.iter().enumerate() {
                val += s;
                series.push(i as f64 * 300.0, val);
            }
            let dir = tmpdir();
            let mut idx = SegDiffIndex::create(
                &dir,
                SegDiffConfig::default().with_durable(false),
            ).unwrap();
            idx.ingest_series(&series).unwrap();
            idx.finish().unwrap();
            idx.build_indexes().unwrap();
            let region = if is_drop {
                QueryRegion::drop(t_frac * 8.0 * HOUR, -v_mag)
            } else {
                QueryRegion::jump(t_frac * 8.0 * HOUR, v_mag)
            };
            let (pruned, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
            idx.drop_zone_maps();
            let (unpruned, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            prop_assert_eq!(&pruned, &unpruned, "pruning lost or invented results");
            prop_assert_eq!(&pruned, &indexed, "index plan disagrees with scan");
            idx.ensure_zone_maps().unwrap();
            let (rebuilt, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            prop_assert_eq!(&pruned, &rebuilt, "rebuilt zone maps change results");
            // Rewrite the heaps into compressed columnar pages: both
            // plans must keep answering bit-identically to the raw
            // format they replaced.
            idx.compact_storage().unwrap();
            let (col_scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            let (col_index, _) = idx.query(&region, QueryPlan::Index).unwrap();
            prop_assert_eq!(&pruned, &col_scan, "columnar scan diverged");
            prop_assert_eq!(&pruned, &col_index, "columnar index diverged");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SegDiffConfig, SegDiffIndex};
    use sensorgen::{TimeSeries, HOUR};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-qry-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn zigzag_series() -> TimeSeries {
        let mut s = TimeSeries::new();
        for i in 0..600 {
            let t = i as f64 * 300.0;
            let v = (i % 16) as f64 * 0.5 - ((i / 37) % 5) as f64;
            s.push(t, v);
        }
        s
    }

    /// Repeated executions of both plans return byte-identical result
    /// vectors — ordering included. The index plan unions candidate row
    /// ids with sort + dedup (no hash-set iteration order anywhere), so
    /// this holds by construction; the test pins it.
    #[test]
    fn results_are_deterministic_across_runs_and_plans() {
        let dir = tmpdir("determinism");
        let mut idx =
            SegDiffIndex::create(&dir, SegDiffConfig::default().with_durable(false)).unwrap();
        idx.ingest_series(&zigzag_series()).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        let region = QueryRegion::drop(2.0 * HOUR, -1.5);
        let (first, _) = idx.query(&region, QueryPlan::Index).unwrap();
        assert!(!first.is_empty(), "query must match something");
        for _ in 0..5 {
            let (scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
            assert_eq!(first, scan, "seq scan order drifted");
            assert_eq!(first, indexed, "index order drifted");
        }
        // Results come out time-ordered (sort_dedup's contract).
        for w in first.windows(2) {
            assert!(w[0].t_d <= w[1].t_d, "results not time-ordered: {w:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A selective region on a long series must actually skip pages —
    /// the `zonemap.pages_pruned` counter proves pruning engaged.
    #[test]
    fn selective_scan_prunes_pages() {
        let dir = tmpdir("prunes");
        let mut idx =
            SegDiffIndex::create(&dir, SegDiffConfig::default().with_durable(false)).unwrap();
        idx.ingest_series(&zigzag_series()).unwrap();
        idx.finish().unwrap();
        let before = obs::global().counter("zonemap.pages_pruned").get();
        // No drop of 50 degrees exists; every corner dv-min is above it,
        // so whole pages fail the zone test.
        let region = QueryRegion::drop(1.0 * HOUR, -50.0);
        let (results, stats) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let after = obs::global().counter("zonemap.pages_pruned").get();
        assert!(results.is_empty());
        assert!(after > before, "selective scan must prune pages");
        // Pruned rows are not counted as considered: fewer than the
        // table total.
        let total: u64 = idx.stats().n_rows;
        assert!(
            stats.rows_considered < total,
            "considered {} of {total} rows — nothing pruned",
            stats.rows_considered
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plans_are_comparable() {
        assert_ne!(QueryPlan::SeqScan, QueryPlan::Index);
    }

    #[test]
    fn stats_default_zeroed() {
        let s = QueryStats::default();
        assert_eq!(s.rows_considered, 0);
        assert_eq!(s.results, 0);
        assert_eq!(s.wall_seconds, 0.0);
        assert!(s.phases.is_empty());
    }

    #[test]
    fn plan_names_are_stable() {
        assert_eq!(QueryPlan::SeqScan.name(), "seq_scan");
        assert_eq!(QueryPlan::Index.name(), "index");
    }
}
