//! Named counters and log-bucketed latency histograms.
//!
//! The registry is the single rendezvous point for every layer's
//! telemetry: the buffer pool publishes `pool.*` counters, the B+tree
//! publishes `btree.*`, query execution records `span.*` latency
//! histograms. Handles ([`Counter`], [`Histogram`]) are `Arc`-backed and
//! lock-free on the hot path; the registry lock is taken only on first
//! registration and when snapshotting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level: in-flight requests, queue depth,
/// resident pages. Unlike [`Counter`] it can move both ways, so the
/// sampler stores its raw value instead of a rate.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the absolute level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values `v` with
/// `bit_width(v) == i`, i.e. power-of-two boundaries, so 64 buckets
/// cover the full `u64` range. Bucket 0 holds only the value 0.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Recording is lock-free (`fetch_add` / `fetch_max`). Quantiles are
/// estimated from the bucket counts by linear interpolation inside the
/// bucket containing the target rank, which bounds the relative error
/// of a reported percentile by the bucket width (a factor of 2).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    // `min` uses `u64::MAX` as the "nothing recorded" sentinel so that
    // `fetch_min` works without a compare-and-swap loop.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`,
/// so bucket `i > 0` spans `[2^(i-1), 2^i)`.
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Lower bound of bucket `i` (inclusive).
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound of bucket `i` (inclusive, saturating at `u64::MAX`).
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Raw bucket counts, one load per bucket. The sampler diffs two of
    /// these arrays to compute interval-windowed quantiles from the
    /// cumulative counts (see [`quantile_from_counts`]).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimates quantile `q` in `[0, 1]` by linear interpolation inside
    /// the bucket holding the target rank. Returns 0 for an empty
    /// histogram. The estimate is clamped to the observed `[min, max]`
    /// range, so a single sample reports itself exactly at every
    /// quantile instead of smearing across its bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        quantile_from_counts(&self.bucket_counts(), q)
            .max(self.min())
            .min(self.max())
    }

    /// A point-in-time summary (count, sum, min, p50/p90/p99/p999, max).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// Quantile estimate over a raw bucket-count array (see
/// [`Histogram::bucket_counts`]): linear interpolation inside the bucket
/// holding the target rank, clamped only to bucket bounds. Callers with
/// observed min/max (the live histogram) clamp further; callers with
/// only a count delta (the sampler's interval windows) cannot.
pub fn quantile_from_counts(counts: &[u64; BUCKETS], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    // 1-based rank of the target sample.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    let mut last_nonempty = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        last_nonempty = i;
        if seen + c >= rank {
            let lo = bucket_lo(i) as f64;
            let hi = bucket_hi(i) as f64;
            let frac = (rank - seen) as f64 / c as f64;
            let est = lo + (hi - lo) * frac;
            return est as u64;
        }
        seen += c;
    }
    bucket_hi(last_nonempty)
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Observed minimum.
    pub min: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Estimated 99.9th percentile.
    pub p999: u64,
    /// Observed maximum.
    pub max: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A thread-safe registry of named [`Counter`]s and [`Histogram`]s.
///
/// Use [`crate::global`] for the process-wide instance; independent
/// registries can be created for tests.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = inner.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        inner.counters.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(g) = inner.gauges.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        inner.gauges.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = inner.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Every registered counter with its live handle. The sampler uses
    /// the handles so each tick reads current values without re-taking
    /// the registry lock per metric.
    pub fn counter_handles(&self) -> Vec<(String, Arc<Counter>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Every registered gauge with its live handle.
    pub fn gauge_handles(&self) -> Vec<(String, Arc<Gauge>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Every registered histogram with its live handle.
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Captures a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// An immutable point-in-time snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, keyed by name (sorted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels, keyed by name (sorted).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries, keyed by name (sorted).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter-wise difference `self - earlier`, saturating at zero so a
    /// registry reset between snapshots cannot produce absurd deltas.
    /// Gauges keep the *later* level for any name whose level changed.
    /// Histograms keep the *later* summary for any name present in
    /// `self` whose count advanced; unchanged histograms are dropped.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter(|(k, &v)| earlier.gauges.get(*k).copied().unwrap_or(0) != v)
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter(|(k, s)| {
                let before = earlier.histograms.get(*k).map(|b| b.count).unwrap_or(0);
                s.count > before
            })
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i spans [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            // Each bucket's bounds map back to that bucket.
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi of bucket {i}");
            // Buckets tile the line with no gaps.
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1));
        }
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::new();
        h.record(100);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 100);
        assert_eq!(s.max, 100);
        // All quantiles of a single sample must not exceed it.
        assert!(s.p50 <= 100 && s.p50 >= 64, "p50 = {}", s.p50);
        assert_eq!(s.p99, s.p50);
    }

    #[test]
    fn histogram_percentile_estimation() {
        // 100 samples at 1000, 10 at 1_000_000: p50 must sit in the low
        // bucket, p99 in the high one.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(
            (bucket_lo(bucket_index(1000))..=bucket_hi(bucket_index(1000))).contains(&p50),
            "p50 = {p50}"
        );
        assert!(p99 > 500_000, "p99 = {p99}");
        assert!(p99 <= h.max());
    }

    #[test]
    fn histogram_quantile_monotone_and_bounded() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 64, 900, 4096, 70_000, 1 << 40] {
            h.record(v);
        }
        let qs: Vec<u64> = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert_eq!(*qs.last().unwrap(), h.max());
    }

    #[test]
    fn registry_reuses_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
        assert_eq!(r.snapshot().counters["x"], 2);
    }

    #[test]
    fn snapshot_delta_saturates() {
        let r = MetricsRegistry::new();
        r.counter("a").add(10);
        let before = r.snapshot();
        r.counter("a").add(5);
        r.counter("b").add(3);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters["a"], 5);
        assert_eq!(d.counters["b"], 3);
        // A counter that went "backwards" (reset) saturates to 0 and is
        // dropped, rather than wrapping to ~u64::MAX.
        let d2 = before.delta(&after);
        assert!(!d2.counters.contains_key("a"));
    }

    #[test]
    fn snapshot_delta_histograms_keep_latest_when_advanced() {
        let r = MetricsRegistry::new();
        r.histogram("h").record(10);
        let before = r.snapshot();
        let unchanged = r.snapshot().delta(&before);
        assert!(unchanged.histograms.is_empty());
        r.histogram("h").record(20);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.histograms["h"].count, 2);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0);
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
        g.sub(20);
        assert_eq!(g.get(), -12, "gauges may go negative");
    }

    #[test]
    fn registry_gauges_snapshot_and_delta() {
        let r = MetricsRegistry::new();
        r.gauge("inflight").set(3);
        let before = r.snapshot();
        assert_eq!(before.gauges["inflight"], 3);
        r.gauge("inflight").add(2);
        r.gauge("depth").set(1);
        let d = r.snapshot().delta(&before);
        assert_eq!(
            d.gauges["inflight"], 5,
            "changed gauges keep the later level"
        );
        assert_eq!(d.gauges["depth"], 1);
        let unchanged = r.snapshot().delta(&r.snapshot());
        assert!(unchanged.gauges.is_empty());
    }

    #[test]
    fn histogram_min_tracked() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0, "empty histogram reports 0");
        h.record(500);
        h.record(70);
        h.record(9_000);
        assert_eq!(h.min(), 70);
        assert_eq!(h.max(), 9_000);
    }

    #[test]
    fn quantiles_clamped_to_observed_range() {
        // All samples are 100, which sits inside bucket [64, 127]. Without
        // the min clamp, low quantiles would interpolate down toward 64.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(100);
        }
        for q in [0.0, 0.01, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 100, "q={q}");
        }
    }

    #[test]
    fn quantiles_vs_exact_on_synthetic_data() {
        // Deterministic synthetic workload: a skewed mixture spanning many
        // buckets. The log2-bucket estimate must stay within one bucket
        // width (a factor of 2) of the exact order statistic, and inside
        // the observed [min, max] envelope.
        let h = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 88172645463325252u64;
        for _ in 0..10_000 {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 1_000 + x % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let exact = samples[rank];
            let est = h.quantile(q);
            assert!(
                est >= exact / 2 && est <= exact.saturating_mul(2),
                "q={q}: est {est} vs exact {exact}"
            );
            assert!(est >= h.min() && est <= h.max(), "q={q}: est {est}");
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= s.max && s.min <= s.p50);
    }

    #[test]
    fn quantile_from_counts_interval_window() {
        // Simulates the sampler: cumulative bucket counts at two ticks,
        // where the second tick adds only slow samples. The windowed
        // quantile must reflect the interval, not the lifetime mixture.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(1_000);
        }
        let before = h.bucket_counts();
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let after = h.bucket_counts();
        let mut window = [0u64; BUCKETS];
        for ((w, a), b) in window.iter_mut().zip(after.iter()).zip(before.iter()) {
            *w = a.saturating_sub(*b);
        }
        let p50 = quantile_from_counts(&window, 0.5);
        assert!(
            (524_288..=1_048_575).contains(&p50),
            "windowed p50 must land in the slow bucket, got {p50}"
        );
        // The lifetime p50 still sits in the fast bucket.
        assert!(h.quantile(0.5) < 2_048);
    }

    /// Satellite: threaded stress of counter increments + sampler-style
    /// reads. Asserts rates stay monotonic (counters never observed going
    /// backwards) and histogram snapshots are never torn into
    /// impossibilities (quantiles outside [min, max], count behind the
    /// bucket total already seen).
    #[test]
    fn concurrent_sampler_reads_see_monotonic_consistent_state() {
        use std::sync::atomic::AtomicBool;
        let r = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("stress.ops");
                    let h = r.histogram("stress.lat");
                    for i in 0..20_000u64 {
                        c.inc();
                        h.record(100 + (t * 20_000 + i) % 10_000);
                    }
                });
            }
            let r2 = Arc::clone(&r);
            let stop2 = Arc::clone(&stop);
            s.spawn(move || {
                let mut last_count = 0u64;
                let mut last_bucket_total = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    let c = r2.counter("stress.ops").get();
                    assert!(
                        c >= last_count,
                        "counter went backwards: {c} < {last_count}"
                    );
                    last_count = c;
                    let h = r2.histogram("stress.lat");
                    let counts = h.bucket_counts();
                    let total: u64 = counts.iter().sum();
                    assert!(
                        total >= last_bucket_total,
                        "bucket totals went backwards: {total} < {last_bucket_total}"
                    );
                    last_bucket_total = total;
                    let s = h.summary();
                    if s.count > 0 {
                        assert!(s.min >= 100 && s.max < 100 + 10_000);
                        assert!(s.p50 >= s.min && s.p999 <= s.max, "torn summary: {s:?}");
                        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
                    }
                    std::thread::yield_now();
                }
            });
            // Let the reader race the producers for a while, then stop it;
            // the producers are joined by the scope itself.
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(r.counter("stress.ops").get(), 80_000);
        assert_eq!(r.histogram("stress.lat").count(), 80_000);
    }

    #[test]
    fn concurrent_recording() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("shared");
                    let h = r.histogram("lat");
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(r.counter("shared").get(), 4000);
        assert_eq!(r.histogram("lat").count(), 4000);
    }
}
