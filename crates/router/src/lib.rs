//! Cluster front-end for sharded segdiff serving.
//!
//! `segdiff router` runs this: a process that owns no data, only a
//! [`Ring`] (consistent hash of sensor ids onto N shards), a
//! [`HealthBoard`] (per-shard primary→replica→down failover state fed
//! by background `/healthz` probes), and a scatter–gather executor for
//! `POST /query` (see [`scatter`]). Shards are ordinary `segdiff serve`
//! processes — each owns its heaps, WAL, buffer pool, and subscription
//! registry — so the router composes the existing HTTP surface instead
//! of introducing a new protocol.
//!
//! Routes:
//!
//! * `POST /query` — scatter to the owning shards, merge
//!   deterministically ([`segdiff::merge_sharded`]): the `results`
//!   array is byte-identical to a single process serving all sensors.
//! * `GET /healthz` — role `"router"` plus the live per-shard states.
//! * `GET /metrics` — the process-global registry (text or JSON lines).
//! * `POST /shutdown` — cooperative drain, same as the shard servers.

pub mod health;
pub mod ring;
pub mod scatter;

pub use health::{HealthBoard, ShardSpec, ShardState};
pub use ring::Ring;

use obs::export::Exporter;
use obs::json::Json;
use segdiff_server::http::{read_request, HttpError, Request, Response};
use segdiff_server::queue::{BoundedQueue, PushError};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// One entry per shard, in ring order (shard i of N).
    pub shards: Vec<ShardSpec>,
    /// Worker threads serving client connections.
    pub threads: usize,
    /// Accepted connections waiting for a worker before `503`s start.
    pub queue_depth: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// How often the health thread re-probes every shard. Failover to a
    /// warm replica happens within one interval (sooner when a query
    /// hits the dead primary first).
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: Vec::new(),
            threads: 8,
            queue_depth: 64,
            read_timeout: Duration::from_millis(1000),
            health_interval: Duration::from_millis(500),
        }
    }
}

/// `router.*` counters and latency, registered globally so `/metrics`
/// and the self-observation pipeline see them like any other subsystem.
pub struct RouterMetrics {
    pub queries: Arc<obs::Counter>,
    pub scatter_requests: Arc<obs::Counter>,
    pub shard_errors: Arc<obs::Counter>,
    pub degraded: Arc<obs::Counter>,
    pub bad_requests: Arc<obs::Counter>,
    pub query_nanos: Arc<obs::Histogram>,
}

impl RouterMetrics {
    fn new() -> Self {
        let r = obs::global();
        RouterMetrics {
            queries: r.counter("router.queries"),
            scatter_requests: r.counter("router.scatter_requests"),
            shard_errors: r.counter("router.shard_errors"),
            degraded: r.counter("router.degraded"),
            bad_requests: r.counter("router.bad_requests"),
            query_nanos: r.histogram("router.query_nanos"),
        }
    }
}

/// A bound-but-not-yet-running router.
pub struct Router {
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    config: RouterConfig,
    board: Arc<HealthBoard>,
    ring: Ring,
    metrics: Arc<RouterMetrics>,
}

impl Router {
    /// Binds `addr` and prepares the ring and health board over
    /// `config.shards`. No thread is spawned until [`Router::run`].
    pub fn bind(addr: &str, config: RouterConfig) -> io::Result<Router> {
        if config.shards.is_empty() {
            return Err(io::Error::other("router needs at least one shard"));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Router {
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            board: Arc::new(HealthBoard::new(config.shards.clone())),
            ring: Ring::new(config.shards.len()),
            metrics: Arc::new(RouterMetrics::new()),
            config,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that makes the router drain and stop when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The health board (tests inspect failover state through it).
    pub fn board(&self) -> &Arc<HealthBoard> {
        &self.board
    }

    /// Runs the accept loop on the calling thread until shutdown. Probes
    /// every shard once before accepting, so the first query already
    /// knows the cluster topology.
    pub fn run(self) -> io::Result<()> {
        let registry = obs::global();
        let accepted = registry.counter("router.accepted");
        let rejected = registry.counter("router.rejected");
        self.board.probe_all();

        let health_thread = {
            let board = Arc::clone(&self.board);
            let shutdown = Arc::clone(&self.shutdown);
            let interval = self.config.health_interval;
            std::thread::Builder::new()
                .name("router-health".to_string())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        let t0 = std::time::Instant::now();
                        board.probe_all();
                        while t0.elapsed() < interval && !shutdown.load(Ordering::Acquire) {
                            let left = interval.saturating_sub(t0.elapsed());
                            std::thread::sleep(left.min(Duration::from_millis(20)));
                        }
                    }
                })?
        };

        let queue: Arc<BoundedQueue<TcpStream>> =
            Arc::new(BoundedQueue::new(self.config.queue_depth));
        let mut workers = Vec::new();
        for i in 0..self.config.threads.max(1) {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&self.shutdown);
            let board = Arc::clone(&self.board);
            let metrics = Arc::clone(&self.metrics);
            let ring = self.ring.clone();
            let timeout = self.config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("router-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            serve_connection(&board, &ring, &metrics, &shutdown, stream, timeout);
                        }
                    })?,
            );
        }

        while !self.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted.inc();
                    match queue.try_push(stream) {
                        Ok(()) => {}
                        Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                            rejected.inc();
                            let mut stream = stream;
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                            let _ = Response::error(503, "router overloaded, try again")
                                .with_close()
                                .write_to(&mut stream);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    obs::warn!("router accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }

        queue.close();
        for w in workers {
            let _ = w.join();
        }
        let _ = health_thread.join();
        obs::info!("router drained");
        Ok(())
    }
}

/// Serves a keep-alive request stream until close, error, or shutdown.
fn serve_connection(
    board: &HealthBoard,
    ring: &Ring,
    metrics: &RouterMetrics,
    shutdown: &AtomicBool,
    stream: TcpStream,
    timeout: Duration,
) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(req) => {
                let mut resp = route(board, ring, metrics, shutdown, &req);
                if !req.keep_alive() || shutdown.load(Ordering::Acquire) {
                    resp.close = true;
                }
                let close = resp.close;
                if resp.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::TooLarge) => {
                let _ = Response::error(413, "request too large")
                    .with_close()
                    .write_to(&mut writer);
                return;
            }
            Err(HttpError::Malformed(m)) => {
                let _ = Response::error(400, m).with_close().write_to(&mut writer);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

/// Dispatches one request.
fn route(
    board: &HealthBoard,
    ring: &Ring,
    metrics: &RouterMetrics,
    shutdown: &AtomicBool,
    req: &Request,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => match req.body_str() {
            Ok(body) => scatter::scatter_query(board, ring, body, metrics),
            Err(e) => {
                metrics.bad_requests.inc();
                Response::error(400, e.to_string())
            }
        },
        ("GET", "/healthz") => healthz(board),
        ("GET", "/metrics") => {
            let snapshot = obs::global().snapshot();
            match req.query_param("format") {
                Some("json") => Response::text(
                    200,
                    obs::export::JsonLinesExporter::default().export(&snapshot),
                ),
                None | Some("text") => {
                    Response::text(200, obs::export::TextExporter.export(&snapshot))
                }
                Some(other) => Response::error(
                    400,
                    format!("format must be \"text\" or \"json\", got {other:?}"),
                ),
            }
        }
        ("POST", "/shutdown") => {
            shutdown.store(true, Ordering::Release);
            let mut resp = Response::json(
                200,
                &Json::obj([("status", Json::Str("draining".to_string()))]),
            );
            resp.close = true;
            resp
        }
        (_, "/query" | "/healthz" | "/metrics" | "/shutdown") => {
            Response::error(405, format!("method {} not allowed", req.method))
        }
        _ => Response::error(404, format!("no route for {}", req.path)),
    }
}

/// `GET /healthz`: the router's own status plus every shard's failover
/// state, endpoints, and last-known sensor count.
fn healthz(board: &HealthBoard) -> Response {
    let states = board.snapshot();
    let shards: Vec<Json> = board
        .specs()
        .iter()
        .zip(&states)
        .enumerate()
        .map(|(i, (spec, health))| {
            let mut fields = vec![
                ("shard".to_string(), Json::Uint(i as u64)),
                (
                    "state".to_string(),
                    Json::Str(health.state.name().to_string()),
                ),
                ("primary".to_string(), Json::Str(spec.primary.clone())),
            ];
            if let Some(replica) = &spec.replica {
                fields.push(("replica".to_string(), Json::Str(replica.clone())));
            }
            fields.extend([
                (
                    "sensors".to_string(),
                    Json::Uint(health.sensors.len() as u64),
                ),
                ("epoch".to_string(), Json::Uint(health.epoch)),
                (
                    "last_durable_lsn".to_string(),
                    Json::Uint(health.last_durable_lsn),
                ),
            ]);
            if health.state == ShardState::Replica {
                fields.push(("applied_lsn".to_string(), Json::Uint(health.applied_lsn)));
            }
            Json::Object(fields)
        })
        .collect();
    let all_up = states.iter().all(|h| h.state != ShardState::Down);
    Response::json(
        200,
        &Json::obj([
            (
                "status",
                Json::Str(if all_up { "ok" } else { "degraded" }.to_string()),
            ),
            ("role", Json::Str("router".to_string())),
            ("shards", Json::Array(shards)),
            ("sensors", Json::Uint(board.known_sensors().len() as u64)),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_rejects_empty_shard_list() {
        assert!(Router::bind("127.0.0.1:0", RouterConfig::default()).is_err());
    }

    #[test]
    fn bind_builds_ring_over_shards() {
        let config = RouterConfig {
            shards: vec![
                ShardSpec {
                    primary: "192.0.2.1:9".to_string(),
                    replica: None,
                },
                ShardSpec {
                    primary: "192.0.2.2:9".to_string(),
                    replica: None,
                },
            ],
            ..RouterConfig::default()
        };
        let router = Router::bind("127.0.0.1:0", config).expect("bind");
        assert_eq!(router.ring.num_shards(), 2);
        assert_eq!(router.board().num_shards(), 2);
        assert_ne!(router.local_addr().port(), 0);
    }
}
