//! Configuration of a [`crate::SegDiffIndex`].

use pagestore::{sync_from_env, DurabilityOptions};
use sensorgen::HOUR;

/// Parameters of the SegDiff framework.
///
/// The defaults match the paper's experimental defaults (§6): `ε = 0.2`
/// degree Celsius, `w = 8` hours.
#[derive(Debug, Clone)]
pub struct SegDiffConfig {
    /// User error tolerance `ε >= 0` (Definition 2). Segmentation keeps the
    /// approximation within `ε/2` of the data; query results are then exact
    /// up to `2ε` (Theorem 1).
    pub epsilon: f64,
    /// Window width `w` in seconds: the longest time span any future query
    /// may use (`T <= w`).
    pub window: f64,
    /// Buffer-pool capacity in 4 KiB pages.
    pub pool_pages: usize,
    /// Entry bound of the epoch-tagged query result cache.
    pub cache_entries: usize,
    /// Write-ahead logging: when `true` (the default) every stored segment
    /// ends in a WAL commit record, so a crash mid-ingest recovers to a
    /// prefix-consistent index (last committed segment boundary).
    pub durable: bool,
    /// Fsync discipline. Defaults to [`sync_from_env`] (`SEGDIFF_SYNC=0`
    /// turns fsyncs off for benchmarks that only need crash *consistency*
    /// against process kills, not power failure).
    pub sync: bool,
    /// Group commit: fsync the WAL once every this many commit records.
    pub group_commit: u64,
    /// Checkpoint the WAL (flush data pages, truncate the log) whenever it
    /// grows past this many bytes. Bounds replay time after a crash.
    pub checkpoint_wal_bytes: u64,
}

impl Default for SegDiffConfig {
    fn default() -> Self {
        let d = DurabilityOptions::default();
        Self {
            epsilon: 0.2,
            window: 8.0 * HOUR,
            pool_pages: 4096, // 16 MiB
            cache_entries: 256,
            durable: true,
            sync: sync_from_env(),
            group_commit: d.group_commit,
            checkpoint_wal_bytes: d.checkpoint_wal_bytes,
        }
    }
}

impl SegDiffConfig {
    /// Sets the error tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        self.epsilon = epsilon;
        self
    }

    /// Sets the window width in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is positive and finite.
    pub fn with_window(mut self, window: f64) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive"
        );
        self.window = window;
        self
    }

    /// Sets the buffer-pool size in pages.
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sets the result-cache entry bound (min 1).
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Enables or disables write-ahead logging.
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    /// Enables or disables fsyncs (overrides the `SEGDIFF_SYNC` default).
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    /// Sets the group-commit batch size (min 1).
    pub fn with_group_commit(mut self, every: u64) -> Self {
        self.group_commit = every.max(1);
        self
    }

    /// Sets the WAL size that triggers an automatic checkpoint.
    pub fn with_checkpoint_wal_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_wal_bytes = bytes;
        self
    }

    /// The [`DurabilityOptions`] this configuration asks the storage engine
    /// for.
    pub fn durability(&self) -> DurabilityOptions {
        DurabilityOptions {
            wal: self.durable,
            sync: self.sync,
            group_commit: self.group_commit,
            checkpoint_wal_bytes: self.checkpoint_wal_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SegDiffConfig::default();
        assert_eq!(c.epsilon, 0.2);
        assert_eq!(c.window, 8.0 * 3600.0);
    }

    #[test]
    fn builders() {
        let c = SegDiffConfig::default()
            .with_epsilon(0.4)
            .with_window(3600.0)
            .with_pool_pages(64);
        assert_eq!(c.epsilon, 0.4);
        assert_eq!(c.window, 3600.0);
        assert_eq!(c.pool_pages, 64);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_rejected() {
        SegDiffConfig::default().with_epsilon(-0.1);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        SegDiffConfig::default().with_window(0.0);
    }

    #[test]
    fn durability_knobs_map_to_options() {
        let c = SegDiffConfig::default()
            .with_durable(true)
            .with_sync(false)
            .with_group_commit(0)
            .with_checkpoint_wal_bytes(1 << 20);
        let d = c.durability();
        assert!(d.wal);
        assert!(!d.sync);
        assert_eq!(d.group_commit, 1, "group commit clamps to 1");
        assert_eq!(d.checkpoint_wal_bytes, 1 << 20);
        assert!(
            !SegDiffConfig::default()
                .with_durable(false)
                .durability()
                .wal
        );
    }
}
