//! The workspace must satisfy its own lint, and the registry table the
//! lint re-derives lexically must match the one `obs` generates — if
//! either drifts, CI should say so here before the lint job does.

use lint::diag::Rule;
use lint::{load_registry, run, Options};
use std::path::PathBuf;

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let diags = run(&Options::new(root())).expect("lint must run");
    assert!(
        diags.is_empty(),
        "segdiff-lint found violations:\n{}",
        diags
            .iter()
            .map(|d| format!(
                "{}:{}:{} [{}] {}",
                d.file,
                d.line,
                d.col,
                d.rule.id(),
                d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_is_exercised_by_default() {
    let opts = Options::new(root());
    assert_eq!(opts.rules.len(), Rule::ALL.len());
}

#[test]
fn lint_metrics_table_matches_obs_registry() {
    let registry = load_registry(&root()).expect("names.rs parses");
    assert_eq!(
        lint::rules::names::markdown_table(&registry),
        segdiff_repro::obs::names::markdown_table(),
        "crates/lint re-derives the metrics table lexically from \
         crates/obs/src/names.rs; the two generators must agree"
    );
}
