//! Metric history: fixed-size ring buffers fed by a background sampler.
//!
//! The registry ([`crate::MetricsRegistry`]) only answers "what is the
//! value *now*" — a collapse in hit rate or a latency spike between two
//! manual scrapes is invisible. This module adds the time axis:
//!
//! * [`SeriesStore`] — named rings of `(ts, value)` points with a fixed
//!   capacity per series, so memory is bounded no matter how long the
//!   process runs.
//! * [`SamplerState`] / [`start_sampler`] — a scrape pass that walks
//!   every registered metric at a fixed cadence and appends *derived*
//!   series: counters become rates (`<name>.rate`, per second), gauges
//!   record their raw level (`<name>`), histograms yield
//!   interval-windowed quantiles (`<name>.p50`, `<name>.p99`) plus a
//!   sample rate (`<name>.rate`).
//!
//! Windowed quantiles matter: registry histograms are cumulative over
//! the process lifetime, so a p50 computed from lifetime buckets barely
//! moves when latency jumps. The sampler keeps the previous bucket-count
//! array per histogram and estimates quantiles from the *delta*
//! ([`crate::quantile_from_counts`]), which is exactly the distribution
//! of samples recorded since the previous tick.

use crate::metrics::{quantile_from_counts, MetricsRegistry, BUCKETS};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Milliseconds since the unix epoch (0 if the clock is before 1970).
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// One observation in a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Sample time, unix milliseconds.
    pub ts_ms: u64,
    /// Sample value (rate, level, or windowed quantile).
    pub value: f64,
}

/// Bounded per-name rings of time-series points.
///
/// Writers push through one mutex; the sampler is the only steady-state
/// writer (one push per series per tick), so contention is negligible.
#[derive(Debug, Default)]
pub struct SeriesStore {
    inner: Mutex<BTreeMap<String, VecDeque<SeriesPoint>>>,
    capacity: usize,
}

/// Default points retained per series: 720 points at the default 500 ms
/// cadence is six minutes of history — enough to hold several alert
/// windows while keeping the whole store under ~1 MB at 60 series.
pub const DEFAULT_SERIES_CAPACITY: usize = 720;

impl SeriesStore {
    /// Creates a store retaining up to `capacity` points per series.
    pub fn new(capacity: usize) -> Self {
        SeriesStore {
            inner: Mutex::new(BTreeMap::new()),
            capacity: capacity.max(2),
        }
    }

    /// Appends a point; evicts the oldest when the ring is full. Callers
    /// are expected to push monotonically increasing `ts_ms` per series
    /// (the sampler does); readers do not re-sort.
    pub fn push(&self, name: &str, ts_ms: u64, value: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let ring = inner.entry(name.to_string()).or_default();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(SeriesPoint { ts_ms, value });
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.keys().cloned().collect()
    }

    /// Points of `name` with `ts_ms > after_ts_ms`, oldest first.
    pub fn since(&self, name: &str, after_ts_ms: u64) -> Vec<SeriesPoint> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .get(name)
            .map(|ring| {
                ring.iter()
                    .filter(|p| p.ts_ms > after_ts_ms)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Points of `name` within the trailing `window` ending at `now_ms`.
    pub fn window(&self, name: &str, window: Duration, now_ms: u64) -> Vec<SeriesPoint> {
        let w = window.as_millis().min(u64::MAX as u128) as u64;
        self.since(name, now_ms.saturating_sub(w))
    }

    /// The most recent point of `name`, if any.
    pub fn last(&self, name: &str) -> Option<SeriesPoint> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.get(name).and_then(|r| r.back().copied())
    }
}

/// Per-histogram baseline kept between ticks.
struct HistBaseline {
    buckets: [u64; BUCKETS],
}

/// The scrape pass. Owns only baselines; the registry and store are
/// passed in per tick so one state can serve tests, the server observer
/// thread, and [`start_sampler`] alike.
#[derive(Default)]
pub struct SamplerState {
    prev_counters: BTreeMap<String, u64>,
    prev_hists: BTreeMap<String, HistBaseline>,
    last_ts_ms: Option<u64>,
}

impl SamplerState {
    /// A fresh sampler with no baselines: the first tick only records
    /// them (a rate needs two observations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scrapes `registry` once at time `now_ms`, appending derived
    /// series to `store`. Ticks with a non-advancing clock are skipped.
    pub fn tick(&mut self, registry: &MetricsRegistry, store: &SeriesStore, now_ms: u64) {
        let dt_secs = match self.last_ts_ms {
            Some(prev) if now_ms <= prev => return,
            Some(prev) => Some((now_ms - prev) as f64 / 1e3),
            None => None,
        };
        self.last_ts_ms = Some(now_ms);
        registry.counter("sampler.ticks").inc();

        for (name, c) in registry.counter_handles() {
            let v = c.get();
            if let (Some(dt), Some(&prev)) = (dt_secs, self.prev_counters.get(&name)) {
                let rate = v.saturating_sub(prev) as f64 / dt;
                store.push(&format!("{name}.rate"), now_ms, rate);
            }
            self.prev_counters.insert(name, v);
        }

        for (name, g) in registry.gauge_handles() {
            store.push(&name, now_ms, g.get() as f64);
        }

        for (name, h) in registry.histogram_handles() {
            let counts = h.bucket_counts();
            if let (Some(dt), Some(prev)) = (dt_secs, self.prev_hists.get(&name)) {
                let mut window = [0u64; BUCKETS];
                for ((w, a), b) in window
                    .iter_mut()
                    .zip(counts.iter())
                    .zip(prev.buckets.iter())
                {
                    *w = a.saturating_sub(*b);
                }
                let n: u64 = window.iter().sum();
                // A quiet interval reports 0 rather than a gap, so a
                // stalled workload *looks* like a drop to the alerting
                // pipeline — which is the point.
                let (p50, p99) = if n == 0 {
                    (0.0, 0.0)
                } else {
                    (
                        quantile_from_counts(&window, 0.50) as f64,
                        quantile_from_counts(&window, 0.99) as f64,
                    )
                };
                store.push(&format!("{name}.p50"), now_ms, p50);
                store.push(&format!("{name}.p99"), now_ms, p99);
                store.push(&format!("{name}.rate"), now_ms, n as f64 / dt);
            }
            self.prev_hists
                .insert(name, HistBaseline { buckets: counts });
        }
    }
}

/// Handle to a running background sampler; stops (and joins) the thread
/// on [`SamplerHandle::stop`] or drop.
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl SamplerHandle {
    /// Signals the sampler thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _join_result = j.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a background thread sampling [`crate::global`] into `store`
/// every `period`. The thread wakes in small slices so stop latency is
/// bounded by ~20 ms rather than by the period.
pub fn start_sampler(store: Arc<SeriesStore>, period: Duration) -> SamplerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let builder = std::thread::Builder::new().name("segdiff-sampler".to_string());
    let join = builder
        .spawn(move || {
            let mut state = SamplerState::new();
            while !stop2.load(Ordering::Acquire) {
                state.tick(crate::global(), &store, unix_ms());
                let mut slept = Duration::ZERO;
                while slept < period && !stop2.load(Ordering::Acquire) {
                    let slice = (period - slept).min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
        .ok();
    SamplerHandle { stop, join }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bounds_memory_and_orders_points() {
        let s = SeriesStore::new(4);
        for i in 0..10u64 {
            s.push("a", i * 100, i as f64);
        }
        let pts = s.since("a", 0);
        assert_eq!(pts.len(), 4, "ring evicts oldest");
        assert_eq!(pts.first().map(|p| p.ts_ms), Some(600));
        assert_eq!(pts.last().map(|p| p.ts_ms), Some(900));
        assert_eq!(s.last("a").map(|p| p.value), Some(9.0));
        assert!(s.since("missing", 0).is_empty());
    }

    #[test]
    fn window_filters_by_trailing_duration() {
        let s = SeriesStore::new(100);
        for i in 0..10u64 {
            s.push("a", 1000 + i * 1000, i as f64);
        }
        let pts = s.window("a", Duration::from_secs(3), 10_000);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| p.ts_ms > 7_000));
    }

    #[test]
    fn sampler_derives_rates_gauges_and_windowed_quantiles() {
        let r = MetricsRegistry::new();
        let store = SeriesStore::new(100);
        let mut sampler = SamplerState::new();

        r.counter("ops").add(100);
        r.gauge("depth").set(5);
        for _ in 0..100 {
            r.histogram("lat").record(1_000);
        }
        sampler.tick(&r, &store, 1_000);
        assert!(
            store.since("ops.rate", 0).is_empty(),
            "first tick only records baselines"
        );
        assert_eq!(store.last("depth").map(|p| p.value), Some(5.0));

        // Second tick: 50 more ops over 2 s, latency now 100x slower.
        r.counter("ops").add(50);
        r.gauge("depth").set(2);
        for _ in 0..10 {
            r.histogram("lat").record(100_000);
        }
        sampler.tick(&r, &store, 3_000);
        assert_eq!(store.last("ops.rate").map(|p| p.value), Some(25.0));
        assert_eq!(store.last("depth").map(|p| p.value), Some(2.0));
        let p50 = store.last("lat.p50").map(|p| p.value).unwrap();
        assert!(
            (65_536.0..=131_071.0).contains(&p50),
            "windowed p50 sees only the slow interval, got {p50}"
        );
        assert_eq!(store.last("lat.rate").map(|p| p.value), Some(5.0));

        // Quiet interval: quantiles report 0, not a gap.
        sampler.tick(&r, &store, 4_000);
        assert_eq!(store.last("lat.p50").map(|p| p.value), Some(0.0));
        assert_eq!(store.last("lat.rate").map(|p| p.value), Some(0.0));

        // A non-advancing clock skips the tick entirely.
        let before = store.since("depth", 0).len();
        sampler.tick(&r, &store, 4_000);
        assert_eq!(store.since("depth", 0).len(), before);
    }

    #[test]
    fn background_sampler_scrapes_global() {
        crate::global().counter("series.test.bg").inc();
        let store = Arc::new(SeriesStore::new(100));
        let handle = start_sampler(Arc::clone(&store), Duration::from_millis(10));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.last("series.test.bg.rate").is_none() {
            assert!(std::time::Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        assert!(store.names().iter().any(|n| n == "series.test.bg.rate"));
    }
}
