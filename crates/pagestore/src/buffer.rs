//! The shared buffer pool: striped clock eviction plus I/O accounting.
//!
//! The pool is divided into `N` independent *shards*, each protecting its
//! own frame table, hash map, clock hand and counters with its own lock.
//! A page `(FileId, PageId)` is pinned to one shard by hashing, so two
//! threads touching pages in different shards never contend. Physical
//! I/O goes through a per-file mutex *below* the shard lock, which keeps
//! the lock order (`files` registry → shard → file) acyclic.

use crate::error::Result;
use crate::page::PageBuf;
use crate::pagefile::{FileId, PageFile, PageId};
use crate::wal::Wal;
use crate::PAGE_SIZE;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cumulative buffer-pool counters.
///
/// `hits`/`misses` count logical page requests; `physical_reads`/
/// `physical_writes` count pages actually moved to or from the backing
/// files. The experiment harness uses *deltas* of these counters around a
/// query as its I/O cost model (the substitute for the paper's cold-cache
/// wall-clock numbers, which depended on MySQL and the OS page cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Logical requests served from the pool.
    pub hits: u64,
    /// Logical requests that had to read from the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Pages read from backing files.
    pub physical_reads: u64,
    /// Pages written to backing files.
    pub physical_writes: u64,
}

impl PoolStats {
    /// Component-wise difference `self - earlier` (for per-query deltas).
    ///
    /// Saturates at zero: if a counter went backwards between the two
    /// snapshots (a [`BufferPool::reset_stats`] in between), the delta is
    /// clamped to 0 instead of wrapping to ~`u64::MAX`.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
        }
    }

    /// Component-wise sum (for merging per-thread or per-phase deltas).
    pub fn merged(&self, other: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            physical_reads: self.physical_reads + other.physical_reads,
            physical_writes: self.physical_writes + other.physical_writes,
        }
    }
}

/// Global-registry handles mirroring [`PoolStats`]. Every increment of
/// the per-pool counters also lands here, so `segdiff metrics` and the
/// bench harness see pool activity without holding a pool reference.
/// One set exists for the pool as a whole (`pool.*`) and one per shard
/// (`pool.shard<i>.*`); the shard counters sum to the pool counters.
struct PoolMetrics {
    hits: std::sync::Arc<obs::Counter>,
    misses: std::sync::Arc<obs::Counter>,
    evictions: std::sync::Arc<obs::Counter>,
    physical_reads: std::sync::Arc<obs::Counter>,
    physical_writes: std::sync::Arc<obs::Counter>,
}

impl PoolMetrics {
    fn global() -> Self {
        Self::with_prefix("pool")
    }

    fn for_shard(i: usize) -> Self {
        Self::with_prefix(&format!("pool.shard{i}"))
    }

    fn with_prefix(prefix: &str) -> Self {
        let r = obs::global();
        PoolMetrics {
            hits: r.counter(&format!("{prefix}.hits")),
            misses: r.counter(&format!("{prefix}.misses")),
            evictions: r.counter(&format!("{prefix}.evictions")),
            physical_reads: r.counter(&format!("{prefix}.physical_reads")),
            physical_writes: r.counter(&format!("{prefix}.physical_writes")),
        }
    }
}

struct Frame {
    key: (FileId, PageId),
    buf: PageBuf,
    dirty: bool,
    /// Whether the current dirty contents have been appended to the WAL.
    /// Cleared on every mutation, set by the WAL-before-data append.
    logged: bool,
    referenced: bool,
}

/// A registered file plus its durability identity. Files registered with
/// a `wal_name` have their dirty pages logged (WAL-before-data) before
/// any writeback; files without one (B+tree indexes, plain-pool users)
/// are written back directly.
struct FileEntry {
    file: Mutex<PageFile>,
    wal_name: Option<String>,
}

/// One lock stripe: an independent frame table with its own clock hand.
struct Shard {
    capacity: usize,
    map: HashMap<(FileId, PageId), usize>,
    frames: Vec<Frame>,
    hand: usize,
    stats: PoolStats,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity,
            map: HashMap::new(),
            frames: Vec::new(),
            hand: 0,
            stats: PoolStats::default(),
        }
    }
}

/// Smallest sensible shard: below this many frames per shard the clock
/// degenerates, so `new`/`with_shards` reduce the shard count instead.
const MIN_FRAMES_PER_SHARD: usize = 8;

/// Default number of lock stripes (reduced for small pools).
pub const DEFAULT_SHARDS: usize = 8;

/// A shared buffer pool over a set of registered page files.
///
/// All page access goes through the pool so that cache behaviour — and the
/// cold/warm distinction the paper's §6.4 experiments rely on — is fully
/// under the caller's control via [`BufferPool::clear_cache`]. The pool is
/// safe for concurrent use from many threads; see the module docs for the
/// striping design.
pub struct BufferPool {
    files: RwLock<Vec<FileEntry>>,
    shards: Vec<Mutex<Shard>>,
    /// When attached, dirty pages of WAL-named files are appended to the
    /// log before every writeback (flush and eviction alike).
    wal: RwLock<Option<Arc<Wal>>>,
    /// Whether flushes end in `fsync` (true) or only drain userspace
    /// buffers (false, the test/bench escape hatch).
    sync: AtomicBool,
    metrics: PoolMetrics,
    shard_metrics: Vec<PoolMetrics>,
    /// Pages currently resident across all shards (the `pool.resident_pages`
    /// gauge). Grows when a fresh frame is populated, shrinks on
    /// [`BufferPool::clear_cache`] and pool drop; eviction reuses a frame,
    /// so residency is unchanged there.
    resident_pages: Arc<obs::Gauge>,
}

/// Shard index for a page: a cheap multiplicative hash over the key so
/// consecutive pages of one file spread across all shards.
fn shard_for(nshards: usize, fid: FileId, pid: PageId) -> usize {
    let h = (fid as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        ^ (pid as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    (h % nshards as u64) as usize
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (min 8), striped
    /// over [`DEFAULT_SHARDS`] shards (fewer for small capacities).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a pool with an explicit shard count. The count is clamped
    /// so every shard holds at least [`MIN_FRAMES_PER_SHARD`] frames; the
    /// total capacity is preserved exactly (frames are distributed as
    /// evenly as possible).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(8);
        let nshards = shards.clamp(1, (capacity / MIN_FRAMES_PER_SHARD).max(1));
        let base = capacity / nshards;
        let rem = capacity % nshards;
        let shards: Vec<Mutex<Shard>> = (0..nshards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < rem))))
            .collect();
        let shard_metrics = (0..nshards).map(PoolMetrics::for_shard).collect();
        Self {
            files: RwLock::new(Vec::new()),
            shards,
            wal: RwLock::new(None),
            sync: AtomicBool::new(true),
            metrics: PoolMetrics::global(),
            shard_metrics,
            resident_pages: obs::global().gauge("pool.resident_pages"),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Pages currently resident across all shards. This is the per-pool
    /// view of the global `pool.resident_pages` gauge (which sums every
    /// live pool).
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Registers a file; all subsequent access uses the returned id.
    /// The file's pages are *not* WAL-logged; see
    /// [`BufferPool::register_file_named`].
    pub fn register_file(&self, file: PageFile) -> FileId {
        self.register_file_named(file, None)
    }

    /// Registers a file with a durability identity: when `wal_name` is
    /// `Some` and a WAL is attached, every dirty page of this file is
    /// appended to the log (under that name) before it is written back.
    pub fn register_file_named(&self, file: PageFile, wal_name: Option<String>) -> FileId {
        let mut files = self.files.write();
        files.push(FileEntry {
            file: Mutex::new(file),
            wal_name,
        });
        (files.len() - 1) as FileId
    }

    /// Attaches the write-ahead log enforcing WAL-before-data on
    /// writeback of WAL-named files.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        *self.wal.write() = Some(wal);
    }

    /// Sets whether flushes fsync the files (default) or stop at
    /// draining userspace buffers.
    pub fn set_sync(&self, sync: bool) {
        self.sync.store(sync, Ordering::Release);
    }

    /// Number of pages currently allocated in file `fid`.
    pub fn file_pages(&self, fid: FileId) -> u32 {
        self.files.read()[fid as usize].file.lock().num_pages()
    }

    /// On-disk size of file `fid` in bytes.
    pub fn file_size_bytes(&self, fid: FileId) -> u64 {
        self.files.read()[fid as usize].file.lock().size_bytes()
    }

    /// Filesystem path of file `fid` (used for derived sidecar files,
    /// e.g. zone maps).
    pub fn file_path(&self, fid: FileId) -> std::path::PathBuf {
        self.files.read()[fid as usize]
            .file
            .lock()
            .path()
            .to_path_buf()
    }

    /// Appends a zeroed page to file `fid` and returns its id. The page is
    /// installed in the pool as a clean frame (no physical read needed).
    pub fn allocate_page(&self, fid: FileId) -> Result<PageId> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        let pid = files[fid as usize].file.lock().allocate()?;
        let si = shard_for(self.shards.len(), fid, pid);
        let mut shard = self.shards[si].lock();
        shard.stats.physical_writes += 1; // the zero-fill write
        self.metrics.physical_writes.inc();
        self.shard_metrics[si].physical_writes.inc();
        let frame = self.frame_for(&mut shard, si, &files, wal.as_ref(), fid, pid, false)?;
        *shard.frames[frame].buf.bytes_mut() = [0u8; PAGE_SIZE];
        Ok(pid)
    }

    /// Runs `f` over a read-only view of the page. The closure executes
    /// under the page's shard lock, so it must not re-enter the pool.
    pub fn with_page<R>(
        &self,
        fid: FileId,
        pid: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        let si = shard_for(self.shards.len(), fid, pid);
        let mut shard = self.shards[si].lock();
        let frame = self.frame_for(&mut shard, si, &files, wal.as_ref(), fid, pid, true)?;
        Ok(f(shard.frames[frame].buf.bytes()))
    }

    /// Runs `f` over a mutable view of the page and marks it dirty.
    pub fn with_page_mut<R>(
        &self,
        fid: FileId,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        let si = shard_for(self.shards.len(), fid, pid);
        let mut shard = self.shards[si].lock();
        let frame = self.frame_for(&mut shard, si, &files, wal.as_ref(), fid, pid, true)?;
        shard.frames[frame].dirty = true;
        shard.frames[frame].logged = false;
        Ok(f(shard.frames[frame].buf.bytes_mut()))
    }

    /// Copies the page into `out`. Use this when the caller needs to run
    /// user code over the contents (scans), so no lock is held meanwhile.
    pub fn read_page_into(&self, fid: FileId, pid: PageId, out: &mut PageBuf) -> Result<()> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        let si = shard_for(self.shards.len(), fid, pid);
        let mut shard = self.shards[si].lock();
        let frame = self.frame_for(&mut shard, si, &files, wal.as_ref(), fid, pid, true)?;
        out.bytes_mut()
            .copy_from_slice(shard.frames[frame].buf.bytes());
        Ok(())
    }

    /// Writes every dirty frame back to its file, then syncs the files
    /// (a real `fsync` unless [`BufferPool::set_sync`] opted out).
    pub fn flush_all(&self) -> Result<()> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        for (si, s) in self.shards.iter().enumerate() {
            let mut shard = s.lock();
            self.flush_shard(&mut shard, si, &files, wal.as_ref())?;
        }
        self.sync_files(&files)
    }

    /// Writes the dirty frames of one file back and syncs just that
    /// file. Used where something else must not reach disk before the
    /// file's contents do (e.g. the catalog line naming a freshly built
    /// B+tree).
    pub fn flush_file(&self, fid: FileId) -> Result<()> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        for (si, s) in self.shards.iter().enumerate() {
            let mut shard = s.lock();
            for i in 0..shard.frames.len() {
                if shard.frames[i].dirty && shard.frames[i].key.0 == fid {
                    self.log_before_write(&files, wal.as_ref(), &mut shard.frames[i])?;
                    let (fid, pid) = shard.frames[i].key;
                    let buf = shard.frames[i].buf.bytes();
                    files[fid as usize].file.lock().write_page(pid, buf)?;
                    shard.frames[i].dirty = false;
                    shard.stats.physical_writes += 1;
                    self.metrics.physical_writes.inc();
                    self.shard_metrics[si].physical_writes.inc();
                }
            }
        }
        let mut file = files[fid as usize].file.lock();
        if self.sync.load(Ordering::Acquire) {
            file.sync_all()?;
        } else {
            file.sync()?;
        }
        Ok(())
    }

    /// Flushes and then drops every cached frame: the next access to any
    /// page is a miss ("cold cache").
    pub fn clear_cache(&self) -> Result<()> {
        let files = self.files.read();
        let wal = self.wal.read().clone();
        for (si, s) in self.shards.iter().enumerate() {
            let mut shard = s.lock();
            self.flush_shard(&mut shard, si, &files, wal.as_ref())?;
            self.resident_pages.sub(shard.frames.len() as i64);
            shard.map.clear();
            shard.frames.clear();
            shard.hand = 0;
        }
        self.sync_files(&files)
    }

    /// Replaces the [`PageFile`] backing `fid` with `file`, keeping the
    /// id. The heap-rewrite path streams a new file and renames it over
    /// the old path, which leaves the registered handle pinned to the
    /// dead inode; this installs the fresh handle. Every cached frame of
    /// `fid` is discarded *without* writeback — the old contents are
    /// obsolete by construction, and flushing them would corrupt the new
    /// file. Callers must checkpoint first so no WAL image of the old
    /// contents can replay onto the new file.
    pub fn swap_file(&self, fid: FileId, file: PageFile) {
        let files = self.files.read();
        for s in self.shards.iter() {
            let mut shard = s.lock();
            let mut i = 0;
            while i < shard.frames.len() {
                if shard.frames[i].key.0 == fid {
                    let key = shard.frames[i].key;
                    shard.map.remove(&key);
                    shard.frames.swap_remove(i);
                    if i < shard.frames.len() {
                        let moved = shard.frames[i].key;
                        shard.map.insert(moved, i);
                    }
                    self.resident_pages.sub(1);
                } else {
                    i += 1;
                }
            }
            shard.hand = 0;
        }
        *files[fid as usize].file.lock() = file;
    }

    /// Appends the image of every dirty-but-unlogged page of every
    /// WAL-named file to the attached log (commit preparation). Returns
    /// the number of images appended. A no-op without an attached WAL.
    pub fn log_dirty_pages(&self) -> Result<u64> {
        let files = self.files.read();
        let Some(wal) = self.wal.read().clone() else {
            return Ok(0);
        };
        let mut logged = 0u64;
        for s in self.shards.iter() {
            let mut shard = s.lock();
            for frame in shard.frames.iter_mut() {
                if frame.dirty && !frame.logged {
                    if let Some(name) = &files[frame.key.0 as usize].wal_name {
                        wal.append_image(name, frame.key.1, frame.buf.bytes())?;
                        frame.logged = true;
                        logged += 1;
                    }
                }
            }
        }
        Ok(logged)
    }

    fn sync_files(&self, files: &[FileEntry]) -> Result<()> {
        let fsync = self.sync.load(Ordering::Acquire);
        for f in files.iter() {
            let mut file = f.file.lock();
            if fsync {
                file.sync_all()?;
            } else {
                file.sync()?;
            }
        }
        Ok(())
    }

    /// WAL-before-data: appends the frame's image to the log if its file
    /// is WAL-named and the current contents are not yet logged. Called
    /// on every writeback path (flush and eviction). The WAL handle is
    /// read by the caller *before* any shard lock is taken (the declared
    /// order is `pool.walref` before `pool.shard`) and threaded in here.
    fn log_before_write(
        &self,
        files: &[FileEntry],
        wal: Option<&Arc<Wal>>,
        frame: &mut Frame,
    ) -> Result<()> {
        if frame.logged {
            return Ok(());
        }
        if let Some(name) = &files[frame.key.0 as usize].wal_name {
            if let Some(wal) = wal {
                wal.append_image(name, frame.key.1, frame.buf.bytes())?;
                frame.logged = true;
            }
        }
        Ok(())
    }

    /// Snapshot of the cumulative counters, merged across all shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            total = total.merged(&s.lock().stats);
        }
        total
    }

    /// Per-shard counter snapshots (same order as the `pool.shard<i>.*`
    /// registry counters). Their merge equals [`BufferPool::stats`].
    pub fn shard_stats(&self) -> Vec<PoolStats> {
        self.shards.iter().map(|s| s.lock().stats).collect()
    }

    /// Resets the cumulative counters to zero (all shards).
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.lock().stats = PoolStats::default();
        }
    }

    fn flush_shard(
        &self,
        shard: &mut Shard,
        si: usize,
        files: &[FileEntry],
        wal: Option<&Arc<Wal>>,
    ) -> Result<()> {
        for i in 0..shard.frames.len() {
            if shard.frames[i].dirty {
                self.log_before_write(files, wal, &mut shard.frames[i])?;
                let (fid, pid) = shard.frames[i].key;
                let buf = shard.frames[i].buf.bytes();
                files[fid as usize].file.lock().write_page(pid, buf)?;
                shard.frames[i].dirty = false;
                shard.stats.physical_writes += 1;
                self.metrics.physical_writes.inc();
                self.shard_metrics[si].physical_writes.inc();
            }
        }
        Ok(())
    }

    /// Returns the frame index holding `(fid, pid)` within `shard`,
    /// loading (and possibly evicting) as needed. `load` controls whether
    /// a miss reads the page from disk (true) or leaves the frame contents
    /// unspecified for the caller to overwrite (false, used by
    /// `allocate_page`).
    #[allow(clippy::too_many_arguments)] // files + wal are the pre-acquired lock context
    fn frame_for(
        &self,
        shard: &mut Shard,
        si: usize,
        files: &[FileEntry],
        wal: Option<&Arc<Wal>>,
        fid: FileId,
        pid: PageId,
        load: bool,
    ) -> Result<usize> {
        if let Some(&i) = shard.map.get(&(fid, pid)) {
            shard.stats.hits += 1;
            self.metrics.hits.inc();
            self.shard_metrics[si].hits.inc();
            shard.frames[i].referenced = true;
            return Ok(i);
        }
        shard.stats.misses += 1;
        self.metrics.misses.inc();
        self.shard_metrics[si].misses.inc();
        let i = if shard.frames.len() < shard.capacity {
            shard.frames.push(Frame {
                key: (fid, pid),
                buf: PageBuf::zeroed(),
                dirty: false,
                logged: false,
                referenced: true,
            });
            self.resident_pages.add(1);
            shard.frames.len() - 1
        } else {
            let victim = clock_victim(shard);
            let old = shard.frames[victim].key;
            if shard.frames[victim].dirty {
                self.log_before_write(files, wal, &mut shard.frames[victim])?;
                let buf = shard.frames[victim].buf.bytes();
                files[old.0 as usize].file.lock().write_page(old.1, buf)?;
                shard.stats.physical_writes += 1;
                self.metrics.physical_writes.inc();
                self.shard_metrics[si].physical_writes.inc();
            }
            shard.map.remove(&old);
            shard.stats.evictions += 1;
            self.metrics.evictions.inc();
            self.shard_metrics[si].evictions.inc();
            shard.frames[victim].key = (fid, pid);
            shard.frames[victim].dirty = false;
            shard.frames[victim].logged = false;
            shard.frames[victim].referenced = true;
            victim
        };
        if load {
            let buf = shard.frames[i].buf.bytes_mut();
            files[fid as usize].file.lock().read_page(pid, buf)?;
            shard.stats.physical_reads += 1;
            self.metrics.physical_reads.inc();
            self.shard_metrics[si].physical_reads.inc();
        }
        shard.map.insert((fid, pid), i);
        Ok(i)
    }
}

impl Drop for BufferPool {
    /// Returns the pool's remaining residency to the global gauge, so a
    /// test or bench run that builds many pools doesn't ratchet
    /// `pool.resident_pages` upward forever.
    fn drop(&mut self) {
        for s in self.shards.iter() {
            let shard = s.lock();
            self.resident_pages.sub(shard.frames.len() as i64);
        }
    }
}

/// Second-chance clock over one shard: clear referenced bits until an
/// unreferenced frame is found.
fn clock_victim(shard: &mut Shard) -> usize {
    loop {
        let i = shard.hand;
        shard.hand = (shard.hand + 1) % shard.frames.len();
        if shard.frames[i].referenced {
            shard.frames[i].referenced = false;
        } else {
            return i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagestore-bp-{}-{name}", std::process::id()))
    }

    fn pool_with_file(name: &str, cap: usize) -> (BufferPool, FileId, PathBuf) {
        let p = tmpfile(name);
        let pool = BufferPool::new(cap);
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        (pool, fid, p)
    }

    #[test]
    fn write_read_through_pool() {
        let (pool, fid, p) = pool_with_file("wr", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |b| b[100] = 42).unwrap();
        let v = pool.with_page(fid, pid, |b| b[100]).unwrap();
        assert_eq!(v, 42);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let (pool, fid, p) = pool_with_file("evict", 8);
        // Allocate and dirty more pages than fit in the pool.
        let mut pids = Vec::new();
        for i in 0..32u32 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |b| b[0] = i as u8).unwrap();
            pids.push(pid);
        }
        // Every page must read back its own value (through evictions).
        for (i, &pid) in pids.iter().enumerate() {
            let v = pool.with_page(fid, pid, |b| b[0]).unwrap();
            assert_eq!(v, i as u8, "page {pid}");
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "pool capacity was never exceeded");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn hits_and_misses_counted() {
        let (pool, fid, p) = pool_with_file("stats", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.reset_stats();
        pool.with_page(fid, pid, |_| ()).unwrap();
        pool.with_page(fid, pid, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn clear_cache_forces_misses() {
        let (pool, fid, p) = pool_with_file("cold", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |b| b[1] = 9).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let v = pool.with_page(fid, pid, |b| b[1]).unwrap();
        assert_eq!(v, 9, "data survives the cache drop");
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.physical_reads, 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn resident_pages_tracks_fill_eviction_and_clear() {
        let (pool, fid, p) = pool_with_file("resident", 8);
        assert_eq!(pool.resident_pages(), 0);
        // Fill past capacity: residency saturates at capacity because
        // eviction reuses frames instead of growing the table.
        for _ in 0..32 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |b| b[0] = 1).unwrap();
        }
        let resident = pool.resident_pages();
        assert!(resident > 0 && resident <= 8, "resident={resident}");
        assert!(pool.stats().evictions > 0);
        pool.clear_cache().unwrap();
        assert_eq!(pool.resident_pages(), 0, "clear_cache empties every shard");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_since_computes_delta() {
        let a = PoolStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            physical_reads: 4,
            physical_writes: 2,
        };
        let b = PoolStats {
            hits: 25,
            misses: 9,
            evictions: 1,
            physical_reads: 9,
            physical_writes: 2,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 5);
        assert_eq!(d.evictions, 0);
    }

    #[test]
    fn stats_since_saturates_on_counter_reset() {
        // If reset_stats() ran between the snapshots, "later" counters can
        // be smaller than "earlier". The delta must clamp to 0 per field,
        // never wrap.
        let earlier = PoolStats {
            hits: 100,
            misses: 50,
            evictions: 10,
            physical_reads: 50,
            physical_writes: 20,
        };
        let later = PoolStats {
            hits: 3,
            misses: 60,
            evictions: 0,
            physical_reads: 1,
            physical_writes: 25,
        };
        let d = later.since(&earlier);
        assert_eq!(
            d,
            PoolStats {
                hits: 0,
                misses: 10,
                evictions: 0,
                physical_reads: 0,
                physical_writes: 5,
            }
        );
    }

    #[test]
    fn stats_since_of_self_is_zero() {
        let s = PoolStats {
            hits: 7,
            misses: 7,
            evictions: 7,
            physical_reads: 7,
            physical_writes: 7,
        };
        assert_eq!(s.since(&s), PoolStats::default());
    }

    #[test]
    fn stats_merged_adds_componentwise() {
        let a = PoolStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            physical_reads: 4,
            physical_writes: 5,
        };
        let b = PoolStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            physical_reads: 40,
            physical_writes: 50,
        };
        let m = a.merged(&b);
        assert_eq!(m.hits, 11);
        assert_eq!(m.misses, 22);
        assert_eq!(m.evictions, 33);
        assert_eq!(m.physical_reads, 44);
        assert_eq!(m.physical_writes, 55);
        // since() inverts merged(): (a+b) - b == a.
        assert_eq!(m.since(&b), a);
    }

    #[test]
    fn pool_publishes_global_counters() {
        let before = obs::global().snapshot();
        let (pool, fid, p) = pool_with_file("obs", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page(fid, pid, |_| ()).unwrap();
        pool.clear_cache().unwrap();
        pool.with_page(fid, pid, |_| ()).unwrap();
        let d = obs::global().snapshot().delta(&before);
        // One hit (first access after allocate), one miss + physical read
        // (after the cache drop). Other tests may run concurrently, so
        // assert lower bounds only.
        assert!(d.counters.get("pool.hits").copied().unwrap_or(0) >= 1);
        assert!(d.counters.get("pool.misses").copied().unwrap_or(0) >= 1);
        assert!(d.counters.get("pool.physical_reads").copied().unwrap_or(0) >= 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_page_into_copies() {
        let (pool, fid, p) = pool_with_file("copy", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |b| b[7] = 3).unwrap();
        let mut out = PageBuf::zeroed();
        pool.read_page_into(fid, pid, &mut out).unwrap();
        assert_eq!(out.bytes()[7], 3);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn multiple_files_are_isolated() {
        let p1 = tmpfile("multi1");
        let p2 = tmpfile("multi2");
        let pool = BufferPool::new(16);
        let f1 = pool.register_file(PageFile::create(&p1).unwrap());
        let f2 = pool.register_file(PageFile::create(&p2).unwrap());
        let a = pool.allocate_page(f1).unwrap();
        let b = pool.allocate_page(f2).unwrap();
        pool.with_page_mut(f1, a, |x| x[0] = 1).unwrap();
        pool.with_page_mut(f2, b, |x| x[0] = 2).unwrap();
        assert_eq!(pool.with_page(f1, a, |x| x[0]).unwrap(), 1);
        assert_eq!(pool.with_page(f2, b, |x| x[0]).unwrap(), 2);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn shard_count_respects_capacity() {
        // Tiny pools collapse to one shard; big pools get the default.
        assert_eq!(BufferPool::new(8).num_shards(), 1);
        assert_eq!(BufferPool::new(64).num_shards(), 8);
        assert_eq!(BufferPool::new(4096).num_shards(), DEFAULT_SHARDS);
        assert_eq!(BufferPool::with_shards(4096, 16).num_shards(), 16);
        assert_eq!(BufferPool::with_shards(4096, 0).num_shards(), 1);
    }

    #[test]
    fn shard_capacities_tile_total() {
        // 100 frames over 8 shards: sums must preserve the capacity
        // exactly even when it does not divide evenly.
        let pool = BufferPool::with_shards(100, 8);
        let total: usize = pool.shards.iter().map(|s| s.lock().capacity).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn shard_stats_merge_to_pool_stats() {
        let (pool, fid, p) = pool_with_file("shardsum", 128);
        let mut pids = Vec::new();
        for i in 0..64u32 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |b| b[0] = i as u8).unwrap();
            pids.push(pid);
        }
        for &pid in &pids {
            pool.with_page(fid, pid, |_| ()).unwrap();
        }
        let mut merged = PoolStats::default();
        for s in pool.shard_stats() {
            merged = merged.merged(&s);
        }
        assert_eq!(merged, pool.stats());
        assert!(pool.num_shards() > 1, "test should exercise >1 shard");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn pages_spread_across_shards() {
        let pool = BufferPool::new(1024);
        let n = pool.num_shards();
        let mut seen = vec![false; n];
        for pid in 0..64u32 {
            seen[shard_for(n, 0, pid)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 consecutive pages should touch every one of {n} shards"
        );
    }

    #[test]
    fn concurrent_readers_and_stats_are_consistent() {
        let (pool, fid, p) = pool_with_file("conc", 64);
        let mut pids = Vec::new();
        for i in 0..128u32 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |b| b[3] = (i % 251) as u8)
                .unwrap();
            pids.push(pid);
        }
        pool.flush_all().unwrap();
        pool.reset_stats();
        let pool = std::sync::Arc::new(pool);
        let threads = 8;
        let rounds = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let pool = std::sync::Arc::clone(&pool);
                let pids = pids.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        for (i, &pid) in pids.iter().enumerate() {
                            if (i + t + r) % 3 == 0 {
                                let v = pool.with_page(fid, pid, |b| b[3]).unwrap();
                                assert_eq!(v, (i % 251) as u8);
                            }
                        }
                    }
                });
            }
        });
        let s = pool.stats();
        // Every logical request is either a hit or a miss; every miss did
        // one physical read (no allocations or writes here).
        assert_eq!(s.physical_reads, s.misses);
        assert_eq!(s.physical_writes, 0);
        let mut merged = PoolStats::default();
        for sh in pool.shard_stats() {
            merged = merged.merged(&sh);
        }
        assert_eq!(merged, s, "shard stats must tile the pool stats");
        std::fs::remove_file(&p).ok();
    }
}
