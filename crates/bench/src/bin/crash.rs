//! Crash-injection harness for the durability subsystem.
//!
//! The parent repeatedly spawns a child process (this same binary with
//! `--child`) that ingests a deterministic transect into a WAL-backed
//! index, throttled so the kill window is wide, and SIGKILLs it at a
//! random point. After every kill the parent reopens the index — which
//! runs WAL recovery — and asserts the two properties the durability
//! design promises:
//!
//! 1. **Prefix consistency**: the recovered index equals the index a
//!    crash-free run would have produced over some prefix of the input
//!    (segment chain unbroken, feature tables exactly reproducible by
//!    replaying extraction over the stored segments).
//! 2. **Theorem-1 completeness over the prefix**: a drop query against
//!    the recovered index finds every true event inside the recovered
//!    prefix — no event is lost across the crash/recovery seam.
//!
//! The child then *resumes* from the recovered prefix, so one run also
//! exercises repeated crash–recover–resume cycles over the same store.
//!
//! ```sh
//! cargo run --release -p segdiff-bench --bin crash -- --iterations 20
//! ```
//!
//! Flags: `--iterations N` (default 20), `--days D` (default 2),
//! `--seed S`, `--throttle-us U` (per-observation ingest delay in the
//! child), `--dir PATH` (index directory), `--log PATH` (recovery log,
//! default `crash-recovery.log` in the index dir's parent).

use featurespace::QueryRegion;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use segdiff::{oracle, QueryPlan, SegDiffConfig, SegDiffIndex};
use sensorgen::{generate_sensor, CadTransectConfig, TimeSeries, HOUR};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{exit, Command};
use std::time::Duration;

struct Args {
    child: bool,
    iterations: u32,
    days: u32,
    seed: u64,
    throttle_us: u64,
    dir: Option<PathBuf>,
    log: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        child: false,
        iterations: 20,
        days: 2,
        seed: 7,
        throttle_us: 2000,
        dir: None,
        log: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--child" => args.child = true,
            "--iterations" => args.iterations = num("--iterations") as u32,
            "--days" => args.days = num("--days") as u32,
            "--seed" => args.seed = num("--seed"),
            "--throttle-us" => args.throttle_us = num("--throttle-us"),
            "--dir" => args.dir = Some(PathBuf::from(it.next().expect("--dir PATH"))),
            "--log" => args.log = Some(PathBuf::from(it.next().expect("--log PATH"))),
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
    }
    args
}

/// The workload both parent and child derive independently: a clean CAD
/// transect (no anomalies), fully determined by `days` and `seed`.
fn workload(days: u32, seed: u64) -> TimeSeries {
    generate_sensor(
        &CadTransectConfig::default().with_days(days).clean(),
        12,
        seed,
    )
}

fn durable_config() -> SegDiffConfig {
    // SIGKILL leaves the OS page cache intact, so fsyncs are not needed
    // for crash *consistency* — and skipping them keeps iterations fast.
    SegDiffConfig::default()
        .with_sync(false)
        .with_pool_pages(512)
}

/// Child mode: resume (or start) ingesting the workload into `dir`,
/// sleeping `throttle_us` per observation so kills land mid-ingest.
fn run_child(dir: &Path, days: u32, seed: u64, throttle_us: u64) {
    let series = workload(days, seed);
    let (mut idx, last_t) = if dir.join("segdiff.meta").exists() {
        match SegDiffIndex::open(dir, 512) {
            Ok(idx) => {
                let last_t = idx
                    .segments()
                    .expect("segments")
                    .last()
                    .map(|s| s.t_end)
                    .unwrap_or(f64::NEG_INFINITY);
                (idx, last_t)
            }
            // A kill inside create() can leave a meta file whose tables
            // were pruned as uncommitted; start over like the parent does.
            Err(pagestore::StoreError::NotFound(_)) => {
                std::fs::remove_dir_all(dir).ok();
                (
                    SegDiffIndex::create(dir, durable_config()).expect("create"),
                    f64::NEG_INFINITY,
                )
            }
            Err(e) => panic!("child reopen failed: {e}"),
        }
    } else {
        std::fs::remove_dir_all(dir).ok();
        (
            SegDiffIndex::create(dir, durable_config()).expect("create"),
            f64::NEG_INFINITY,
        )
    };
    for (t, v) in series.iter().filter(|&(t, _)| t > last_t) {
        idx.push(t, v).expect("push");
        if throttle_us > 0 {
            std::thread::sleep(Duration::from_micros(throttle_us));
        }
    }
    idx.finish().expect("finish");
    exit(0);
}

/// One recovered-prefix check: consistency invariants plus Theorem-1
/// completeness of a drop query over the prefix the index covers.
/// Returns a human-readable summary for the recovery log.
fn verify(dir: &Path, series: &TimeSeries) -> Result<String, String> {
    let idx = match SegDiffIndex::open(dir, 512) {
        Ok(idx) => idx,
        // Killed before the first commit made it to disk: recovery pruned
        // everything, which is a valid (empty) prefix. Start over.
        Err(pagestore::StoreError::NotFound(_)) => {
            std::fs::remove_dir_all(dir).ok();
            return Ok("empty prefix (killed before first commit); reset".into());
        }
        Err(e) => return Err(format!("reopen failed: {e}")),
    };
    let report = idx
        .recovery_report()
        .ok_or("index opened without WAL recovery")?
        .clone();
    idx.verify_consistency()
        .map_err(|e| format!("prefix inconsistent: {e}"))?;
    let segments = idx.segments().map_err(|e| e.to_string())?;
    let Some(last) = segments.last() else {
        return Ok(format!(
            "clean={} replayed={} segments=0 (no committed segment yet)",
            report.clean, report.replayed_pages
        ));
    };
    // Completeness over the recovered prefix: every true drop event that
    // lies entirely within the covered time range must be found.
    let mut prefix = TimeSeries::new();
    for (t, v) in series.iter().filter(|&(t, _)| t <= last.t_end) {
        prefix.push(t, v);
    }
    let region = QueryRegion::drop(1.0 * HOUR, -1.0);
    let events = oracle::true_events(&prefix, &region);
    let (results, _) = idx
        .query(&region, QueryPlan::SeqScan)
        .map_err(|e| e.to_string())?;
    if let Some(missed) = oracle::find_missed_event(&events, &results) {
        return Err(format!(
            "completeness violated: true event {missed:?} in the recovered \
             prefix (t <= {}) is not covered by any of {} results",
            last.t_end,
            results.len()
        ));
    }
    Ok(format!(
        "clean={} replayed={} truncated={} segments={} events={} results={}",
        report.clean,
        report.replayed_pages,
        report.truncated_rows,
        segments.len(),
        events.len(),
        results.len()
    ))
}

fn main() {
    let args = parse_args();
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("segdiff-crash-{}", std::process::id()))
    });
    if args.child {
        run_child(&dir, args.days, args.seed, args.throttle_us);
    }

    let log_path = args.log.clone().unwrap_or_else(|| {
        let mut name = dir.file_name().unwrap_or_default().to_os_string();
        name.push("-recovery.log");
        dir.with_file_name(name)
    });
    let mut log = std::fs::File::create(&log_path).expect("create recovery log");
    let exe = std::env::current_exe().expect("current_exe");
    let series = workload(args.days, args.seed);
    let full_span = series.times().last().copied().unwrap_or(0.0);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC4A5_4CBA);
    std::fs::remove_dir_all(&dir).ok();

    let mut kills = 0u32;
    let mut completions = 0u32;
    let mut failures = 0u32;
    for i in 0..args.iterations {
        let mut child = Command::new(&exe)
            .arg("--child")
            .args(["--dir".as_ref(), dir.as_os_str()])
            .args(["--days", &args.days.to_string()])
            .args(["--seed", &args.seed.to_string()])
            .args(["--throttle-us", &args.throttle_us.to_string()])
            .spawn()
            .expect("spawn child");
        let delay_ms: u64 = rng.random_range(5..400);
        std::thread::sleep(Duration::from_millis(delay_ms));
        let completed = match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "child failed on its own: {status}");
                completions += 1;
                true
            }
            None => {
                child.kill().expect("SIGKILL child"); // SIGKILL on unix
                child.wait().expect("reap child");
                kills += 1;
                false
            }
        };
        let outcome = verify(&dir, &series);
        let line = format!(
            "iter={i} delay_ms={delay_ms} {}: {}",
            if completed { "completed" } else { "killed" },
            match &outcome {
                Ok(s) => s.clone(),
                Err(e) => format!("FAIL {e}"),
            }
        );
        eprintln!("[crash] {line}");
        writeln!(log, "{line}").expect("write log");
        if outcome.is_err() {
            failures += 1;
        }
        if completed {
            // Ingest ran to the end: the prefix is the whole workload.
            // Reset so remaining iterations keep exercising the seam.
            if let Ok(idx) = SegDiffIndex::open(&dir, 512) {
                let last = idx.segments().expect("segments").last().copied();
                assert_eq!(
                    last.map(|s| s.t_end),
                    Some(full_span),
                    "completed run must cover the full workload"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    let summary = format!(
        "done: {} iterations, {kills} kills, {completions} completions, {failures} failures",
        args.iterations
    );
    eprintln!("[crash] {summary}");
    writeln!(log, "{summary}").expect("write log");
    println!("recovery log: {}", log_path.display());
    if failures > 0 {
        exit(1);
    }
    std::fs::remove_dir_all(&dir).ok();
}
