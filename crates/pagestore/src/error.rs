//! Error handling for the storage engine.

use std::fmt;
use std::io;

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk state is inconsistent (bad magic, impossible counts, ...).
    Corrupt(String),
    /// A catalog object was not found.
    NotFound(String),
    /// A catalog object already exists.
    AlreadyExists(String),
    /// The caller supplied an invalid argument (wrong arity, oversized
    /// key, ...).
    InvalidArgument(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StoreError::NotFound(m) => write!(f, "not found: {m}"),
            StoreError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            StoreError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = StoreError::Corrupt("bad magic".into());
        assert_eq!(e.to_string(), "corrupt storage: bad magic");
        let e = StoreError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let e = StoreError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(StoreError::NotFound("t".into()).source().is_none());
    }
}
