//! The redo-only write-ahead log.
//!
//! One `wal.log` file per database directory, a flat sequence of
//! checksummed, LSN-stamped records:
//!
//! ```text
//! [magic u32][len u32][crc32 u32][payload]
//! payload = kind u8, lsn u64, body
//! ```
//!
//! Three record kinds exist. `PageImage` carries the after-image of one
//! page of a named file, with the page's trailing zeros elided (heap
//! tail pages are mostly empty, so this roughly halves log volume);
//! replay zero-fills the rest, reconstructing the full 4 KiB image.
//! Redo is idempotent, so recovery can replay every valid image
//! unconditionally. `Commit` marks
//! an application-consistent point: the committed row count of every
//! table plus an opaque application blob (the `core` crate stores its
//! `segdiff.meta` text there). `Checkpoint` is a `Commit` whose preceding
//! images are already durable in the data files; the log always *starts*
//! with one, so "any record after the first" is exactly the unclean-
//! shutdown predicate [`crate::recovery`] keys off.
//!
//! Durability discipline: [`Wal::append_commit`] fsyncs the log every
//! `group_commit`-th commit (and [`Wal::sync`] forces it); checkpointing
//! rewrites the log atomically (temp file + fsync + rename + directory
//! fsync), which both truncates the log and bounds replay.

use crate::error::Result;
use crate::pagefile::PageId;
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File name of the log inside a database directory.
pub const WAL_FILE: &str = "wal.log";

/// Magic word opening every frame ("SDWL").
pub const WAL_MAGIC: u32 = 0x5344_574C;
const KIND_PAGE_IMAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;
/// Frame header size: magic + len + crc.
pub const FRAME_HDR: usize = 12;

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Checksum of `data` (used for every WAL record payload).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- records

/// The application-consistent state a `Commit`/`Checkpoint` pins down:
/// per-table durable row counts plus an opaque application blob.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitState {
    /// `(table name, committed row count)` pairs.
    pub tables: Vec<(String, u64)>,
    /// Opaque application payload (e.g. serialized index metadata).
    pub blob: Vec<u8>,
}

/// A decoded WAL record (crate-internal: recovery consumes these).
#[derive(Debug, Clone)]
pub(crate) enum Record {
    /// Full after-image of page `pid` of the file named `file`.
    PageImage {
        file: String,
        pid: PageId,
        image: Box<[u8; PAGE_SIZE]>,
    },
    /// An application-consistent commit point.
    Commit(CommitState),
    /// A commit point whose images are already durable (log start).
    Checkpoint(CommitState),
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode_state(buf: &mut Vec<u8>, state: &CommitState) {
    buf.extend_from_slice(&(state.blob.len() as u32).to_le_bytes());
    buf.extend_from_slice(&state.blob);
    buf.extend_from_slice(&(state.tables.len() as u16).to_le_bytes());
    for (name, rows) in &state.tables {
        put_str(buf, name);
        buf.extend_from_slice(&rows.to_le_bytes());
    }
}

/// A cursor over a byte slice that fails with `None` instead of panicking
/// on truncated input (decode errors surface as torn records).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).ok()
    }
}

fn decode_state(c: &mut Cursor<'_>) -> Option<CommitState> {
    let blob_len = c.u32()? as usize;
    let blob = c.take(blob_len)?.to_vec();
    let ntables = c.u16()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = c.str()?;
        let rows = c.u64()?;
        tables.push((name, rows));
    }
    Some(CommitState { tables, blob })
}

/// Decodes one payload; `None` means the record is torn/garbled and the
/// scan must stop there.
fn decode_payload(payload: &[u8]) -> Option<(u64, Record)> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let kind = c.u8()?;
    let lsn = c.u64()?;
    let rec = match kind {
        KIND_PAGE_IMAGE => {
            let file = c.str()?;
            let pid = c.u32()?;
            let used = c.u32()? as usize;
            if used > PAGE_SIZE {
                return None;
            }
            let img = c.take(used)?;
            let mut image = Box::new([0u8; PAGE_SIZE]);
            image[..used].copy_from_slice(img);
            Record::PageImage { file, pid, image }
        }
        KIND_COMMIT => Record::Commit(decode_state(&mut c)?),
        KIND_CHECKPOINT => Record::Checkpoint(decode_state(&mut c)?),
        _ => return None,
    };
    Some((lsn, rec))
}

/// Result of scanning a log file: the valid prefix of records and how
/// many trailing bytes were discarded as torn.
pub(crate) struct WalScan {
    pub records: Vec<(u64, Record)>,
    pub torn_bytes: u64,
    pub valid_bytes: u64,
}

/// Reads `path` and returns every record up to the first torn or
/// garbled one (bad magic, bad CRC, short frame). A missing file scans
/// as empty.
pub(crate) fn scan(path: &Path) -> Result<WalScan> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(hdr) = data.get(pos..pos + FRAME_HDR) {
        if u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) != WAL_MAGIC {
            break;
        }
        let len = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
        let crc = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
        let Some(payload) = data.get(pos + FRAME_HDR..pos + FRAME_HDR + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            break;
        };
        records.push(rec);
        pos += FRAME_HDR + len;
    }
    Ok(WalScan {
        records,
        torn_bytes: (data.len() - pos) as u64,
        valid_bytes: pos as u64,
    })
}

// ------------------------------------------------------------ shipping

/// A contiguous run of raw WAL frames, as served to a tailing replica.
///
/// `frames` is a byte-exact slice of the log: each frame keeps its
/// `[magic][len][crc]` header, so the receiver can append it verbatim
/// to its own `wal.log` and replay it through the ordinary recovery
/// path. The LSN fields let the receiver advance its cursor without
/// decoding payloads.
#[derive(Debug, Clone, Default)]
pub struct WalSegment {
    /// Raw frame bytes (possibly empty), headers included.
    pub frames: Vec<u8>,
    /// LSN of the first shipped frame (0 when `frames` is empty).
    pub first_lsn: u64,
    /// LSN of the last shipped frame (0 when `frames` is empty).
    pub last_lsn: u64,
    /// LSN of the first valid record in the log file. The log always
    /// starts with a checkpoint, so history before this LSN has been
    /// truncated away.
    pub log_start_lsn: u64,
    /// LSN of the last valid record in the log file (the shipping
    /// horizon; `last_lsn < log_end_lsn` means more frames remain).
    pub log_end_lsn: u64,
    /// True when the requested cursor predates `log_start_lsn - 1`: a
    /// checkpoint truncated records the receiver never saw, so tailing
    /// cannot catch up and the receiver must re-bootstrap from the data
    /// files.
    pub restart: bool,
    /// Byte length of the log's valid prefix. A receiver that copied the
    /// whole file truncates its copy to this before appending shipped
    /// frames, so a torn tail never hides later appends from recovery.
    pub valid_bytes: u64,
}

/// Reads raw frames with LSN > `after_lsn` from the log at `path`,
/// stopping after roughly `max_bytes` of frames (at least one frame is
/// always shipped when any qualifies, so progress is guaranteed).
///
/// Concurrent appenders are safe: a mid-write frame fails its length or
/// CRC check and the scan simply stops there, exactly as recovery would.
/// A concurrent checkpoint rename yields either the old or the new log,
/// both of which are internally consistent.
pub fn read_after(path: &Path, after_lsn: u64, max_bytes: usize) -> Result<WalSegment> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut seg = WalSegment::default();
    let mut pos = 0usize;
    while let Some(hdr) = data.get(pos..pos + FRAME_HDR) {
        if u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) != WAL_MAGIC {
            break;
        }
        let len = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
        let crc = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
        let Some(payload) = data.get(pos + FRAME_HDR..pos + FRAME_HDR + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        // payload = [kind u8][lsn u64 le]...
        let Some(lsn_bytes) = payload.get(1..9) else {
            break;
        };
        let mut lsn8 = [0u8; 8];
        lsn8.copy_from_slice(lsn_bytes);
        let lsn = u64::from_le_bytes(lsn8);
        if seg.log_start_lsn == 0 {
            seg.log_start_lsn = lsn;
        }
        seg.log_end_lsn = lsn;
        if lsn > after_lsn && (seg.frames.is_empty() || seg.frames.len() < max_bytes) {
            if seg.frames.is_empty() {
                seg.first_lsn = lsn;
            }
            seg.last_lsn = lsn;
            seg.frames
                .extend_from_slice(&data[pos..pos + FRAME_HDR + len]);
        }
        pos += FRAME_HDR + len;
    }
    seg.valid_bytes = pos as u64;
    // The log opens with a checkpoint; a cursor older than the record
    // just before it points at truncated history. Saturating: the
    // horizon probe passes `after_lsn == u64::MAX`.
    seg.restart = seg.log_start_lsn > 0 && after_lsn.saturating_add(1) < seg.log_start_lsn;
    Ok(seg)
}

// ----------------------------------------------------------------- Wal

/// Global-registry counters for the log (`wal.*`).
struct WalMetrics {
    appends: Arc<obs::Counter>,
    bytes: Arc<obs::Counter>,
    fsyncs: Arc<obs::Counter>,
    commits: Arc<obs::Counter>,
    checkpoints: Arc<obs::Counter>,
}

impl WalMetrics {
    fn new() -> Self {
        let r = obs::global();
        WalMetrics {
            appends: r.counter("wal.appends"),
            bytes: r.counter("wal.bytes"),
            fsyncs: r.counter("wal.fsyncs"),
            commits: r.counter("wal.commits"),
            checkpoints: r.counter("wal.checkpoints"),
        }
    }
}

struct WalInner {
    file: File,
    next_lsn: u64,
    bytes: u64,
    commits_since_sync: u64,
    scratch: Vec<u8>,
}

/// An open write-ahead log.
///
/// Thread-safe: a single mutex serializes appends, which sits *below*
/// the buffer pool's shard locks in the lock order (the pool appends
/// page images while holding a shard lock; the WAL never re-enters the
/// pool).
pub struct Wal {
    path: PathBuf,
    dir: PathBuf,
    inner: Mutex<WalInner>,
    sync: bool,
    group_commit: u64,
    last_checkpoint_lsn: AtomicU64,
    metrics: WalMetrics,
}

impl Wal {
    /// Creates a fresh log in `dir` whose first record is a checkpoint of
    /// `state` (an empty log is never valid).
    pub fn create(dir: &Path, state: &CommitState, sync: bool, group_commit: u64) -> Result<Wal> {
        let wal = Wal {
            path: dir.join(WAL_FILE),
            dir: dir.to_path_buf(),
            inner: Mutex::new(WalInner {
                // Placeholder; checkpoint() replaces the file handle.
                file: OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(WAL_FILE))?,
                next_lsn: 1,
                bytes: 0,
                commits_since_sync: 0,
                scratch: Vec::new(),
            }),
            sync,
            group_commit: group_commit.max(1),
            last_checkpoint_lsn: AtomicU64::new(0),
            metrics: WalMetrics::new(),
        };
        wal.checkpoint(state)?;
        Ok(wal)
    }

    /// Opens an existing log for appending; `next_lsn` continues after
    /// the last valid record (callers run [`crate::recovery`] first).
    pub fn open(dir: &Path, sync: bool, group_commit: u64) -> Result<Wal> {
        let path = dir.join(WAL_FILE);
        let scanned = scan(&path)?;
        let next_lsn = scanned.records.last().map(|(l, _)| l + 1).unwrap_or(1);
        let checkpoint_lsn = scanned
            .records
            .iter()
            .rev()
            .find(|(_, r)| matches!(r, Record::Checkpoint(_)))
            .map(|(l, _)| *l)
            .unwrap_or(0);
        // Chop any torn tail so appends continue from the valid prefix.
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        if scanned.torn_bytes > 0 {
            file.set_len(scanned.valid_bytes)?;
        }
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            path,
            dir: dir.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                next_lsn,
                bytes: scanned.valid_bytes,
                commits_since_sync: 0,
                scratch: Vec::new(),
            }),
            sync,
            group_commit: group_commit.max(1),
            last_checkpoint_lsn: AtomicU64::new(checkpoint_lsn),
            metrics: WalMetrics::new(),
        })
    }

    /// Current log size in bytes (valid prefix only).
    pub fn size_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// LSN of the most recent checkpoint record.
    pub fn last_checkpoint_lsn(&self) -> u64 {
        self.last_checkpoint_lsn.load(Ordering::Acquire)
    }

    /// LSN the next record will get.
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    /// Appends the after-image of one page, with trailing zeros elided
    /// (replay zero-fills). Not fsynced by itself: images only need to
    /// be durable before the data page overwrite, and the
    /// commit/checkpoint that follows syncs them.
    pub fn append_image(&self, file: &str, pid: PageId, image: &[u8; PAGE_SIZE]) -> Result<u64> {
        let used = image.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let mut payload = std::mem::take(&mut inner.scratch);
        payload.clear();
        payload.push(KIND_PAGE_IMAGE);
        payload.extend_from_slice(&lsn.to_le_bytes());
        put_str(&mut payload, file);
        payload.extend_from_slice(&pid.to_le_bytes());
        payload.extend_from_slice(&(used as u32).to_le_bytes());
        payload.extend_from_slice(&image[..used]);
        let res = self.write_frame(&mut inner, &payload);
        inner.scratch = payload;
        res?;
        Ok(lsn)
    }

    /// Appends a commit record and applies the group-commit fsync
    /// policy: the log is fsynced on every `group_commit`-th commit.
    pub fn append_commit(&self, state: &CommitState) -> Result<u64> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let mut payload = std::mem::take(&mut inner.scratch);
        payload.clear();
        payload.push(KIND_COMMIT);
        payload.extend_from_slice(&lsn.to_le_bytes());
        encode_state(&mut payload, state);
        let res = self.write_frame(&mut inner, &payload);
        inner.scratch = payload;
        res?;
        self.metrics.commits.inc();
        inner.commits_since_sync += 1;
        if self.sync && inner.commits_since_sync >= self.group_commit {
            inner.file.sync_data()?;
            self.metrics.fsyncs.inc();
            inner.commits_since_sync = 0;
        }
        Ok(lsn)
    }

    /// Forces the log to disk regardless of the group-commit cadence.
    pub fn sync(&self) -> Result<()> {
        if !self.sync {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        inner.file.sync_data()?;
        self.metrics.fsyncs.inc();
        inner.commits_since_sync = 0;
        Ok(())
    }

    /// Atomically truncates the log to a single checkpoint record of
    /// `state`. The caller must have made all earlier page images
    /// durable in the data files first (that is what makes the record a
    /// checkpoint). Temp file + fsync + rename + directory fsync, so a
    /// crash leaves either the old or the new log, never a mix.
    pub fn checkpoint(&self, state: &CommitState) -> Result<u64> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let mut payload = Vec::new();
        payload.push(KIND_CHECKPOINT);
        payload.extend_from_slice(&lsn.to_le_bytes());
        encode_state(&mut payload, state);
        let frame = frame_bytes(&payload);

        let tmp = self.dir.join("wal.log.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&frame)?;
        if self.sync {
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if self.sync {
            sync_dir(&self.dir)?;
            self.metrics.fsyncs.inc();
        }
        // Re-open the renamed file for appending.
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        inner.next_lsn = lsn + 1;
        inner.bytes = frame.len() as u64;
        inner.commits_since_sync = 0;
        self.last_checkpoint_lsn.store(lsn, Ordering::Release);
        self.metrics.appends.inc();
        self.metrics.bytes.add(frame.len() as u64);
        self.metrics.checkpoints.inc();
        Ok(lsn)
    }

    /// Ships raw frames with LSN > `after_lsn`; see [`read_after`].
    pub fn read_after(&self, after_lsn: u64, max_bytes: usize) -> Result<WalSegment> {
        read_after(&self.path, after_lsn, max_bytes)
    }

    fn write_frame(&self, inner: &mut WalInner, payload: &[u8]) -> Result<()> {
        let frame = frame_bytes(payload);
        inner.file.write_all(&frame)?;
        inner.next_lsn += 1;
        inner.bytes += frame.len() as u64;
        self.metrics.appends.inc();
        self.metrics.bytes.add(frame.len() as u64);
        Ok(())
    }
}

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HDR + payload.len());
    frame.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Fsyncs a directory so a just-created or just-renamed entry survives
/// power loss. A no-op on platforms where directories cannot be synced.
pub fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(d) => {
            d.sync_all().ok();
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pagestore-wal-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn state(n: u64) -> CommitState {
        CommitState {
            tables: vec![("t".into(), n)],
            blob: format!("blob{n}").into_bytes(),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        let img = Box::new([7u8; PAGE_SIZE]);
        wal.append_image("t.tbl", 3, &img).unwrap();
        // A mostly-empty page: its trailing zeros are elided on disk and
        // zero-filled back on replay.
        let mut sparse = Box::new([0u8; PAGE_SIZE]);
        sparse[..3].copy_from_slice(&[9, 8, 7]);
        let before = wal.size_bytes();
        wal.append_image("t.tbl", 4, &sparse).unwrap();
        assert!(
            wal.size_bytes() - before < 100,
            "sparse image must be stored compressed"
        );
        wal.append_commit(&state(5)).unwrap();
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.torn_bytes, 0);
        assert_eq!(scanned.records.len(), 4);
        match &scanned.records[2].1 {
            Record::PageImage { image, .. } => assert_eq!(**image, *sparse),
            r => panic!("unexpected record {r:?}"),
        }
        assert!(matches!(scanned.records[0].1, Record::Checkpoint(_)));
        match &scanned.records[1].1 {
            Record::PageImage { file, pid, image } => {
                assert_eq!(file, "t.tbl");
                assert_eq!(*pid, 3);
                assert_eq!(image[0], 7);
            }
            r => panic!("unexpected record {r:?}"),
        }
        match &scanned.records[3].1 {
            Record::Commit(s) => assert_eq!(*s, state(5)),
            r => panic!("unexpected record {r:?}"),
        }
        // LSNs are dense and increasing.
        let lsns: Vec<u64> = scanned.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = tmpdir("torn");
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        wal.append_commit(&state(1)).unwrap();
        wal.append_commit(&state(2)).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Truncate mid-record: the last record is dropped, earlier ones
        // survive.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 2);
        assert!(scanned.torn_bytes > 0);
        // Garble a byte of the last surviving record: CRC catches it.
        let mut garbled = full.clone();
        let n = garbled.len();
        garbled[n - 3] ^= 0xFF;
        std::fs::write(&path, &garbled).unwrap();
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_log() {
        let dir = tmpdir("ckpt");
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        let img = Box::new([1u8; PAGE_SIZE]);
        for pid in 0..20 {
            wal.append_image("t.tbl", pid, &img).unwrap();
        }
        wal.append_commit(&state(9)).unwrap();
        let before = wal.size_bytes();
        let lsn = wal.checkpoint(&state(9)).unwrap();
        assert!(wal.size_bytes() < before);
        assert_eq!(wal.last_checkpoint_lsn(), lsn);
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.records.len(), 1);
        match &scanned.records[0].1 {
            Record::Checkpoint(s) => assert_eq!(*s, state(9)),
            r => panic!("unexpected record {r:?}"),
        }
        // Appends continue with increasing LSNs after the rewrite.
        let l2 = wal.append_commit(&state(10)).unwrap();
        assert!(l2 > lsn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_lsns() {
        let dir = tmpdir("reopen");
        let last = {
            let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
            wal.append_commit(&state(1)).unwrap()
        };
        let wal = Wal::open(&dir, false, 8).unwrap();
        assert_eq!(wal.next_lsn(), last + 1);
        assert_eq!(wal.last_checkpoint_lsn(), 1);
        let l = wal.append_commit(&state(2)).unwrap();
        assert_eq!(l, last + 1);
        let scanned = scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scanned.records.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_after_ships_exact_frames() {
        let dir = tmpdir("ship");
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        let img = Box::new([5u8; PAGE_SIZE]);
        wal.append_image("t.tbl", 0, &img).unwrap();
        wal.append_image("t.tbl", 1, &img).unwrap();
        wal.append_commit(&state(2)).unwrap();
        // Cursor 0 ships the whole log, byte-identical to the file.
        let seg = wal.read_after(0, usize::MAX).unwrap();
        assert!(!seg.restart);
        assert_eq!(seg.first_lsn, 1);
        assert_eq!(seg.last_lsn, 4);
        assert_eq!(seg.log_start_lsn, 1);
        assert_eq!(seg.log_end_lsn, 4);
        assert_eq!(seg.frames, std::fs::read(dir.join(WAL_FILE)).unwrap());
        // A mid-log cursor ships only the tail; appending the shipped
        // frames to a copy of the already-consumed prefix reproduces the
        // file, which is exactly what a tailing replica does.
        let seg2 = wal.read_after(2, usize::MAX).unwrap();
        assert_eq!(seg2.first_lsn, 3);
        assert_eq!(seg2.last_lsn, 4);
        let consumed = wal.read_after(0, usize::MAX).unwrap().frames
            [..seg.frames.len() - seg2.frames.len()]
            .to_vec();
        let mut rebuilt = consumed;
        rebuilt.extend_from_slice(&seg2.frames);
        assert_eq!(rebuilt, seg.frames);
        // A caught-up cursor ships nothing.
        let seg3 = wal.read_after(4, usize::MAX).unwrap();
        assert!(seg3.frames.is_empty());
        assert_eq!(seg3.first_lsn, 0);
        assert_eq!(seg3.log_end_lsn, 4);
        assert!(!seg3.restart);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_after_respects_max_bytes_with_progress() {
        let dir = tmpdir("ship-max");
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        let img = Box::new([1u8; PAGE_SIZE]);
        for pid in 0..8 {
            wal.append_image("t.tbl", pid, &img).unwrap();
        }
        // A cap smaller than one frame still ships one frame (progress),
        // and a multi-frame cap stops once the budget is crossed.
        let one = wal.read_after(0, 1).unwrap();
        assert_eq!(one.first_lsn, one.last_lsn);
        assert_eq!(one.first_lsn, 1);
        let some = wal.read_after(0, PAGE_SIZE * 3).unwrap();
        assert!(some.last_lsn > some.first_lsn);
        assert!(some.last_lsn < some.log_end_lsn);
        // Tailing in bounded steps eventually reaches the horizon.
        let mut cursor = 0;
        let mut shipped = Vec::new();
        loop {
            let seg = wal.read_after(cursor, PAGE_SIZE * 2).unwrap();
            if seg.frames.is_empty() {
                break;
            }
            shipped.extend_from_slice(&seg.frames);
            cursor = seg.last_lsn;
        }
        assert_eq!(shipped, std::fs::read(dir.join(WAL_FILE)).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_after_flags_restart_past_checkpoint() {
        let dir = tmpdir("ship-restart");
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        let img = Box::new([1u8; PAGE_SIZE]);
        for pid in 0..4 {
            wal.append_image("t.tbl", pid, &img).unwrap();
        }
        wal.append_commit(&state(4)).unwrap();
        let ckpt = wal.checkpoint(&state(4)).unwrap();
        // Cursors at or after ckpt-1 can still tail: the next record they
        // need (the checkpoint itself, or later) is in the log.
        let ok = wal.read_after(ckpt - 1, usize::MAX).unwrap();
        assert!(!ok.restart);
        assert_eq!(ok.first_lsn, ckpt);
        // An older cursor points at truncated history: restart.
        let stale = wal.read_after(1, usize::MAX).unwrap();
        assert!(stale.restart);
        assert_eq!(stale.log_start_lsn, ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_after_missing_or_torn_log() {
        let dir = tmpdir("ship-torn");
        // Missing file: empty segment, no restart.
        let seg = read_after(&dir.join(WAL_FILE), 0, usize::MAX).unwrap();
        assert!(seg.frames.is_empty());
        assert_eq!(seg.log_end_lsn, 0);
        assert!(!seg.restart);
        // A torn tail is excluded from shipping, like recovery excludes
        // it from replay.
        let wal = Wal::create(&dir, &state(0), false, 8).unwrap();
        wal.append_commit(&state(1)).unwrap();
        wal.append_commit(&state(2)).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let seg = read_after(&path, 0, usize::MAX).unwrap();
        assert_eq!(seg.last_lsn, 2);
        assert_eq!(seg.log_end_lsn, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = tmpdir("group");
        let before = obs::global().snapshot();
        let wal = Wal::create(&dir, &state(0), true, 4).unwrap();
        for i in 0..8 {
            wal.append_commit(&state(i)).unwrap();
        }
        let d = obs::global().snapshot().delta(&before);
        let fsyncs = d.counters.get("wal.fsyncs").copied().unwrap_or(0);
        // 1 for the initial checkpoint + 2 for 8 commits at cadence 4.
        // Other tests may add more; assert the cadence upper bound holds
        // for this wal by checking commits outnumber fsyncs.
        let commits = d.counters.get("wal.commits").copied().unwrap_or(0);
        assert!(commits >= 8);
        assert!(fsyncs >= 3, "group commit must still fsync periodically");
        std::fs::remove_dir_all(&dir).ok();
    }
}
