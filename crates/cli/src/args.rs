//! Command-line parsing (no external dependencies).

use std::path::PathBuf;

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  segdiff generate --csv FILE --days N [--sensor K] [--seed S] [--raw]
  segdiff ingest   --index DIR --csv FILE [--epsilon E] [--window-hours H] [--no-smooth]
  segdiff query    --index DIR --kind drop|jump --v V --t-hours H
                   [--plan scan|index] [--refine FILE] [--limit N] [--trace]
                   [--all-sensors] [--threads N]
  segdiff stats    --index DIR [--json] [--series]
  segdiff recover  --index DIR [--json]
  segdiff metrics  --index DIR [--json]
  segdiff sql      --index DIR \"SELECT ...\"
  segdiff serve    --index DIR [--port P] [--threads N] [--queue-depth Q]
                   [--all-sensors] [--json] [--sample-ms MS] [--slow-ms MS]
                   [--alert-rules FILE]
  segdiff loadgen  --url http://HOST:PORT [--concurrency N] [--duration-secs S]
                   [--kind drop|jump] [--v V] [--t-hours H] [--guard FILE]
  segdiff alerts   --url http://HOST:PORT [--json]
  segdiff top      --url http://HOST:PORT [--interval-ms MS] [--iterations N]

environment:
  SEGDIFF_LOG=off|error|warn|info|debug   diagnostic verbosity (default warn)";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Produce synthetic CAD data as CSV.
    Generate {
        /// Output CSV path.
        csv: PathBuf,
        /// Days of data.
        days: u32,
        /// Sensor position (0-24).
        sensor: u32,
        /// RNG seed.
        seed: u64,
        /// Skip the robust smoother (emit raw data with anomalies).
        raw: bool,
    },
    /// Create-or-resume an index from a CSV.
    Ingest {
        /// Index directory.
        index: PathBuf,
        /// Input CSV path.
        csv: PathBuf,
        /// Error tolerance (used only on creation).
        epsilon: f64,
        /// Window in hours (used only on creation).
        window_hours: f64,
        /// Skip smoothing before ingest.
        no_smooth: bool,
    },
    /// Search an index.
    Query {
        /// Index directory.
        index: PathBuf,
        /// "drop" or "jump".
        kind: String,
        /// Threshold V (negative for drops).
        v: f64,
        /// Threshold T in hours.
        t_hours: f64,
        /// "scan" or "index".
        plan: String,
        /// Optional raw CSV to refine against.
        refine: Option<PathBuf>,
        /// Max results to print.
        limit: usize,
        /// Print an EXPLAIN ANALYZE-style per-phase trace.
        trace: bool,
        /// Treat `--index` as a transect root and fan out over every
        /// `sensor-<k>/` index in parallel.
        all_sensors: bool,
        /// Worker threads for the `--all-sensors` fan-out.
        threads: usize,
    },
    /// Print index statistics.
    Stats {
        /// Index directory.
        index: PathBuf,
        /// Emit machine-readable JSON instead of text.
        json: bool,
        /// Also run the metric sampler over a probe query and print the
        /// derived time series (rates, quantiles, gauges).
        series: bool,
    },
    /// Open an index (running WAL recovery if needed), verify its
    /// consistency, and report what recovery did — an fsck for indexes.
    Recover {
        /// Index directory.
        index: PathBuf,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// Print the telemetry registry after probing the index.
    Metrics {
        /// Index directory.
        index: PathBuf,
        /// Emit line-delimited JSON instead of text.
        json: bool,
    },
    /// Execute a SQL statement against the index's database.
    Sql {
        /// Index directory.
        index: PathBuf,
        /// The statement.
        statement: String,
    },
    /// Run the HTTP query service over an index.
    Serve {
        /// Index directory.
        index: PathBuf,
        /// TCP port (0 picks an ephemeral port).
        port: u16,
        /// Worker threads.
        threads: usize,
        /// Bounded accept-queue depth (503s beyond it).
        queue_depth: usize,
        /// Serve a transect root (every `sensor-<k>/` index) instead of
        /// a single-sensor index.
        all_sensors: bool,
        /// Emit the final telemetry snapshot as JSON lines.
        json: bool,
        /// Self-observation sampling period in milliseconds.
        sample_ms: u64,
        /// Requests at least this slow are tail-sampled into the
        /// slow-trace ring.
        slow_ms: u64,
        /// Alert-rules TOML file (defaults to the built-in rules, which
        /// mirror `ci/alert-rules.toml`).
        alert_rules: Option<PathBuf>,
    },
    /// Drive a running server with a closed-loop load generator.
    Loadgen {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Concurrent closed-loop workers.
        concurrency: usize,
        /// Run duration in seconds.
        duration_secs: f64,
        /// "drop" or "jump".
        kind: String,
        /// Threshold V for the query mix.
        v: f64,
        /// Threshold T in hours for the query mix.
        t_hours: f64,
        /// p99 regression-guard file (JSON with `max_p99_ms`).
        guard: Option<PathBuf>,
    },
    /// Show a running server's standing alert rules and fired alerts.
    Alerts {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Print the server's raw `/alerts` JSON instead of text.
        json: bool,
    },
    /// Live terminal view of a running server's self-observed telemetry.
    Top {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Refresh interval in milliseconds.
        interval_ms: u64,
        /// Frames to render before exiting (0 = until interrupted).
        iterations: u64,
    },
}

fn take_value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    argv.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let sub = argv.first().ok_or("missing subcommand")?.as_str();
    let mut csv: Option<PathBuf> = None;
    let mut index: Option<PathBuf> = None;
    let mut days: Option<u32> = None;
    let mut sensor = 12u32;
    let mut seed = 42u64;
    let mut raw = false;
    let mut epsilon = 0.2f64;
    let mut window_hours = 8.0f64;
    let mut no_smooth = false;
    let mut kind: Option<String> = None;
    let mut v: Option<f64> = None;
    let mut t_hours: Option<f64> = None;
    let mut plan = "scan".to_string();
    let mut refine: Option<PathBuf> = None;
    let mut limit = 50usize;
    let mut statement: Option<String> = None;
    let mut trace = false;
    let mut all_sensors = false;
    let mut json = false;
    let mut port = 7878u16;
    let mut threads = 8usize;
    let mut queue_depth = 64usize;
    let mut url: Option<String> = None;
    let mut concurrency = 8usize;
    let mut duration_secs = 5.0f64;
    let mut guard: Option<PathBuf> = None;
    let mut series = false;
    let mut sample_ms = 500u64;
    let mut slow_ms = 25u64;
    let mut alert_rules: Option<PathBuf> = None;
    let mut interval_ms = 1000u64;
    let mut iterations = 0u64;

    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => csv = Some(PathBuf::from(take_value(argv, &mut i, "--csv")?)),
            "--index" => index = Some(PathBuf::from(take_value(argv, &mut i, "--index")?)),
            "--days" => {
                days = Some(
                    take_value(argv, &mut i, "--days")?
                        .parse()
                        .map_err(|_| "--days must be an integer")?,
                )
            }
            "--sensor" => {
                sensor = take_value(argv, &mut i, "--sensor")?
                    .parse()
                    .map_err(|_| "--sensor must be an integer")?
            }
            "--seed" => {
                seed = take_value(argv, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?
            }
            "--raw" => raw = true,
            "--epsilon" => {
                epsilon = take_value(argv, &mut i, "--epsilon")?
                    .parse()
                    .map_err(|_| "--epsilon must be a number")?
            }
            "--window-hours" => {
                window_hours = take_value(argv, &mut i, "--window-hours")?
                    .parse()
                    .map_err(|_| "--window-hours must be a number")?
            }
            "--no-smooth" => no_smooth = true,
            "--kind" => kind = Some(take_value(argv, &mut i, "--kind")?.to_string()),
            "--v" => {
                v = Some(
                    take_value(argv, &mut i, "--v")?
                        .parse()
                        .map_err(|_| "--v must be a number")?,
                )
            }
            "--t-hours" => {
                t_hours = Some(
                    take_value(argv, &mut i, "--t-hours")?
                        .parse()
                        .map_err(|_| "--t-hours must be a number")?,
                )
            }
            "--plan" => plan = take_value(argv, &mut i, "--plan")?.to_string(),
            "--refine" => refine = Some(PathBuf::from(take_value(argv, &mut i, "--refine")?)),
            "--limit" => {
                limit = take_value(argv, &mut i, "--limit")?
                    .parse()
                    .map_err(|_| "--limit must be an integer")?
            }
            "--trace" => trace = true,
            "--all-sensors" => all_sensors = true,
            "--json" => json = true,
            "--port" => {
                port = take_value(argv, &mut i, "--port")?
                    .parse()
                    .map_err(|_| "--port must be an integer")?
            }
            "--threads" => {
                threads = take_value(argv, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer")?
            }
            "--queue-depth" => {
                queue_depth = take_value(argv, &mut i, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth must be an integer")?
            }
            "--url" => url = Some(take_value(argv, &mut i, "--url")?.to_string()),
            "--concurrency" => {
                concurrency = take_value(argv, &mut i, "--concurrency")?
                    .parse()
                    .map_err(|_| "--concurrency must be an integer")?
            }
            "--duration-secs" => {
                duration_secs = take_value(argv, &mut i, "--duration-secs")?
                    .parse()
                    .map_err(|_| "--duration-secs must be a number")?
            }
            "--guard" => guard = Some(PathBuf::from(take_value(argv, &mut i, "--guard")?)),
            "--series" => series = true,
            "--sample-ms" => {
                sample_ms = take_value(argv, &mut i, "--sample-ms")?
                    .parse()
                    .map_err(|_| "--sample-ms must be an integer")?
            }
            "--slow-ms" => {
                slow_ms = take_value(argv, &mut i, "--slow-ms")?
                    .parse()
                    .map_err(|_| "--slow-ms must be an integer")?
            }
            "--alert-rules" => {
                alert_rules = Some(PathBuf::from(take_value(argv, &mut i, "--alert-rules")?))
            }
            "--interval-ms" => {
                interval_ms = take_value(argv, &mut i, "--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms must be an integer")?
            }
            "--iterations" => {
                iterations = take_value(argv, &mut i, "--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be an integer")?
            }
            other if !other.starts_with("--") && sub == "sql" && statement.is_none() => {
                statement = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }

    match sub {
        "generate" => Ok(Command::Generate {
            csv: csv.ok_or("generate needs --csv")?,
            days: days.ok_or("generate needs --days")?,
            sensor,
            seed,
            raw,
        }),
        "ingest" => Ok(Command::Ingest {
            index: index.ok_or("ingest needs --index")?,
            csv: csv.ok_or("ingest needs --csv")?,
            epsilon,
            window_hours,
            no_smooth,
        }),
        "query" => {
            let kind = kind.ok_or("query needs --kind drop|jump")?;
            if kind != "drop" && kind != "jump" {
                return Err("--kind must be drop or jump".into());
            }
            if plan != "scan" && plan != "index" {
                return Err("--plan must be scan or index".into());
            }
            if all_sensors && refine.is_some() {
                return Err("--refine needs a single sensor's raw CSV; \
                            it cannot be combined with --all-sensors"
                    .into());
            }
            if all_sensors && trace {
                return Err("--trace is per-sensor; \
                            it cannot be combined with --all-sensors"
                    .into());
            }
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(Command::Query {
                index: index.ok_or("query needs --index")?,
                kind,
                v: v.ok_or("query needs --v")?,
                t_hours: t_hours.ok_or("query needs --t-hours")?,
                plan,
                refine,
                limit,
                trace,
                all_sensors,
                threads,
            })
        }
        "stats" => Ok(Command::Stats {
            index: index.ok_or("stats needs --index")?,
            json,
            series,
        }),
        "recover" => Ok(Command::Recover {
            index: index.ok_or("recover needs --index")?,
            json,
        }),
        "metrics" => Ok(Command::Metrics {
            index: index.ok_or("metrics needs --index")?,
            json,
        }),
        "sql" => Ok(Command::Sql {
            index: index.ok_or("sql needs --index")?,
            statement: statement.ok_or("sql needs a statement argument")?,
        }),
        "serve" => {
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            if sample_ms == 0 {
                return Err("--sample-ms must be at least 1".into());
            }
            Ok(Command::Serve {
                index: index.ok_or("serve needs --index")?,
                port,
                threads,
                queue_depth: queue_depth.max(1),
                all_sensors,
                json,
                sample_ms,
                slow_ms,
                alert_rules,
            })
        }
        "loadgen" => {
            let kind = kind.unwrap_or_else(|| "drop".to_string());
            if kind != "drop" && kind != "jump" {
                return Err("--kind must be drop or jump".into());
            }
            if concurrency == 0 {
                return Err("--concurrency must be at least 1".into());
            }
            if !(duration_secs.is_finite() && duration_secs > 0.0) {
                return Err("--duration-secs must be positive".into());
            }
            let v = v.unwrap_or(if kind == "drop" { -1.0 } else { 1.0 });
            if kind == "drop" && v >= 0.0 {
                return Err("--v must be negative for drop queries".into());
            }
            if kind == "jump" && v <= 0.0 {
                return Err("--v must be positive for jump queries".into());
            }
            Ok(Command::Loadgen {
                url: url.ok_or("loadgen needs --url")?,
                concurrency,
                duration_secs,
                kind,
                v,
                t_hours: t_hours.unwrap_or(1.0),
                guard,
            })
        }
        "alerts" => Ok(Command::Alerts {
            url: url.ok_or("alerts needs --url")?,
            json,
        }),
        "top" => {
            if interval_ms == 0 {
                return Err("--interval-ms must be at least 1".into());
            }
            Ok(Command::Top {
                url: url.ok_or("top needs --url")?,
                interval_ms,
                iterations,
            })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let c = parse(&argv("generate --csv out.csv --days 30 --sensor 3 --raw")).unwrap();
        assert_eq!(
            c,
            Command::Generate {
                csv: "out.csv".into(),
                days: 30,
                sensor: 3,
                seed: 42,
                raw: true,
            }
        );
    }

    #[test]
    fn parses_query_with_defaults() {
        let c = parse(&argv("query --index d --kind drop --v -3 --t-hours 1")).unwrap();
        match c {
            Command::Query {
                plan,
                limit,
                refine,
                trace,
                all_sensors,
                threads,
                ..
            } => {
                assert_eq!(plan, "scan");
                assert_eq!(limit, 50);
                assert!(refine.is_none());
                assert!(!trace);
                assert!(!all_sensors);
                assert_eq!(threads, 8);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_all_sensors_query() {
        match parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --all-sensors --threads 4",
        ))
        .unwrap()
        {
            Command::Query {
                all_sensors,
                threads,
                ..
            } => {
                assert!(all_sensors);
                assert_eq!(threads, 4);
            }
            _ => panic!(),
        }
        // Refinement needs one sensor's raw CSV; rejected with the fan-out.
        assert!(parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --all-sensors --refine raw.csv"
        ))
        .is_err());
        assert!(parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --threads 0"
        ))
        .is_err());
        match parse(&argv("serve --index d --all-sensors")).unwrap() {
            Command::Serve { all_sensors, .. } => assert!(all_sensors),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_trace_and_json_flags() {
        match parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --trace",
        ))
        .unwrap()
        {
            Command::Query { trace, .. } => assert!(trace),
            _ => panic!(),
        }
        match parse(&argv("stats --index d --json")).unwrap() {
            Command::Stats { json, .. } => assert!(json),
            _ => panic!(),
        }
        match parse(&argv("stats --index d")).unwrap() {
            Command::Stats { json, .. } => assert!(!json),
            _ => panic!(),
        }
        match parse(&argv("metrics --index d --json")).unwrap() {
            Command::Metrics { json, .. } => assert!(json),
            _ => panic!(),
        }
        assert!(parse(&argv("metrics")).is_err());
    }

    #[test]
    fn parses_recover() {
        assert_eq!(
            parse(&argv("recover --index d --json")).unwrap(),
            Command::Recover {
                index: "d".into(),
                json: true,
            }
        );
        match parse(&argv("recover --index d")).unwrap() {
            Command::Recover { json, .. } => assert!(!json),
            _ => panic!(),
        }
        assert!(parse(&argv("recover")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("generate --days 3")).is_err());
        assert!(parse(&argv("query --index d --kind sideways --v -3 --t-hours 1")).is_err());
        assert!(parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --plan turbo"
        ))
        .is_err());
        assert!(parse(&argv("ingest --index d --csv f --epsilon nope")).is_err());
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse(&argv("serve --index d")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                index: "d".into(),
                port: 7878,
                threads: 8,
                queue_depth: 64,
                all_sensors: false,
                json: false,
                sample_ms: 500,
                slow_ms: 25,
                alert_rules: None,
            }
        );
        let c = parse(&argv(
            "serve --index d --port 0 --threads 2 --queue-depth 4 --json \
             --sample-ms 100 --slow-ms 5 --alert-rules ci/alert-rules.toml",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                index: "d".into(),
                port: 0,
                threads: 2,
                queue_depth: 4,
                all_sensors: false,
                json: true,
                sample_ms: 100,
                slow_ms: 5,
                alert_rules: Some("ci/alert-rules.toml".into()),
            }
        );
        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("serve --index d --threads 0")).is_err());
        assert!(parse(&argv("serve --index d --sample-ms 0")).is_err());
    }

    #[test]
    fn parses_stats_series_flag() {
        match parse(&argv("stats --index d --series --json")).unwrap() {
            Command::Stats { json, series, .. } => {
                assert!(json);
                assert!(series);
            }
            _ => panic!(),
        }
        match parse(&argv("stats --index d")).unwrap() {
            Command::Stats { series, .. } => assert!(!series),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_alerts_and_top() {
        assert_eq!(
            parse(&argv("alerts --url http://h:1 --json")).unwrap(),
            Command::Alerts {
                url: "http://h:1".into(),
                json: true,
            }
        );
        assert!(parse(&argv("alerts")).is_err());
        assert_eq!(
            parse(&argv("top --url http://h:1")).unwrap(),
            Command::Top {
                url: "http://h:1".into(),
                interval_ms: 1000,
                iterations: 0,
            }
        );
        assert_eq!(
            parse(&argv(
                "top --url http://h:1 --interval-ms 50 --iterations 3"
            ))
            .unwrap(),
            Command::Top {
                url: "http://h:1".into(),
                interval_ms: 50,
                iterations: 3,
            }
        );
        assert!(parse(&argv("top")).is_err());
        assert!(parse(&argv("top --url u --interval-ms 0")).is_err());
    }

    #[test]
    fn parses_loadgen_with_defaults() {
        let c = parse(&argv("loadgen --url http://127.0.0.1:7878")).unwrap();
        assert_eq!(
            c,
            Command::Loadgen {
                url: "http://127.0.0.1:7878".into(),
                concurrency: 8,
                duration_secs: 5.0,
                kind: "drop".into(),
                v: -1.0,
                t_hours: 1.0,
                guard: None,
            }
        );
        let c = parse(&argv(
            "loadgen --url http://h:1 --concurrency 2 --duration-secs 0.5 \
             --kind jump --v 2 --t-hours 0.5 --guard ci/serving-guard.json",
        ))
        .unwrap();
        match c {
            Command::Loadgen { kind, v, guard, .. } => {
                assert_eq!(kind, "jump");
                assert_eq!(v, 2.0);
                assert_eq!(guard, Some("ci/serving-guard.json".into()));
            }
            _ => panic!(),
        }
        assert!(parse(&argv("loadgen")).is_err());
        assert!(parse(&argv("loadgen --url u --kind drop --v 3")).is_err());
        assert!(parse(&argv("loadgen --url u --duration-secs -1")).is_err());
    }

    #[test]
    fn parses_sql_statement() {
        let args = vec![
            "sql".to_string(),
            "--index".to_string(),
            "d".to_string(),
            "SELECT COUNT(*) FROM drop1".to_string(),
        ];
        let c = parse(&args).unwrap();
        match c {
            Command::Sql { statement, .. } => {
                assert!(statement.starts_with("SELECT"));
            }
            _ => panic!(),
        }
    }
}
