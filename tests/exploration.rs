//! The full exploratory loop over a CAD winter: query → refine → analyze.
//! Checks the domain-level expectations the paper motivates: CAD events
//! concentrate in the early morning and in the cold season, and refined
//! depths respect the query threshold.

use segdiff_repro::prelude::*;
use segdiff_repro::segdiff::analysis::{ascii_histogram, depth_stats, merge_episodes, summarize};
use segdiff_repro::segdiff::refine::refine_results;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-explore-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn cad_events_cluster_in_early_morning() {
    let days = 60u32;
    let cfg = CadTransectConfig::default().with_days(days).clean();
    let series = generate_sensor(&cfg, 12, 8);
    let dir = tmpdir("morning");
    let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
    idx.ingest_series(&series).unwrap();
    idx.finish().unwrap();

    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    assert!(!results.is_empty());

    let summary = summarize(&results, days as f64);
    assert!(summary.episodes >= 5, "winter month must have episodes");
    assert!(summary.episodes <= summary.periods);
    // The generator plants events between 03:00 and 07:00; allowing for
    // drop durations and segment extents, the 02:00-08:00 bins must hold
    // the majority of episode starts.
    let morning: u32 = summary.hour_histogram[2..8].iter().sum();
    let total: u32 = summary.hour_histogram.iter().sum();
    assert!(
        morning * 2 > total,
        "morning {morning} of {total}: {}",
        ascii_histogram(&summary.hour_histogram, |h| format!("{h:02}h"))
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn refined_depths_respect_threshold_and_duration() {
    let cfg = CadTransectConfig::default().with_days(30).clean();
    let series = generate_sensor(&cfg, 12, 9);
    let dir = tmpdir("depths");
    let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
    idx.ingest_series(&series).unwrap();
    idx.finish().unwrap();

    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    let refined = refine_results(&series, &results, &region, 24);
    let stats = depth_stats(&refined).expect("a winter month has exact hits");
    assert!(stats.count > 0);
    assert!(stats.mean <= -3.0, "mean depth {}", stats.mean);
    assert!(stats.extreme <= stats.median && stats.median <= -3.0);
    assert!(stats.mean_duration > 0.0 && stats.mean_duration <= 1.0 * HOUR + 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn episodes_are_far_fewer_than_periods() {
    // Many overlapping segment pairs describe one physical event; episode
    // merging is what makes the output readable for a biologist.
    let cfg = CadTransectConfig::default().with_days(20).clean();
    let series = generate_sensor(&cfg, 12, 10);
    let dir = tmpdir("episodes");
    let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
    idx.ingest_series(&series).unwrap();
    idx.finish().unwrap();
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    let episodes = merge_episodes(&results);
    assert!(!episodes.is_empty());
    assert!(
        episodes.len() * 2 <= results.len(),
        "{} episodes from {} periods",
        episodes.len(),
        results.len()
    );
    // Episodes are disjoint and ordered.
    for w in episodes.windows(2) {
        assert!(w[0].1 < w[1].0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seasonal_contrast_summer_vs_winter() {
    // Winter (days 0-60 from Dec 1) vs summer (days 180-240). At -3 degC/h
    // ordinary summer evening cooling already qualifies (the summer diurnal
    // amplitude is 8 degC), so the seasonal CAD contrast shows at *deep*
    // thresholds that only drainage events can reach.
    let cfg = CadTransectConfig::default().with_days(240).clean();
    let series = generate_sensor(&cfg, 12, 11);
    let region = QueryRegion::drop(1.0 * HOUR, -5.0);
    let winter = series.sub_range(0.0, 60.0 * DAY);
    let summer = series.sub_range(180.0 * DAY, 240.0 * DAY);
    let count = |s: &TimeSeries, tag: &str| -> usize {
        let dir = tmpdir(tag);
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(s).unwrap();
        idx.finish().unwrap();
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let n = merge_episodes(&results).len();
        std::fs::remove_dir_all(&dir).ok();
        n
    };
    let w = count(&winter, "winter");
    let s = count(&summer, "summer");
    assert!(
        w >= 3 * s.max(1) || (s == 0 && w >= 3),
        "winter {w} vs summer {s}"
    );
}
