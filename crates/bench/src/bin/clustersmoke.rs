//! CI gate for the sharded serving tier (DESIGN.md §5i).
//!
//! ```sh
//! cargo build --release -p segdiff-cli -p segdiff-bench
//! clustersmoke --segdiff target/release/segdiff \
//!     --guard ci/serving-guard.json --out /tmp/clustersmoke
//! ```
//!
//! Spawns 4 shard `segdiff serve` processes, a warm replica of shard 0,
//! and a `segdiff router`, then asserts scatter–gather byte identity,
//! the serving p99 guard, replica failover after a SIGKILL, and the
//! exact `unavailable_sensors` blast radius of a replica-less shard
//! dying. `--out DIR` collects every process log plus `summary.json`.

use segdiff_bench::clustersmoke::{run_clustersmoke, summary_json, write_summary, ClusterConfig};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: clustersmoke --segdiff PATH [--out DIR] [--guard FILE] \
     [--shards N] [--sensors N] [--days N] [--base-port P] \
     [--duration-secs N] [--health-interval-ms N]";

fn parse_args() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number\n{USAGE}"))
        };
        match a.as_str() {
            "--segdiff" => cfg.segdiff = PathBuf::from(it.next().expect("--segdiff PATH")),
            "--out" => cfg.out = Some(PathBuf::from(it.next().expect("--out DIR"))),
            "--guard" => cfg.guard = Some(PathBuf::from(it.next().expect("--guard FILE"))),
            "--shards" => cfg.shards = num("--shards") as usize,
            "--sensors" => cfg.sensors = num("--sensors") as u32,
            "--days" => cfg.days = num("--days") as u32,
            "--base-port" => cfg.base_port = num("--base-port") as u16,
            "--duration-secs" => cfg.duration = Duration::from_secs(num("--duration-secs")),
            "--health-interval-ms" => cfg.health_interval_ms = num("--health-interval-ms").max(1),
            other => panic!("unknown argument '{other}'\n{USAGE}"),
        }
    }
    assert!(cfg.shards >= 2, "need at least 2 shards\n{USAGE}");
    assert!(
        cfg.segdiff.exists(),
        "segdiff binary not found at {} (build with `cargo build --release -p segdiff-cli`)",
        cfg.segdiff.display()
    );
    cfg
}

fn main() {
    let cfg = parse_args();
    eprintln!(
        "clustersmoke: {} shards over {} sensors, router on port {}, segdiff = {}",
        cfg.shards,
        cfg.sensors,
        cfg.base_port,
        cfg.segdiff.display()
    );
    let outcome = match run_clustersmoke(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("clustersmoke: INFRA FAIL: {e}");
            std::process::exit(2);
        }
    };
    let summary = summary_json(&outcome);
    if let Some(dir) = &cfg.out {
        write_summary(dir, &summary).expect("write summary");
        eprintln!("clustersmoke: artifacts in {}", dir.display());
    }
    println!("{summary}");
    if outcome.failures.is_empty() {
        eprintln!(
            "clustersmoke: PASS ({} ok @ {:.1} qps, p99 {:.2} ms, failover {} ms)",
            outcome.ok, outcome.qps, outcome.p99_ms, outcome.failover_ms
        );
    } else {
        for failure in &outcome.failures {
            eprintln!("clustersmoke: FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
