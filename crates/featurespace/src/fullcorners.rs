//! The *un-reduced* four-corner representation, used by ablation studies.
//!
//! The paper's §4.3.1 shows that 1–3 corners suffice; this module keeps all
//! four corners and decides intersection geometrically, so experiments can
//! measure exactly what the corner reduction buys (space, scan cost) while
//! checking that both representations return identical results.

use crate::{FeaturePoint, Parallelogram, QueryRegion, SearchKind};
use segmentation::Segment;

/// All four (ε-shifted) corners of a pair's parallelogram, or `None` when
/// the shifted parallelogram cannot contain any drop (jump).
pub fn extract_full_corners(
    cd: &Segment,
    ab: &Segment,
    eps: f64,
    kind: SearchKind,
) -> Option<[FeaturePoint; 4]> {
    debug_assert!(eps >= 0.0);
    let para = Parallelogram::from_pair(cd, ab);
    let corners = para.corners();
    shift_and_prune(corners, eps, kind)
}

/// Four-corner representation of the degenerate self pair: the feature
/// segment `(0,0) -> (duration, Δv)` stored as a collapsed parallelogram.
pub fn extract_full_self_corners(
    seg: &Segment,
    eps: f64,
    kind: SearchKind,
) -> Option<[FeaturePoint; 4]> {
    let origin = FeaturePoint::new(0.0, 0.0);
    let far = FeaturePoint::new(seg.duration(), seg.delta_v());
    shift_and_prune([origin, origin, far, far], eps, kind)
}

fn shift_and_prune(
    corners: [FeaturePoint; 4],
    eps: f64,
    kind: SearchKind,
) -> Option<[FeaturePoint; 4]> {
    match kind {
        SearchKind::Drop => {
            let lowest = corners.iter().map(|p| p.dv).fold(f64::INFINITY, f64::min);
            (lowest - eps <= 0.0).then(|| corners.map(|p| p.shifted(-eps)))
        }
        SearchKind::Jump => {
            let highest = corners
                .iter()
                .map(|p| p.dv)
                .fold(f64::NEG_INFINITY, f64::max);
            (highest + eps > 0.0).then(|| corners.map(|p| p.shifted(eps)))
        }
    }
}

/// Exact intersection test between the convex polygon spanned by `corners`
/// (a possibly degenerate parallelogram, in the paper's `BC, BD, AD, AC`
/// order) and a query region.
///
/// The region `{Δt <= T, Δv <= V}` (drop) is the intersection of two half
/// planes, so the polygon is clipped against `Δt <= T` and the minimum
/// `Δv` of the clipped polygon — attained at a vertex — is compared with
/// `V`. Jump search mirrors this with the maximum.
pub fn full_corners_intersect(corners: &[FeaturePoint; 4], region: &QueryRegion) -> bool {
    // Clip the polygon against dt <= T (Sutherland-Hodgman, one plane).
    let mut clipped: Vec<FeaturePoint> = Vec::with_capacity(8);
    let n = corners.len();
    for i in 0..n {
        let a = corners[i];
        let b = corners[(i + 1) % n];
        let a_in = a.dt <= region.t;
        let b_in = b.dt <= region.t;
        if a_in {
            clipped.push(a);
        }
        if a_in != b_in {
            // The edge crosses dt = T; dt strictly differs between ends.
            let s = (region.t - a.dt) / (b.dt - a.dt);
            clipped.push(FeaturePoint::new(region.t, a.dv + s * (b.dv - a.dv)));
        }
    }
    if clipped.is_empty() {
        return false;
    }
    match region.kind {
        SearchKind::Drop => clipped.iter().any(|p| p.dv <= region.v),
        SearchKind::Jump => clipped.iter().any(|p| p.dv >= region.v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_boundary;

    fn pair() -> (Segment, Segment) {
        (
            Segment::new(0.0, 1.0, 10.0, 4.0),
            Segment::new(25.0, 6.0, 40.0, 2.0),
        )
    }

    #[test]
    fn full_corners_are_the_parallelogram() {
        let (cd, ab) = pair();
        let c = extract_full_corners(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
        let para = Parallelogram::from_pair(&cd, &ab);
        assert_eq!(c, para.corners());
    }

    #[test]
    fn epsilon_shift_applied() {
        let (cd, ab) = pair();
        let c0 = extract_full_corners(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
        let c1 = extract_full_corners(&cd, &ab, 0.5, SearchKind::Drop).unwrap();
        for (a, b) in c0.iter().zip(&c1) {
            assert_eq!(b.dt, a.dt);
            assert!((b.dv - (a.dv - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn prune_mirrors_reduced_form() {
        // A pair far above zero: no drop row in either representation.
        let cd = Segment::new(0.0, 0.0, 10.0, 1.0);
        let ab = Segment::new(20.0, 10.0, 30.0, 13.0);
        assert!(extract_full_corners(&cd, &ab, 0.0, SearchKind::Drop).is_none());
        assert!(extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).is_none());
        assert!(extract_full_corners(&cd, &ab, 0.0, SearchKind::Jump).is_some());
    }

    #[test]
    fn intersection_agrees_with_reduced_boundary() {
        // The central ablation claim: for a grid of regions, the 4-corner
        // geometric test and the reduced-corner boundary test agree.
        let pairs = [
            (
                Segment::new(0.0, 1.0, 10.0, 4.0),
                Segment::new(25.0, 6.0, 40.0, 2.0),
            ),
            (
                Segment::new(0.0, 5.0, 8.0, 3.0),
                Segment::new(8.0, 3.0, 30.0, -4.0),
            ),
            (
                Segment::new(0.0, -2.0, 12.0, 7.0),
                Segment::new(20.0, 1.0, 26.0, 9.0),
            ),
            (
                Segment::new(0.0, 4.0, 5.0, 4.5),
                Segment::new(9.0, 2.0, 19.0, 1.0),
            ),
        ];
        for (cd, ab) in &pairs {
            for kind in [SearchKind::Drop, SearchKind::Jump] {
                for ti in 1..=8 {
                    for vi in 1..=8 {
                        let t = ti as f64 * 6.0;
                        let v = vi as f64 * 1.5;
                        let region = match kind {
                            SearchKind::Drop => QueryRegion::drop(t, -v),
                            SearchKind::Jump => QueryRegion::jump(t, v),
                        };
                        let full = extract_full_corners(cd, ab, 0.0, kind)
                            .map(|c| full_corners_intersect(&c, &region))
                            .unwrap_or(false);
                        let reduced = extract_boundary(cd, ab, 0.0, kind)
                            .map(|b| b.intersects(&region))
                            .unwrap_or(false);
                        assert_eq!(
                            full, reduced,
                            "disagreement for {cd:?}/{ab:?} {kind:?} T={t} V={v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_self_pair() {
        let seg = Segment::new(0.0, 10.0, 3600.0, 5.0);
        let c = extract_full_self_corners(&seg, 0.0, SearchKind::Drop).unwrap();
        assert!(full_corners_intersect(&c, &QueryRegion::drop(3600.0, -3.0)));
        assert!(!full_corners_intersect(
            &c,
            &QueryRegion::drop(3600.0, -6.0)
        ));
        // Interior drop needs the clip: -3 within 1h fails on a 2h segment.
        let slow = Segment::new(0.0, 10.0, 7200.0, 5.0);
        let c = extract_full_self_corners(&slow, 0.0, SearchKind::Drop).unwrap();
        assert!(!full_corners_intersect(
            &c,
            &QueryRegion::drop(3600.0, -3.0)
        ));
        assert!(full_corners_intersect(&c, &QueryRegion::drop(5400.0, -3.0)));
    }
}
