//! Table 5 / Figure 10 counterpart: sequential-scan query time, SegDiff vs
//! the exhaustive baseline, across error tolerances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segdiff::QueryPlan;
use segdiff_bench::{build_exh, build_segdiff, default_series};
use sensorgen::HOUR;
use std::hint::black_box;
use std::time::Duration;

fn bench_scan(c: &mut Criterion) {
    let series = default_series(10, 1);
    let w = 8.0 * HOUR;
    let region = featurespace::QueryRegion::drop(1.0 * HOUR, -3.0);
    let base = std::env::temp_dir().join(format!("segdiff-bench-t5-{}", std::process::id()));

    let mut group = c.benchmark_group("table5/seq_scan");
    group.sample_size(20);
    for eps in [0.1, 0.2, 1.0] {
        let seg = build_segdiff(
            &series,
            eps,
            w,
            8192,
            &base.join(format!("seg{eps}")),
            false,
        );
        group.bench_with_input(BenchmarkId::new("segdiff", eps), &eps, |b, _| {
            b.iter(|| {
                black_box(
                    seg.index
                        .query(&region, QueryPlan::SeqScan)
                        .unwrap()
                        .0
                        .len(),
                )
            })
        });
    }
    let exh = build_exh(&series, w, 8192, &base.join("exh"), false);
    group.bench_function("exh", |b| {
        b.iter(|| {
            black_box(
                exh.index
                    .query(&region, QueryPlan::SeqScan)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_scan
}
criterion_main!(benches);
