//! Offline shim for the `rand` API surface used by this workspace.
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator — statistically solid
//! for simulation workloads, *not* cryptographic), the [`Rng`] core trait,
//! the [`RngExt`] extension trait with `random`/`random_range`, and
//! [`SeedableRng`]. Deterministic for a given seed, like the real crate.

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers/bool).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable from their standard distribution.
pub trait Random: Sized {
    /// Draws one sample from `rng`.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::random_from(rng);
        self.start + u * (self.end - self.start)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes BigCrush-level statistics for the moment-matching and
    /// uniformity checks this workspace performs; one `u64` of state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            // Discard one word so seeds 0 and 1 do not share a prefix.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(5u32..=9);
            assert!((5..=9).contains(&x));
            let y: usize = rng.random_range(0usize..3);
            assert!(y < 3);
            let z: f64 = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
