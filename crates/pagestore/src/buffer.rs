//! The shared buffer pool: clock eviction plus I/O accounting.

use crate::error::Result;
use crate::page::PageBuf;
use crate::pagefile::{FileId, PageFile, PageId};
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cumulative buffer-pool counters.
///
/// `hits`/`misses` count logical page requests; `physical_reads`/
/// `physical_writes` count pages actually moved to or from the backing
/// files. The experiment harness uses *deltas* of these counters around a
/// query as its I/O cost model (the substitute for the paper's cold-cache
/// wall-clock numbers, which depended on MySQL and the OS page cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Logical requests served from the pool.
    pub hits: u64,
    /// Logical requests that had to read from the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Pages read from backing files.
    pub physical_reads: u64,
    /// Pages written to backing files.
    pub physical_writes: u64,
}

impl PoolStats {
    /// Component-wise difference `self - earlier` (for per-query deltas).
    ///
    /// Saturates at zero: if a counter went backwards between the two
    /// snapshots (a [`BufferPool::reset_stats`] in between), the delta is
    /// clamped to 0 instead of wrapping to ~`u64::MAX`.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
        }
    }

    /// Component-wise sum (for merging per-thread or per-phase deltas).
    pub fn merged(&self, other: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            physical_reads: self.physical_reads + other.physical_reads,
            physical_writes: self.physical_writes + other.physical_writes,
        }
    }
}

/// Global-registry handles mirroring [`PoolStats`]. Every increment of
/// the per-pool counters also lands here, so `segdiff metrics` and the
/// bench harness see pool activity without holding a pool reference.
struct PoolMetrics {
    hits: std::sync::Arc<obs::Counter>,
    misses: std::sync::Arc<obs::Counter>,
    evictions: std::sync::Arc<obs::Counter>,
    physical_reads: std::sync::Arc<obs::Counter>,
    physical_writes: std::sync::Arc<obs::Counter>,
}

impl PoolMetrics {
    fn new() -> Self {
        let r = obs::global();
        PoolMetrics {
            hits: r.counter("pool.hits"),
            misses: r.counter("pool.misses"),
            evictions: r.counter("pool.evictions"),
            physical_reads: r.counter("pool.physical_reads"),
            physical_writes: r.counter("pool.physical_writes"),
        }
    }
}

struct Frame {
    key: (FileId, PageId),
    buf: PageBuf,
    dirty: bool,
    referenced: bool,
}

struct Inner {
    capacity: usize,
    files: Vec<PageFile>,
    map: HashMap<(FileId, PageId), usize>,
    frames: Vec<Frame>,
    hand: usize,
    stats: PoolStats,
    metrics: PoolMetrics,
}

/// A shared buffer pool over a set of registered page files.
///
/// All page access goes through the pool so that cache behaviour — and the
/// cold/warm distinction the paper's §6.4 experiments rely on — is fully
/// under the caller's control via [`BufferPool::clear_cache`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (min 8).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity: capacity.max(8),
                files: Vec::new(),
                map: HashMap::new(),
                frames: Vec::new(),
                hand: 0,
                stats: PoolStats::default(),
                metrics: PoolMetrics::new(),
            }),
        }
    }

    /// Registers a file; all subsequent access uses the returned id.
    pub fn register_file(&self, file: PageFile) -> FileId {
        let mut g = self.inner.lock();
        g.files.push(file);
        (g.files.len() - 1) as FileId
    }

    /// Number of pages currently allocated in file `fid`.
    pub fn file_pages(&self, fid: FileId) -> u32 {
        self.inner.lock().files[fid as usize].num_pages()
    }

    /// On-disk size of file `fid` in bytes.
    pub fn file_size_bytes(&self, fid: FileId) -> u64 {
        self.inner.lock().files[fid as usize].size_bytes()
    }

    /// Appends a zeroed page to file `fid` and returns its id. The page is
    /// installed in the pool as a clean frame (no physical read needed).
    pub fn allocate_page(&self, fid: FileId) -> Result<PageId> {
        let mut g = self.inner.lock();
        let pid = g.files[fid as usize].allocate()?;
        g.stats.physical_writes += 1; // the zero-fill write
        g.metrics.physical_writes.inc();
        let frame = g.frame_for(fid, pid, false)?;
        *g.frames[frame].buf.bytes_mut() = [0u8; PAGE_SIZE];
        Ok(pid)
    }

    /// Runs `f` over a read-only view of the page. The closure executes
    /// under the pool lock, so it must not re-enter the pool.
    pub fn with_page<R>(
        &self,
        fid: FileId,
        pid: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let mut g = self.inner.lock();
        let frame = g.frame_for(fid, pid, true)?;
        Ok(f(g.frames[frame].buf.bytes()))
    }

    /// Runs `f` over a mutable view of the page and marks it dirty.
    pub fn with_page_mut<R>(
        &self,
        fid: FileId,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let mut g = self.inner.lock();
        let frame = g.frame_for(fid, pid, true)?;
        g.frames[frame].dirty = true;
        Ok(f(g.frames[frame].buf.bytes_mut()))
    }

    /// Copies the page into `out`. Use this when the caller needs to run
    /// user code over the contents (scans), so no lock is held meanwhile.
    pub fn read_page_into(&self, fid: FileId, pid: PageId, out: &mut PageBuf) -> Result<()> {
        let mut g = self.inner.lock();
        let frame = g.frame_for(fid, pid, true)?;
        out.bytes_mut().copy_from_slice(g.frames[frame].buf.bytes());
        Ok(())
    }

    /// Writes every dirty frame back to its file.
    pub fn flush_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.flush_all()
    }

    /// Flushes and then drops every cached frame: the next access to any
    /// page is a miss ("cold cache").
    pub fn clear_cache(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.flush_all()?;
        g.map.clear();
        g.frames.clear();
        g.hand = 0;
        Ok(())
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Resets the cumulative counters to zero.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = PoolStats::default();
    }
}

impl Inner {
    fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let (fid, pid) = self.frames[i].key;
                let buf = self.frames[i].buf.bytes();
                self.files[fid as usize].write_page(pid, buf)?;
                self.frames[i].dirty = false;
                self.stats.physical_writes += 1;
                self.metrics.physical_writes.inc();
            }
        }
        for f in &mut self.files {
            f.sync()?;
        }
        Ok(())
    }

    /// Returns the frame index holding `(fid, pid)`, loading (and possibly
    /// evicting) as needed. `load` controls whether a miss reads the page
    /// from disk (true) or leaves the frame contents unspecified for the
    /// caller to overwrite (false, used by `allocate_page`).
    fn frame_for(&mut self, fid: FileId, pid: PageId, load: bool) -> Result<usize> {
        if let Some(&i) = self.map.get(&(fid, pid)) {
            self.stats.hits += 1;
            self.metrics.hits.inc();
            self.frames[i].referenced = true;
            return Ok(i);
        }
        self.stats.misses += 1;
        self.metrics.misses.inc();
        let i = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                key: (fid, pid),
                buf: PageBuf::zeroed(),
                dirty: false,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            let victim = self.clock_victim();
            let old = self.frames[victim].key;
            if self.frames[victim].dirty {
                let buf = self.frames[victim].buf.bytes();
                self.files[old.0 as usize].write_page(old.1, buf)?;
                self.stats.physical_writes += 1;
                self.metrics.physical_writes.inc();
            }
            self.map.remove(&old);
            self.stats.evictions += 1;
            self.metrics.evictions.inc();
            self.frames[victim].key = (fid, pid);
            self.frames[victim].dirty = false;
            self.frames[victim].referenced = true;
            victim
        };
        if load {
            let buf = self.frames[i].buf.bytes_mut();
            self.files[fid as usize].read_page(pid, buf)?;
            self.stats.physical_reads += 1;
            self.metrics.physical_reads.inc();
        }
        self.map.insert((fid, pid), i);
        Ok(i)
    }

    /// Second-chance clock: clear referenced bits until an unreferenced
    /// frame is found.
    fn clock_victim(&mut self) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[i].referenced {
                self.frames[i].referenced = false;
            } else {
                return i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagestore-bp-{}-{name}", std::process::id()))
    }

    fn pool_with_file(name: &str, cap: usize) -> (BufferPool, FileId, PathBuf) {
        let p = tmpfile(name);
        let pool = BufferPool::new(cap);
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        (pool, fid, p)
    }

    #[test]
    fn write_read_through_pool() {
        let (pool, fid, p) = pool_with_file("wr", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |b| b[100] = 42).unwrap();
        let v = pool.with_page(fid, pid, |b| b[100]).unwrap();
        assert_eq!(v, 42);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let (pool, fid, p) = pool_with_file("evict", 8);
        // Allocate and dirty more pages than fit in the pool.
        let mut pids = Vec::new();
        for i in 0..32u32 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, pid, |b| b[0] = i as u8).unwrap();
            pids.push(pid);
        }
        // Every page must read back its own value (through evictions).
        for (i, &pid) in pids.iter().enumerate() {
            let v = pool.with_page(fid, pid, |b| b[0]).unwrap();
            assert_eq!(v, i as u8, "page {pid}");
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "pool capacity was never exceeded");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn hits_and_misses_counted() {
        let (pool, fid, p) = pool_with_file("stats", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.reset_stats();
        pool.with_page(fid, pid, |_| ()).unwrap();
        pool.with_page(fid, pid, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn clear_cache_forces_misses() {
        let (pool, fid, p) = pool_with_file("cold", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |b| b[1] = 9).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let v = pool.with_page(fid, pid, |b| b[1]).unwrap();
        assert_eq!(v, 9, "data survives the cache drop");
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.physical_reads, 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stats_since_computes_delta() {
        let a = PoolStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            physical_reads: 4,
            physical_writes: 2,
        };
        let b = PoolStats {
            hits: 25,
            misses: 9,
            evictions: 1,
            physical_reads: 9,
            physical_writes: 2,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 5);
        assert_eq!(d.evictions, 0);
    }

    #[test]
    fn stats_since_saturates_on_counter_reset() {
        // If reset_stats() ran between the snapshots, "later" counters can
        // be smaller than "earlier". The delta must clamp to 0 per field,
        // never wrap.
        let earlier = PoolStats {
            hits: 100,
            misses: 50,
            evictions: 10,
            physical_reads: 50,
            physical_writes: 20,
        };
        let later = PoolStats {
            hits: 3,
            misses: 60,
            evictions: 0,
            physical_reads: 1,
            physical_writes: 25,
        };
        let d = later.since(&earlier);
        assert_eq!(
            d,
            PoolStats {
                hits: 0,
                misses: 10,
                evictions: 0,
                physical_reads: 0,
                physical_writes: 5,
            }
        );
    }

    #[test]
    fn stats_since_of_self_is_zero() {
        let s = PoolStats {
            hits: 7,
            misses: 7,
            evictions: 7,
            physical_reads: 7,
            physical_writes: 7,
        };
        assert_eq!(s.since(&s), PoolStats::default());
    }

    #[test]
    fn stats_merged_adds_componentwise() {
        let a = PoolStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            physical_reads: 4,
            physical_writes: 5,
        };
        let b = PoolStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            physical_reads: 40,
            physical_writes: 50,
        };
        let m = a.merged(&b);
        assert_eq!(m.hits, 11);
        assert_eq!(m.misses, 22);
        assert_eq!(m.evictions, 33);
        assert_eq!(m.physical_reads, 44);
        assert_eq!(m.physical_writes, 55);
        // since() inverts merged(): (a+b) - b == a.
        assert_eq!(m.since(&b), a);
    }

    #[test]
    fn pool_publishes_global_counters() {
        let before = obs::global().snapshot();
        let (pool, fid, p) = pool_with_file("obs", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page(fid, pid, |_| ()).unwrap();
        pool.clear_cache().unwrap();
        pool.with_page(fid, pid, |_| ()).unwrap();
        let d = obs::global().snapshot().delta(&before);
        // One hit (first access after allocate), one miss + physical read
        // (after the cache drop). Other tests may run concurrently, so
        // assert lower bounds only.
        assert!(d.counters.get("pool.hits").copied().unwrap_or(0) >= 1);
        assert!(d.counters.get("pool.misses").copied().unwrap_or(0) >= 1);
        assert!(d.counters.get("pool.physical_reads").copied().unwrap_or(0) >= 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_page_into_copies() {
        let (pool, fid, p) = pool_with_file("copy", 16);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |b| b[7] = 3).unwrap();
        let mut out = PageBuf::zeroed();
        pool.read_page_into(fid, pid, &mut out).unwrap();
        assert_eq!(out.bytes()[7], 3);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn multiple_files_are_isolated() {
        let p1 = tmpfile("multi1");
        let p2 = tmpfile("multi2");
        let pool = BufferPool::new(16);
        let f1 = pool.register_file(PageFile::create(&p1).unwrap());
        let f2 = pool.register_file(PageFile::create(&p2).unwrap());
        let a = pool.allocate_page(f1).unwrap();
        let b = pool.allocate_page(f2).unwrap();
        pool.with_page_mut(f1, a, |x| x[0] = 1).unwrap();
        pool.with_page_mut(f2, b, |x| x[0] = 2).unwrap();
        assert_eq!(pool.with_page(f1, a, |x| x[0]).unwrap(), 1);
        assert_eq!(pool.with_page(f2, b, |x| x[0]).unwrap(), 2);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}
