//! The two storage-level intersection predicates of §4.4.
//!
//! SegDiff reduces "does this parallelogram intersect the query region" to
//! a union of **point queries** (is a stored corner inside the region) and
//! **line queries** (does a boundary edge with both ends outside the region
//! cross into it). Both are simple range conditions over stored columns,
//! which is what makes them indexable.

use crate::{FeaturePoint, QueryRegion, SearchKind};

/// Point query (paper §4.4): is the stored corner inside the query region?
///
/// This is the *storage-level* predicate — `Δt <= T` and `Δv <= V` for drop
/// search — deliberately without the `Δt > 0` constraint of the problem
/// statement, exactly as the paper issues it. Stored corners always have
/// `Δt >= 0`; a match at `Δt = 0` can only arise from segment pairs that
/// also contain events with arbitrarily small positive `Δt`, which is
/// covered by the `2ε` false-positive tolerance (Lemma 5).
pub fn point_in_region(p: FeaturePoint, region: &QueryRegion) -> bool {
    match region.kind {
        SearchKind::Drop => p.dt <= region.t && p.dv <= region.v,
        SearchKind::Jump => p.dt <= region.t && p.dv >= region.v,
    }
}

/// Line query (paper §4.4): does the boundary edge `p1 -> p2`
/// (`p1.dt <= p2.dt`) cross the query region while both of its endpoints
/// lie outside it?
///
/// For drop search the condition is: the left end is above the region
/// (`Δt' <= T`, `Δv' > V`), the right end is beyond it (`Δt'' > T`,
/// `Δv'' < V`), and the edge's interpolated value at `Δt = T` is `<= V`.
///
/// # Panics
///
/// Debug-asserts `p1.dt <= p2.dt`.
pub fn edge_crosses_region(p1: FeaturePoint, p2: FeaturePoint, region: &QueryRegion) -> bool {
    debug_assert!(p1.dt <= p2.dt, "edge endpoints must be ordered by dt");
    let (t, v) = (region.t, region.v);
    match region.kind {
        SearchKind::Drop => {
            p1.dt <= t
                && p1.dv > v
                && p2.dt > t
                && p2.dv < v
                && p1.dv + (p2.dv - p1.dv) / (p2.dt - p1.dt) * (t - p1.dt) <= v
        }
        SearchKind::Jump => {
            p1.dt <= t
                && p1.dv < v
                && p2.dt > t
                && p2.dv > v
                && p1.dv + (p2.dv - p1.dv) / (p2.dt - p1.dt) * (t - p1.dt) >= v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_query_drop() {
        let r = QueryRegion::drop(10.0, -2.0);
        assert!(point_in_region(FeaturePoint::new(5.0, -3.0), &r));
        assert!(point_in_region(FeaturePoint::new(10.0, -2.0), &r));
        // Unlike `QueryRegion::contains`, dt = 0 is allowed at storage level.
        assert!(point_in_region(FeaturePoint::new(0.0, -3.0), &r));
        assert!(!point_in_region(FeaturePoint::new(11.0, -3.0), &r));
        assert!(!point_in_region(FeaturePoint::new(5.0, -1.0), &r));
    }

    #[test]
    fn point_query_jump() {
        let r = QueryRegion::jump(10.0, 2.0);
        assert!(point_in_region(FeaturePoint::new(5.0, 3.0), &r));
        assert!(!point_in_region(FeaturePoint::new(5.0, 1.0), &r));
    }

    #[test]
    fn line_query_detects_crossing() {
        let r = QueryRegion::drop(10.0, -2.0);
        // Edge from above-left to below-right, dipping under V before T.
        let p1 = FeaturePoint::new(2.0, -1.0);
        let p2 = FeaturePoint::new(12.0, -6.0);
        // At dt = 10: -1 + (-5/10)*8 = -5 <= -2.
        assert!(edge_crosses_region(p1, p2, &r));
    }

    #[test]
    fn line_query_rejects_late_crossing() {
        let r = QueryRegion::drop(10.0, -2.0);
        // Crosses V only after dt = T.
        let p1 = FeaturePoint::new(9.0, -1.0);
        let p2 = FeaturePoint::new(30.0, -6.0);
        // At dt = 10: -1 + (-5/21)*1 = -1.238 > -2.
        assert!(!edge_crosses_region(p1, p2, &r));
    }

    #[test]
    fn line_query_requires_both_ends_outside() {
        let r = QueryRegion::drop(10.0, -2.0);
        // Right end inside the region: the point query handles this case.
        let p1 = FeaturePoint::new(2.0, -1.0);
        let p2 = FeaturePoint::new(8.0, -4.0);
        assert!(!edge_crosses_region(p1, p2, &r));
    }

    #[test]
    fn line_query_jump_mirror() {
        let r = QueryRegion::jump(10.0, 2.0);
        let p1 = FeaturePoint::new(2.0, 1.0);
        let p2 = FeaturePoint::new(12.0, 6.0);
        assert!(edge_crosses_region(p1, p2, &r));
        let p2_shallow = FeaturePoint::new(12.0, 2.5);
        // At dt = 10: 1 + (1.5/10)*8 = 2.2 >= 2 -> crosses.
        assert!(edge_crosses_region(p1, p2_shallow, &r));
        let p2_late = FeaturePoint::new(40.0, 6.0);
        // At dt = 10: 1 + (5/38)*8 = 2.05 >= 2 -> still crosses.
        assert!(edge_crosses_region(p1, p2_late, &r));
    }
}
