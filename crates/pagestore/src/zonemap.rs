//! Zone maps: per-page min/max column summaries for heap files.
//!
//! A zone map holds, for every data page of a heap, the minimum and
//! maximum of each column over the rows stored on that page. A sequential
//! scan with a *conservative* page predicate (one that returns `true`
//! whenever any row on the page could match) may then skip whole pages
//! without reading them — MacroBase-style pruning adapted to the feature
//! tables' corner columns.
//!
//! Zone maps are derived data, like the B+trees: they are persisted to a
//! `<heap>.zones` sidecar (atomic temp + rename) keyed by the heap's row
//! count, and a sidecar whose row count disagrees with the heap meta —
//! e.g. after WAL recovery truncated the heap — is discarded and rebuilt
//! from a scan. They are maintained incrementally on insert, so a freshly
//! created heap always carries an up-to-date map.

use crate::error::{Result, StoreError};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x5344_5A4D; // "SDZM"

/// Per-page min/max summaries of every column of a heap file.
///
/// Data pages start at 1 (page 0 is the heap meta page); page `p` maps to
/// entry `p - 1`. Entries are stored page-major: `mins[(p-1)*ncols + c]`
/// is the minimum of column `c` on page `p`.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    ncols: usize,
    /// Rows observed; must equal the heap's row count to be valid.
    nrows: u64,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl ZoneMap {
    /// An empty zone map for rows of `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        assert!(ncols > 0, "zone map needs at least one column");
        Self {
            ncols,
            nrows: 0,
            mins: Vec::new(),
            maxs: Vec::new(),
        }
    }

    /// Number of data pages covered.
    pub fn pages(&self) -> u32 {
        (self.mins.len() / self.ncols) as u32
    }

    /// Rows observed so far.
    pub fn num_rows(&self) -> u64 {
        self.nrows
    }

    /// Folds one row stored on data page `page` into the summaries.
    ///
    /// # Panics
    ///
    /// Panics if `page == 0` (the meta page holds no rows) or the row
    /// arity differs from the map's.
    pub fn observe(&mut self, page: u32, row: &[f64]) {
        assert!(page > 0, "data pages start at 1");
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        let want = page as usize * self.ncols;
        if self.mins.len() < want {
            self.mins.resize(want, f64::INFINITY);
            self.maxs.resize(want, f64::NEG_INFINITY);
        }
        let base = (page as usize - 1) * self.ncols;
        for (c, &v) in row.iter().enumerate() {
            let m = &mut self.mins[base + c];
            *m = m.min(v);
            let m = &mut self.maxs[base + c];
            *m = m.max(v);
        }
        self.nrows += 1;
    }

    /// The `(mins, maxs)` column summaries of data page `page`, or `None`
    /// when the page is not covered (no rows observed there).
    pub fn page_bounds(&self, page: u32) -> Option<(&[f64], &[f64])> {
        if page == 0 || page > self.pages() {
            return None;
        }
        let base = (page as usize - 1) * self.ncols;
        Some((
            &self.mins[base..base + self.ncols],
            &self.maxs[base..base + self.ncols],
        ))
    }

    /// The sidecar path for a heap stored at `heap_path`.
    pub fn sidecar_path(heap_path: &Path) -> PathBuf {
        let mut os = heap_path.as_os_str().to_os_string();
        os.push(".zones");
        PathBuf::from(os)
    }

    /// Serializes the map (little-endian, fixed layout).
    fn to_bytes(&self) -> Vec<u8> {
        let npages = self.pages();
        let mut out = Vec::with_capacity(24 + self.mins.len() * 16);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.ncols as u32).to_le_bytes());
        out.extend_from_slice(&self.nrows.to_le_bytes());
        out.extend_from_slice(&npages.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // reserved / alignment
        for &v in &self.mins {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.maxs {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Writes the sidecar for `heap_path` atomically (temp + rename).
    pub fn save(&self, heap_path: &Path) -> Result<()> {
        let path = Self::sidecar_path(heap_path);
        let tmp = path.with_extension("zones.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Loads the sidecar for `heap_path`, returning `None` when it is
    /// missing, malformed, or stale (`ncols`/`nrows` disagree with the
    /// heap meta). A stale map is deleted so it cannot be mistaken for
    /// current later.
    pub fn load(heap_path: &Path, ncols: usize, nrows: u64) -> Option<ZoneMap> {
        let path = Self::sidecar_path(heap_path);
        let bytes = std::fs::read(&path).ok()?;
        let map = Self::from_bytes(&bytes).ok();
        let valid = map
            .as_ref()
            .is_some_and(|m| m.ncols == ncols && m.nrows == nrows);
        if !valid {
            std::fs::remove_file(&path).ok();
            return None;
        }
        map
    }

    fn from_bytes(b: &[u8]) -> Result<ZoneMap> {
        let corrupt = || StoreError::Corrupt("zone-map sidecar malformed".into());
        if b.len() < 24 {
            return Err(corrupt());
        }
        if u32::from_le_bytes(crate::page::arr(b, 0)) != MAGIC {
            return Err(corrupt());
        }
        let ncols = u32::from_le_bytes(crate::page::arr(b, 4)) as usize;
        let nrows = u64::from_le_bytes(crate::page::arr(b, 8));
        let npages = u32::from_le_bytes(crate::page::arr(b, 16)) as usize;
        let n = npages * ncols;
        if ncols == 0 || b.len() != 24 + n * 16 {
            return Err(corrupt());
        }
        let read_f64s = |start: usize| -> Vec<f64> {
            b[start..start + n * 8]
                .chunks_exact(8)
                .map(|c| {
                    let mut a = [0u8; 8];
                    a.copy_from_slice(c);
                    f64::from_le_bytes(a)
                })
                .collect()
        };
        Ok(ZoneMap {
            ncols,
            nrows,
            mins: read_f64s(24),
            maxs: read_f64s(24 + n * 8),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_tracks_min_max_per_page() {
        let mut z = ZoneMap::new(2);
        z.observe(1, &[1.0, -5.0]);
        z.observe(1, &[3.0, -1.0]);
        z.observe(2, &[10.0, 0.0]);
        assert_eq!(z.pages(), 2);
        assert_eq!(z.num_rows(), 3);
        let (mins, maxs) = z.page_bounds(1).unwrap();
        assert_eq!(mins, &[1.0, -5.0]);
        assert_eq!(maxs, &[3.0, -1.0]);
        let (mins, maxs) = z.page_bounds(2).unwrap();
        assert_eq!(mins, &[10.0, 0.0]);
        assert_eq!(maxs, &[10.0, 0.0]);
        assert!(z.page_bounds(0).is_none());
        assert!(z.page_bounds(3).is_none());
    }

    #[test]
    fn sidecar_roundtrip_and_staleness() {
        let dir = std::env::temp_dir().join(format!("segdiff-zones-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let heap = dir.join("t.tbl");
        let mut z = ZoneMap::new(3);
        z.observe(1, &[1.0, 2.0, 3.0]);
        z.observe(2, &[-1.0, 0.0, 9.0]);
        z.save(&heap).unwrap();
        let loaded = ZoneMap::load(&heap, 3, 2).expect("valid sidecar loads");
        assert_eq!(loaded.page_bounds(2), z.page_bounds(2));
        // Row-count mismatch (e.g. recovery truncation): discarded + deleted.
        assert!(ZoneMap::load(&heap, 3, 1).is_none());
        assert!(
            !ZoneMap::sidecar_path(&heap).exists(),
            "stale sidecar must be deleted"
        );
        // Malformed bytes: rejected.
        std::fs::write(ZoneMap::sidecar_path(&heap), b"junk").unwrap();
        assert!(ZoneMap::load(&heap, 3, 2).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_sidecar_is_none() {
        let heap = std::env::temp_dir().join("segdiff-zones-missing.tbl");
        assert!(ZoneMap::load(&heap, 2, 0).is_none());
    }
}
