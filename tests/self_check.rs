//! The workspace must satisfy its own lint, and the tables the lint
//! re-derives lexically must match the ones the live crates generate —
//! if either drifts, CI should say so here before the lint job does.

use lint::diag::Rule;
use lint::{load_registry, load_routes, run, Options};
use std::path::PathBuf;

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let result = run(&Options::new(root())).expect("lint must run");
    assert!(
        result.diags.is_empty(),
        "segdiff-lint found violations:\n{}",
        result
            .diags
            .iter()
            .map(|d| format!(
                "{}:{}:{} [{}] {}",
                d.file,
                d.line,
                d.col,
                d.rule.id(),
                d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_is_exercised_by_default() {
    let opts = Options::new(root());
    assert_eq!(opts.rules.len(), Rule::ALL.len());
}

#[test]
fn lint_metrics_table_matches_obs_registry() {
    let registry = load_registry(&root()).expect("names.rs parses");
    assert_eq!(
        lint::rules::names::markdown_table(&registry),
        segdiff_repro::obs::names::markdown_table(),
        "crates/lint re-derives the metrics table lexically from \
         crates/obs/src/names.rs; the two generators must agree"
    );
}

#[test]
fn routes_table_round_trips() {
    // Three independent derivations of the HTTP routes table must be
    // byte-identical: the lint's lexical parse of routes.rs, the live
    // registry compiled into the server, and the block between the
    // README's routes-table markers (what `--emit-routes-table`
    // regenerates).
    let routes = load_routes(&root()).expect("routes.rs parses");
    let from_lint = lint::rules::contracts::markdown_table(&routes);
    assert_eq!(
        from_lint,
        segdiff_server::routes::markdown_table(),
        "crates/lint re-derives the routes table lexically from \
         crates/server/src/routes.rs; the two generators must agree"
    );

    let readme = std::fs::read_to_string(root().join("README.md")).expect("README.md readable");
    let begin = readme
        .find(lint::config::ROUTES_TABLE_BEGIN)
        .expect("README has routes-table:begin marker");
    let end = readme
        .find(lint::config::ROUTES_TABLE_END)
        .expect("README has routes-table:end marker");
    let block = readme[begin + lint::config::ROUTES_TABLE_BEGIN.len()..end].trim();
    assert_eq!(
        block,
        from_lint.trim(),
        "README routes table drifted; regenerate with \
         `cargo run -p lint -- --emit-routes-table`"
    );
}
