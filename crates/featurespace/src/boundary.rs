//! Boundary extraction: the corner analysis of §4.3.1 and the Appendix.

use crate::intersect::{edge_crosses_region, point_in_region};
use crate::{FeaturePoint, Parallelogram, QueryRegion, SearchKind, SlopeCase};
use segmentation::Segment;

/// The region-facing boundary of a feature parallelogram: a chain of one,
/// two, or three corner points ordered by increasing `Δt`.
///
/// For drop search this is the lower-left boundary, for jump search the
/// upper-left boundary. These are the rows SegDiff actually stores; the ε
/// shift of Lemma 4 has already been applied by the time a `Boundary` is
/// produced by [`extract_boundary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boundary {
    pts: [FeaturePoint; 3],
    len: u8,
}

impl Boundary {
    /// A degenerate single-corner boundary.
    pub fn one(p: FeaturePoint) -> Self {
        Self {
            pts: [p, FeaturePoint::default(), FeaturePoint::default()],
            len: 1,
        }
    }

    /// A two-corner boundary (one edge).
    ///
    /// # Panics
    ///
    /// Debug-asserts the corners are ordered by `Δt`.
    pub fn two(p: FeaturePoint, q: FeaturePoint) -> Self {
        debug_assert!(p.dt <= q.dt);
        Self {
            pts: [p, q, FeaturePoint::default()],
            len: 2,
        }
    }

    /// A three-corner boundary (two edges).
    pub fn three(p: FeaturePoint, q: FeaturePoint, r: FeaturePoint) -> Self {
        debug_assert!(p.dt <= q.dt && q.dt <= r.dt);
        Self {
            pts: [p, q, r],
            len: 3,
        }
    }

    /// The corners, ordered by increasing `Δt`.
    pub fn corners(&self) -> &[FeaturePoint] {
        &self.pts[..self.len as usize]
    }

    /// Number of corners (1–3).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Boundaries are never empty; provided for clippy-consistency.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// This boundary with every corner shifted vertically by `dy`.
    pub fn shifted(&self, dy: f64) -> Self {
        let mut out = *self;
        for p in out.pts[..out.len as usize].iter_mut() {
            *p = p.shifted(dy);
        }
        out
    }

    /// Does this boundary intersect the query region? The union of the
    /// point queries on every corner and the line queries on every edge
    /// (§4.4). This is the in-memory reference implementation of the
    /// predicate the storage layer evaluates with range queries.
    pub fn intersects(&self, region: &QueryRegion) -> bool {
        let pts = self.corners();
        if pts.iter().any(|&p| point_in_region(p, region)) {
            return true;
        }
        pts.windows(2)
            .any(|w| edge_crosses_region(w[0], w[1], region))
    }
}

/// Extracts the stored boundary for the pair (earlier `cd`, later `ab`)
/// under error tolerance `eps`, or `None` when the shifted parallelogram
/// cannot contain any drop (jump) and nothing needs to be stored — the
/// pruning conditions of the Appendix.
///
/// The returned corners are already ε-shifted: down by `eps` for
/// [`SearchKind::Drop`], up by `eps` for [`SearchKind::Jump`] (Lemma 4).
pub fn extract_boundary(
    cd: &Segment,
    ab: &Segment,
    eps: f64,
    kind: SearchKind,
) -> Option<Boundary> {
    debug_assert!(eps >= 0.0);
    let para = Parallelogram::from_pair(cd, ab);
    let case = SlopeCase::classify(cd.slope(), ab.slope());
    let (bc, bd, ac, ad) = (para.bc, para.bd, para.ac, para.ad);
    match kind {
        SearchKind::Drop => {
            let b = match case {
                // Lower-left boundary (BC, AC); lowest corner is AC.
                SlopeCase::C1 => (ac.dv - eps <= 0.0).then(|| Boundary::two(bc, ac)),
                // Degenerate lower-left boundary: the single corner BC.
                SlopeCase::C2 | SlopeCase::C3 => (bc.dv - eps <= 0.0).then(|| Boundary::one(bc)),
                // Lower-left boundary (BC, BD); lowest corner is BD.
                SlopeCase::C4 => (bd.dv - eps <= 0.0).then(|| Boundary::two(bc, bd)),
                // Chain (BC, AC, AD); drop II degrades to (AC, AD).
                SlopeCase::C5 => {
                    if ac.dv - eps <= 0.0 {
                        Some(Boundary::three(bc, ac, ad))
                    } else if ad.dv - eps <= 0.0 {
                        Some(Boundary::two(ac, ad))
                    } else {
                        None
                    }
                }
                // Case 6 is case 5 with AC replaced by BD.
                SlopeCase::C6 => {
                    if bd.dv - eps <= 0.0 {
                        Some(Boundary::three(bc, bd, ad))
                    } else if ad.dv - eps <= 0.0 {
                        Some(Boundary::two(bd, ad))
                    } else {
                        None
                    }
                }
            };
            b.map(|b| b.shifted(-eps))
        }
        SearchKind::Jump => {
            let b = match case {
                // Upper-left boundary (BC, BD); highest corner is BD.
                SlopeCase::C1 => (bd.dv + eps > 0.0).then(|| Boundary::two(bc, bd)),
                // Chain (BC, AC, AD); jump II degrades to (AC, AD).
                SlopeCase::C2 => {
                    if ac.dv + eps >= 0.0 {
                        Some(Boundary::three(bc, ac, ad))
                    } else if ad.dv + eps > 0.0 {
                        Some(Boundary::two(ac, ad))
                    } else {
                        None
                    }
                }
                // Case 3 is case 2 with AC replaced by BD.
                SlopeCase::C3 => {
                    if bd.dv + eps >= 0.0 {
                        Some(Boundary::three(bc, bd, ad))
                    } else if ad.dv + eps > 0.0 {
                        Some(Boundary::two(bd, ad))
                    } else {
                        None
                    }
                }
                // Upper-left boundary (BC, AC); highest corner is AC.
                SlopeCase::C4 => (ac.dv + eps > 0.0).then(|| Boundary::two(bc, ac)),
                // Degenerate upper-left boundary: the single corner BC.
                SlopeCase::C5 | SlopeCase::C6 => (bc.dv + eps > 0.0).then(|| Boundary::one(bc)),
            };
            b.map(|b| b.shifted(eps))
        }
    }
}

/// The boundary for events occurring *within* a single segment.
///
/// When both event points lie on the same segment, the feature points are
/// exactly the segment through the origin `(0, 0) -> (duration, Δv)` (the
/// parallelogram of a segment with itself degenerates, §4.2). Returns the
/// ε-shifted two-corner boundary, or `None` when the segment cannot
/// contain a drop (jump): at `ε = 0` a non-falling (non-rising) segment
/// stores nothing.
pub fn extract_self_boundary(seg: &Segment, eps: f64, kind: SearchKind) -> Option<Boundary> {
    debug_assert!(eps >= 0.0);
    let origin = FeaturePoint::new(0.0, 0.0);
    let far = FeaturePoint::new(seg.duration(), seg.delta_v());
    match kind {
        SearchKind::Drop => {
            // Lowest shifted dv: min(-eps, Δv - eps). Only boundaries that
            // dip below zero can ever satisfy Δv <= V < 0.
            (far.dv.min(0.0) - eps < 0.0).then(|| Boundary::two(origin, far).shifted(-eps))
        }
        SearchKind::Jump => {
            (far.dv.max(0.0) + eps > 0.0).then(|| Boundary::two(origin, far).shifted(eps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// cd rising, ab falling: case 1.
    fn case1_pair() -> (Segment, Segment) {
        (
            Segment::new(0.0, 1.0, 10.0, 4.0),
            Segment::new(25.0, 6.0, 40.0, 2.0),
        )
    }

    #[test]
    fn case1_drop_boundary_is_bc_ac() {
        let (cd, ab) = case1_pair();
        let b = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
        let para = Parallelogram::from_pair(&cd, &ab);
        assert_eq!(b.corners(), &[para.bc, para.ac]);
    }

    #[test]
    fn case1_jump_boundary_is_bc_bd() {
        let (cd, ab) = case1_pair();
        let b = extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).unwrap();
        let para = Parallelogram::from_pair(&cd, &ab);
        assert_eq!(b.corners(), &[para.bc, para.bd]);
    }

    #[test]
    fn epsilon_shift_applied() {
        let (cd, ab) = case1_pair();
        let b0 = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
        let b1 = extract_boundary(&cd, &ab, 0.5, SearchKind::Drop).unwrap();
        for (p0, p1) in b0.corners().iter().zip(b1.corners()) {
            assert_eq!(p1.dt, p0.dt);
            assert!((p1.dv - (p0.dv - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_drops_hopeless_pairs() {
        // Both segments rise and ab sits far above cd: every feature dv > 0.
        let cd = Segment::new(0.0, 0.0, 10.0, 1.0); // k = 0.1
        let ab = Segment::new(20.0, 10.0, 30.0, 13.0); // k = 0.3, case 2
        assert!(extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).is_none());
        assert!(extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).is_some());
    }

    #[test]
    fn case5_degrades_to_two_corners() {
        // Both falling steeply, ab below cd -> AC already a drop vs BC a jump?
        // Construct: cd falls from 10 to 8; ab falls from 9 to 1 (steeper).
        let cd = Segment::new(0.0, 10.0, 10.0, 8.0); // k = -0.2
        let ab = Segment::new(10.0, 9.0, 20.0, 1.0); // k = -0.8 <= k_cd: case 5
        let para = Parallelogram::from_pair(&cd, &ab);
        // bc.dv = 9 - 8 = 1 > 0 (a jump), ac.dv = 1 - 8 = -7 <= 0.
        assert!(para.bc.dv > 0.0 && para.ac.dv < 0.0);
        let b = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
        assert_eq!(b.len(), 3); // drop I: AC itself is a drop
                                // Now lift ab so AC becomes a jump but AD stays a drop.
        let ab2 = Segment::new(10.0, 19.0, 20.0, 9.5); // ac.dv = 1.5, ad.dv = -0.5
        let para2 = Parallelogram::from_pair(&cd, &ab2);
        assert!(para2.ac.dv > 0.0 && para2.ad.dv < 0.0);
        let b2 = extract_boundary(&cd, &ab2, 0.0, SearchKind::Drop).unwrap();
        assert_eq!(b2.len(), 2); // drop II: only (AC, AD)
        assert_eq!(b2.corners(), &[para2.ac, para2.ad]);
    }

    #[test]
    fn corner_counts_match_case_table() {
        let (cd, ab) = case1_pair();
        let case = SlopeCase::classify(cd.slope(), ab.slope());
        assert_eq!(case, SlopeCase::C1);
        let b = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
        assert_eq!(b.len(), case.drop_corner_count());
    }

    #[test]
    fn self_boundary_of_falling_segment() {
        let seg = Segment::new(0.0, 10.0, 3600.0, 5.0); // 5-unit drop in 1 h
        let b = extract_self_boundary(&seg, 0.0, SearchKind::Drop).unwrap();
        assert_eq!(
            b.corners(),
            &[FeaturePoint::new(0.0, 0.0), FeaturePoint::new(3600.0, -5.0)]
        );
        // A 3-unit drop within 1 h is found via the line/point queries.
        let region = QueryRegion::drop(3600.0, -3.0);
        assert!(b.intersects(&region));
        // A 6-unit drop is not contained in this segment.
        let deep = QueryRegion::drop(3600.0, -6.0);
        assert!(!b.intersects(&deep));
        // Rising segments store no drop boundary at eps = 0.
        let rise = Segment::new(0.0, 0.0, 100.0, 5.0);
        assert!(extract_self_boundary(&rise, 0.0, SearchKind::Drop).is_none());
        assert!(extract_self_boundary(&rise, 0.0, SearchKind::Jump).is_some());
    }

    #[test]
    fn self_boundary_interior_drop_detected_via_line_query() {
        // Drop of 5 over 2 h: a 3-unit drop needs 1.2 h, so T = 1 h misses
        // it but T = 1.5 h finds it (crossing detected by the line query).
        let seg = Segment::new(0.0, 10.0, 7200.0, 5.0);
        let b = extract_self_boundary(&seg, 0.0, SearchKind::Drop).unwrap();
        assert!(!b.intersects(&QueryRegion::drop(3600.0, -3.0)));
        assert!(b.intersects(&QueryRegion::drop(5400.0, -3.0)));
    }

    #[test]
    fn boundary_intersects_unions_point_and_line() {
        let b = Boundary::two(FeaturePoint::new(2.0, -1.0), FeaturePoint::new(12.0, -6.0));
        // Point query hit: right corner inside.
        assert!(b.intersects(&QueryRegion::drop(20.0, -5.0)));
        // Line query hit: both corners outside, edge crosses.
        assert!(b.intersects(&QueryRegion::drop(10.0, -2.0)));
        // Miss entirely.
        assert!(!b.intersects(&QueryRegion::drop(1.0, -5.0)));
    }

    #[test]
    fn boundary_constructors_and_accessors() {
        let p = FeaturePoint::new(1.0, 2.0);
        let q = FeaturePoint::new(3.0, 1.0);
        let r = FeaturePoint::new(5.0, 0.0);
        assert_eq!(Boundary::one(p).len(), 1);
        assert_eq!(Boundary::two(p, q).len(), 2);
        assert_eq!(Boundary::three(p, q, r).corners(), &[p, q, r]);
        assert!(!Boundary::one(p).is_empty());
    }
}
