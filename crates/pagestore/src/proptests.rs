//! Property tests for the storage substrate: every structure is checked
//! against an in-memory model under randomized workloads.

use crate::buffer::BufferPool;
use crate::heap::{HeapFile, PageFormat};
use crate::pagefile::PageFile;
use crate::BTree;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn tmpfile(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pagestore-prop-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Heap files behave like a Vec of rows, across any pool size (even
    /// pools far smaller than the data, forcing constant eviction).
    #[test]
    fn heap_matches_vec_model(
        rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 3), 1..400),
        pool_pages in 8usize..64,
    ) {
        let p = tmpfile("heap");
        let pool = Arc::new(BufferPool::new(pool_pages));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let mut heap = HeapFile::create(pool, fid, 3, PageFormat::Raw).unwrap();
        let mut rids = Vec::new();
        for row in &rows {
            rids.push(heap.insert(row).unwrap());
        }
        // Random access.
        let mut buf = Vec::new();
        for (i, &rid) in rids.iter().enumerate() {
            heap.fetch(rid, &mut buf).unwrap();
            prop_assert_eq!(&buf, &rows[i]);
        }
        // Scan order and contents.
        let mut seen = 0usize;
        heap.scan(|rid, row| {
            assert_eq!(rid, rids[seen]);
            assert_eq!(row, rows[seen].as_slice());
            seen += 1;
            true
        })
        .unwrap();
        prop_assert_eq!(seen, rows.len());
        std::fs::remove_file(&p).ok();
    }

    /// The B+tree agrees with BTreeMap on inserts and arbitrary ranges,
    /// under random (possibly duplicate-prefix) keys.
    #[test]
    fn btree_matches_model_random_ranges(
        keys in prop::collection::vec(any::<u32>(), 1..300),
        ranges in prop::collection::vec((any::<u32>(), any::<u32>()), 1..10),
    ) {
        use std::collections::BTreeMap;
        let p = tmpfile("btree");
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let mut bt = BTree::create(pool, fid, 12).unwrap();
        let mut model = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            let mut key = [0u8; 12];
            key[..4].copy_from_slice(&k.to_be_bytes());
            key[4..].copy_from_slice(&(i as u64).to_be_bytes());
            bt.insert(&key, i as u64).unwrap();
            model.insert(key.to_vec(), i as u64);
        }
        for &(a, b) in &ranges {
            let (a, b) = (a.min(b), a.max(b));
            let mut lo = [0u8; 12];
            let mut hi = [0xFFu8; 12];
            lo[..4].copy_from_slice(&a.to_be_bytes());
            hi[..4].copy_from_slice(&b.to_be_bytes());
            let mut got = Vec::new();
            bt.range(&lo, &hi, |k, v| {
                got.push((k.to_vec(), v));
                true
            })
            .unwrap();
            let want: Vec<(Vec<u8>, u64)> = model
                .range(lo.to_vec()..=hi.to_vec())
                .map(|(k, &v)| (k.clone(), v))
                .collect();
            prop_assert_eq!(got, want);
        }
        std::fs::remove_file(&p).ok();
    }

    /// SQL plans agree: a filtered SELECT returns the same multiset of rows
    /// whether the planner runs a sequential scan or an index range scan,
    /// for random data and random range predicates.
    #[test]
    fn sql_plans_agree(
        rows in prop::collection::vec((-100i32..100, -100i32..100), 1..200),
        t_bound in -100i32..100,
        v_bound in -100i32..100,
        case in 0u8..4,
    ) {
        use crate::db::{Database, TableSpec};
        use crate::sql::ExecOutcome;
        let dir = tmpfile("sqlprop");
        let db = Database::create(&dir, 128).unwrap();
        let t = db.create_table(TableSpec::new("t", &["a", "b"])).unwrap();
        for &(a, b) in &rows {
            t.insert(&[a as f64, b as f64]).unwrap();
        }
        db.create_index("t", "by_a_b", &["a", "b"]).unwrap();
        let predicate = match case {
            0 => format!("a <= {t_bound} AND b <= {v_bound}"),
            1 => format!("a >= {t_bound} OR b = {v_bound}"),
            2 => format!("a = {t_bound} AND b >= {v_bound}"),
            _ => format!("a > {t_bound} AND a <= {} AND b != {v_bound}", t_bound.saturating_add(50)),
        };
        // Planner path (free to use the index).
        let auto = db.execute(&format!("SELECT a, b FROM t WHERE {predicate}")).unwrap();
        // Forced sequential scan: obfuscate the bounds with arithmetic.
        let scan_pred = predicate.replace("a ", "(a + 0) ");
        let scan = db.execute(&format!("SELECT a, b FROM t WHERE {scan_pred}")).unwrap();
        let (ExecOutcome::Rows { rows: mut r1, .. }, ExecOutcome::Rows { rows: mut r2, plan, .. }) =
            (auto, scan)
        else {
            panic!()
        };
        prop_assert_eq!(plan, crate::sql::Plan::SeqScan);
        let key = |r: &Vec<f64>| (r[0] as i64, r[1] as i64);
        r1.sort_by_key(key);
        r2.sort_by_key(key);
        prop_assert_eq!(r1, r2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Data written through the pool is never lost, whatever the order of
    /// reads, writes and cache drops.
    #[test]
    fn pool_durability_under_random_ops(
        ops in prop::collection::vec((0u8..4, 0u32..48, any::<u8>()), 1..200),
    ) {
        let p = tmpfile("pool");
        let pool = BufferPool::new(8); // tiny: constant eviction
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let mut model: Vec<u8> = Vec::new();
        for (op, page, val) in ops {
            match op {
                0 => {
                    // allocate
                    pool.allocate_page(fid).unwrap();
                    model.push(0);
                }
                1 if !model.is_empty() => {
                    // write
                    let pid = page % model.len() as u32;
                    pool.with_page_mut(fid, pid, |b| b[7] = val).unwrap();
                    model[pid as usize] = val;
                }
                2 if !model.is_empty() => {
                    // read
                    let pid = page % model.len() as u32;
                    let got = pool.with_page(fid, pid, |b| b[7]).unwrap();
                    prop_assert_eq!(got, model[pid as usize]);
                }
                3 => {
                    pool.clear_cache().unwrap();
                }
                _ => {}
            }
        }
        // Final verification pass, fully cold.
        pool.clear_cache().unwrap();
        for (pid, &val) in model.iter().enumerate() {
            let got = pool.with_page(fid, pid as u32, |b| b[7]).unwrap();
            prop_assert_eq!(got, val);
        }
        std::fs::remove_file(&p).ok();
    }
}
