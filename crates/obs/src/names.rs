//! The metric-name registry: every counter and histogram the system
//! publishes, checked in as data.
//!
//! Telemetry names are stringly typed at their call sites
//! (`obs::global().counter("pool.hits")`), which makes typos and doc
//! drift invisible to the compiler. This module is the single source of
//! truth the `segdiff-lint` L4 rule enforces in both directions:
//!
//! * every name passed to [`crate::MetricsRegistry::counter`] /
//!   [`crate::MetricsRegistry::histogram`] / [`crate::span`] in
//!   non-test code must [`lookup`] to a registry entry of the right
//!   kind, and
//! * every registry entry must be referenced by at least one call site
//!   — dead entries are flagged too.
//!
//! The README "Metrics reference" table is generated from this registry
//! ([`markdown_table`]) and `segdiff-lint` fails when the two diverge,
//! so the docs cannot drift either.

/// Whether a metric is a monotonic counter, an instantaneous gauge, or
/// a latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` counter ([`crate::Counter`]).
    Counter,
    /// Instantaneous signed level ([`crate::Gauge`]).
    Gauge,
    /// Log-bucketed histogram ([`crate::Histogram`]), nanoseconds
    /// unless the name says otherwise (`*_ms`).
    Histogram,
}

impl MetricKind {
    /// Lower-case label used in docs and JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered metric name.
///
/// `name` may contain a single `*` wildcard covering one dot-free,
/// non-empty segment run — used for the per-shard counters
/// (`pool.shard*.hits` matches `pool.shard0.hits`, `pool.shard12.hits`,
/// … but not `pool.shard.hits` or `pool.shardX.extra.hits`).
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Counter or histogram.
    pub kind: MetricKind,
    /// Registered name (optionally with one `*` wildcard).
    pub name: &'static str,
    /// One-line description, surfaced in the generated docs table.
    pub help: &'static str,
}

impl MetricDef {
    /// A counter entry.
    pub const fn counter(name: &'static str, help: &'static str) -> Self {
        MetricDef {
            kind: MetricKind::Counter,
            name,
            help,
        }
    }

    /// A gauge entry.
    pub const fn gauge(name: &'static str, help: &'static str) -> Self {
        MetricDef {
            kind: MetricKind::Gauge,
            name,
            help,
        }
    }

    /// A histogram entry.
    pub const fn histogram(name: &'static str, help: &'static str) -> Self {
        MetricDef {
            kind: MetricKind::Histogram,
            name,
            help,
        }
    }

    /// Whether `name` is this entry (exact, or via the `*` wildcard).
    pub fn matches(&self, name: &str) -> bool {
        match self.name.split_once('*') {
            None => self.name == name,
            Some((prefix, suffix)) => {
                name.len() > prefix.len() + suffix.len()
                    && name.starts_with(prefix)
                    && name.ends_with(suffix)
                    && !name[prefix.len()..name.len() - suffix.len()].contains('.')
            }
        }
    }
}

/// Every metric name the system may publish, grouped by namespace.
pub const METRICS: &[MetricDef] = &[
    // Buffer pool (pagestore::buffer) — the paper's I/O cost model.
    MetricDef::counter("pool.hits", "Logical page requests served from the pool"),
    MetricDef::counter(
        "pool.misses",
        "Logical page requests that had to read from a file",
    ),
    MetricDef::counter("pool.evictions", "Frames evicted to make room"),
    MetricDef::counter("pool.physical_reads", "Pages read from backing files"),
    MetricDef::counter("pool.physical_writes", "Pages written to backing files"),
    MetricDef::counter(
        "pool.shard*.hits",
        "Per-shard pool hits (sum equals `pool.hits`)",
    ),
    MetricDef::counter("pool.shard*.misses", "Per-shard pool misses"),
    MetricDef::counter("pool.shard*.evictions", "Per-shard evictions"),
    MetricDef::counter("pool.shard*.physical_reads", "Per-shard physical reads"),
    MetricDef::counter("pool.shard*.physical_writes", "Per-shard physical writes"),
    MetricDef::gauge(
        "pool.resident_pages",
        "Pages currently resident across all pool shards",
    ),
    // Zone maps (pagestore::heap + zonemap).
    MetricDef::counter(
        "zonemap.pages_pruned",
        "Heap pages skipped by zone-map pruning during sequential scans",
    ),
    MetricDef::counter(
        "zonemap.builds",
        "Zone maps rebuilt from a full scan (missing or stale sidecar)",
    ),
    MetricDef::counter(
        "zonemap.extents_pruned",
        "Zone-map extents (64-page groups, plus whole-segment rejections counted as their extents) skipped without touching per-page entries",
    ),
    MetricDef::gauge(
        "zonemap.levels",
        "Depth of the zone-map hierarchy maintained per heap (page / extent / segment)",
    ),
    // Compressed columnar pages (pagestore::colpage).
    MetricDef::counter(
        "colpage.pages_written",
        "Columnar data pages started (inserts opening a fresh page, and heap-rewrite seals)",
    ),
    MetricDef::counter(
        "colpage.pages_decoded",
        "Columnar pages decoded back into column values during scans and fetches",
    ),
    // Batched index probes (pagestore::btree::search_batch).
    MetricDef::counter("probe.batches", "Batched B+tree probe calls"),
    MetricDef::counter("probe.ranges", "Key ranges submitted across probe batches"),
    MetricDef::counter(
        "probe.descents",
        "Root-to-leaf descents performed by batched probes",
    ),
    MetricDef::counter(
        "probe.leaf_hops",
        "Leaf-sibling links followed by batched probes instead of re-descending",
    ),
    // B+trees (pagestore::btree).
    MetricDef::counter("btree.inserts", "Entries inserted into B+tree indexes"),
    MetricDef::counter("btree.range_scans", "Range scans started on B+tree indexes"),
    MetricDef::counter(
        "btree.entries_scanned",
        "Index entries visited by range scans",
    ),
    // Write-ahead log (pagestore::wal).
    MetricDef::counter("wal.appends", "Records appended to the write-ahead log"),
    MetricDef::counter("wal.bytes", "Bytes appended to the write-ahead log"),
    MetricDef::counter("wal.fsyncs", "fsync(2) calls issued by the log"),
    MetricDef::counter("wal.commits", "Commit records appended"),
    MetricDef::counter(
        "wal.checkpoints",
        "Fuzzy checkpoints taken (log truncations)",
    ),
    MetricDef::counter(
        "wal.replayed_records",
        "Log records replayed during recovery",
    ),
    // Crash recovery (pagestore::recovery).
    MetricDef::counter(
        "recovery.runs",
        "Recovery passes that found an unclean shutdown",
    ),
    // Ingest (core, the paper's Algorithm 1).
    MetricDef::counter("ingest.observations", "Raw sensor observations ingested"),
    MetricDef::counter("ingest.segments", "PLA segments produced by ingestion"),
    MetricDef::counter("ingest.feature_rows", "Feature-space rows written"),
    // Worker pool (core::pool).
    MetricDef::counter("parallel.jobs", "Worker-pool fan-out jobs executed"),
    MetricDef::counter(
        "parallel.tasks",
        "Individual tasks dispatched to worker-pool threads",
    ),
    // Query result cache (core::cache).
    MetricDef::counter(
        "cache.hit",
        "Query results served from the epoch-tagged cache",
    ),
    MetricDef::counter("cache.miss", "Query cache lookups that missed"),
    MetricDef::counter("cache.insert", "Results inserted into the query cache"),
    MetricDef::counter("cache.evict", "Query cache entries evicted (LRU)"),
    // Self-observation: sampler (obs::series), tracing (obs::tracering)
    // and dogfooded alerting (core::alerts).
    MetricDef::counter("sampler.ticks", "Scrape passes taken by the metric sampler"),
    MetricDef::counter(
        "trace.recorded",
        "Finished requests retained in the recent-trace ring",
    ),
    MetricDef::counter(
        "trace.slow_retained",
        "Slow or erroring requests tail-sampled into the slow-trace ring",
    ),
    MetricDef::counter(
        "alert.evaluated",
        "Alert-rule evaluation passes over internal series",
    ),
    MetricDef::counter("alert.fired", "Standing drop/jump alerts fired"),
    // Standing queries (core::subscribe).
    MetricDef::counter("subscribe.registered", "Standing queries registered"),
    MetricDef::counter("subscribe.removed", "Standing queries unsubscribed"),
    MetricDef::gauge("subscribe.active", "Standing queries currently registered"),
    MetricDef::counter(
        "subscribe.features_evaluated",
        "Committed feature rows evaluated against the region index",
    ),
    MetricDef::counter(
        "subscribe.regions_tested",
        "Registered regions tested exactly (after grid pruning)",
    ),
    MetricDef::counter(
        "subscribe.cells_visited",
        "Region-index grid cells zone-tested per feature",
    ),
    MetricDef::counter(
        "notify.delivered",
        "Notifications published to subscription cursors",
    ),
    MetricDef::counter(
        "notify.deduped",
        "Matches suppressed by per-subscription pair dedup",
    ),
    MetricDef::counter(
        "notify.dropped",
        "Published notifications evicted from a bounded log",
    ),
    // HTTP server (server).
    MetricDef::counter("server.accepted", "TCP connections accepted"),
    MetricDef::counter("server.rejected", "Connections shed with 503 (queue full)"),
    MetricDef::counter(
        "server.requeued",
        "Keep-alive connections yielded back to the queue",
    ),
    MetricDef::counter("server.requests", "HTTP requests served"),
    MetricDef::counter("server.queries", "POST /query requests executed"),
    MetricDef::counter("server.bad_requests", "Requests answered 400"),
    MetricDef::counter("server.not_found", "Requests answered 404"),
    MetricDef::counter("server.errors", "Requests answered 5xx"),
    MetricDef::gauge("server.inflight", "Requests currently executing"),
    MetricDef::gauge(
        "server.queue_depth",
        "Accepted connections waiting for a worker",
    ),
    MetricDef::histogram("server.request_nanos", "Wall time per HTTP request"),
    MetricDef::histogram("server.query_nanos", "Wall time per executed query"),
    MetricDef::histogram(
        "server.flush_ms",
        "Store flush duration at drain (milliseconds)",
    ),
    // WAL shipping: primary side (server::service `/wal` routes).
    MetricDef::counter("wal.ship.requests", "GET /wal segment fetches served"),
    MetricDef::counter("wal.ship.bytes", "WAL frame bytes shipped to replicas"),
    MetricDef::counter(
        "wal.ship.restarts",
        "Ship responses telling the replica its cursor predates the log",
    ),
    // WAL shipping: replica side (server::replica).
    MetricDef::counter(
        "replica.ship_rounds",
        "Tail rounds completed by the replica",
    ),
    MetricDef::counter(
        "replica.ship_errors",
        "Tail rounds that failed (transport, status, or decode)",
    ),
    MetricDef::counter(
        "replica.frames_applied",
        "WAL frames appended to the replica's local log",
    ),
    MetricDef::counter(
        "replica.bytes_applied",
        "WAL frame bytes appended to the replica's local log",
    ),
    MetricDef::counter(
        "replica.resyncs",
        "Full snapshot re-syncs after the primary truncated past the cursor",
    ),
    MetricDef::counter(
        "replica.engine_refreshes",
        "Engine reloads after applying shipped frames",
    ),
    // Cluster router (router crate).
    MetricDef::counter("router.queries", "POST /query requests routed"),
    MetricDef::counter(
        "router.scatter_requests",
        "Per-shard sub-queries issued by scatter–gather",
    ),
    MetricDef::counter(
        "router.shard_errors",
        "Sub-queries that failed against a shard endpoint",
    ),
    MetricDef::counter(
        "router.degraded",
        "Queries answered 503 with unavailable_sensors",
    ),
    MetricDef::counter("router.bad_requests", "Router requests answered 400"),
    MetricDef::counter("router.health_probes", "Shard health probes issued"),
    MetricDef::counter(
        "router.failovers",
        "Primary→replica read failovers observed",
    ),
    MetricDef::counter("router.accepted", "TCP connections accepted by the router"),
    MetricDef::counter(
        "router.rejected",
        "Router connections shed with 503 (queue full)",
    ),
    MetricDef::histogram("router.query_nanos", "Wall time per scatter–gather query"),
    // Load generator (server::loadgen).
    MetricDef::histogram(
        "loadgen.request_nanos",
        "Client-observed wall time per request",
    ),
    // Spans: every obs::span("<name>") records into `span.<name>`.
    MetricDef::histogram("span.query", "End-to-end query execution"),
    MetricDef::histogram("span.query.plan", "Query phase: plan selection"),
    MetricDef::histogram("span.query.scan", "Query phase: sequential feature scan"),
    MetricDef::histogram("span.query.probe", "Query phase: index probe"),
    MetricDef::histogram("span.query.fetch", "Query phase: row fetch after probe"),
    MetricDef::histogram("span.query.refine", "Query phase: candidate refinement"),
    MetricDef::histogram("span.ingest.series", "Ingest of one series"),
    MetricDef::histogram("span.ingest.finish", "Ingest finalization (flush + commit)"),
    MetricDef::histogram(
        "span.ingest.build_indexes",
        "Index build over feature tables",
    ),
    MetricDef::histogram(
        "span.ingest.compact",
        "Heap rewrite into the compressed columnar page format",
    ),
];

/// Finds the registry entry for `name`, honoring `*` wildcards.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    METRICS.iter().find(|d| d.matches(name))
}

/// The generated markdown metrics table (README "Metrics reference").
///
/// `segdiff-lint` regenerates this and fails when the README section
/// between the `<!-- metrics-table:begin -->` / `end` markers differs.
pub fn markdown_table() -> String {
    let mut out = String::from("| name | kind | description |\n|---|---|---|\n");
    for d in METRICS {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            d.name,
            d.kind.label(),
            d.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcard_lookup() {
        assert!(lookup("pool.hits").is_some());
        assert!(lookup("pool.shard0.hits").is_some());
        assert!(lookup("pool.shard12.physical_writes").is_some());
        assert!(lookup("pool.shard.hits").is_none());
        assert!(lookup("pool.shard0.extra.hits").is_none());
        assert!(lookup("pool.hit").is_none());
        assert!(lookup("span.query.refine").is_some());
    }

    #[test]
    fn kinds_are_recorded() {
        assert_eq!(lookup("cache.hit").unwrap().kind, MetricKind::Counter);
        assert_eq!(lookup("server.inflight").unwrap().kind, MetricKind::Gauge);
        assert_eq!(
            lookup("pool.resident_pages").unwrap().kind,
            MetricKind::Gauge
        );
        assert_eq!(
            lookup("server.flush_ms").unwrap().kind,
            MetricKind::Histogram
        );
    }

    #[test]
    fn no_duplicate_or_overlapping_names() {
        for (i, a) in METRICS.iter().enumerate() {
            for b in METRICS.iter().skip(i + 1) {
                assert_ne!(a.name, b.name, "duplicate registry entry {}", a.name);
            }
        }
    }

    #[test]
    fn table_lists_every_entry() {
        let table = markdown_table();
        for d in METRICS {
            assert!(table.contains(d.name), "table missing {}", d.name);
        }
    }
}
