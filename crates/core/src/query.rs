//! Query plans and execution over the feature tables (§4.4).

use crate::result::SegmentPair;
use crate::tables::{boundary_from_row, pair_from_row};
use featurespace::{edge_crosses_region, FeaturePoint, QueryRegion, SearchKind};
use pagestore::{PoolStats, Result, Table};
use std::collections::HashSet;
use std::sync::Arc;

/// How a search is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPlan {
    /// Sequential scan of the feature tables, evaluating the full
    /// intersection predicate per row.
    SeqScan,
    /// B+tree range scans: one point query per stored corner column pair
    /// and one line query per boundary edge, unioned by row id — the
    /// paper's indexed execution.
    Index,
}

/// Execution metrics for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Wall-clock execution time in seconds.
    pub wall_seconds: f64,
    /// Rows (or index entries) examined.
    pub rows_considered: u64,
    /// Result tuples returned (after deduplication).
    pub results: u64,
    /// Buffer-pool activity during the query.
    pub io: PoolStats,
}

/// Runs a drop/jump search over the three per-corner-count feature tables
/// of the matching kind. Returns deduplicated, time-ordered segment pairs.
pub(crate) fn run_feature_query(
    tables: &[Arc<Table>; 3],
    region: &QueryRegion,
    plan: QueryPlan,
    rows_considered: &mut u64,
) -> Result<Vec<SegmentPair>> {
    let mut out = Vec::new();
    match plan {
        QueryPlan::SeqScan => {
            for (i, table) in tables.iter().enumerate() {
                let corners = i + 1;
                table.seq_scan(|_rid, row| {
                    *rows_considered += 1;
                    if boundary_from_row(row, corners).intersects(region) {
                        out.push(pair_from_row(row, corners));
                    }
                    true
                })?;
            }
        }
        QueryPlan::Index => {
            let mut rowbuf = Vec::new();
            for (i, table) in tables.iter().enumerate() {
                let corners = i + 1;
                let mut rids: HashSet<u64> = HashSet::new();
                // Point queries: corner j inside the region.
                for j in 1..=corners {
                    let lo = [f64::NEG_INFINITY, f64::NEG_INFINITY];
                    let hi = [region.t, f64::INFINITY];
                    table.index_scan(&format!("pt{j}"), &lo, &hi, |rid, cols| {
                        *rows_considered += 1;
                        let matches = match region.kind {
                            SearchKind::Drop => cols[1] <= region.v,
                            SearchKind::Jump => cols[1] >= region.v,
                        };
                        if matches {
                            rids.insert(rid);
                        }
                        true
                    })?;
                }
                // Line queries: edge (j, j+1) crosses the region with both
                // ends outside.
                for j in 1..corners {
                    let lo = [f64::NEG_INFINITY; 4];
                    let hi = [region.t, f64::INFINITY, f64::INFINITY, f64::INFINITY];
                    table.index_scan(&format!("ln{j}"), &lo, &hi, |rid, cols| {
                        *rows_considered += 1;
                        let p1 = FeaturePoint::new(cols[0], cols[1]);
                        let p2 = FeaturePoint::new(cols[2], cols[3]);
                        if edge_crosses_region(p1, p2, region) {
                            rids.insert(rid);
                        }
                        true
                    })?;
                }
                for rid in rids {
                    table.fetch(rid, &mut rowbuf)?;
                    out.push(pair_from_row(&rowbuf, corners));
                }
            }
        }
    }
    crate::result::sort_dedup(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_comparable() {
        assert_ne!(QueryPlan::SeqScan, QueryPlan::Index);
    }

    #[test]
    fn stats_default_zeroed() {
        let s = QueryStats::default();
        assert_eq!(s.rows_considered, 0);
        assert_eq!(s.results, 0);
        assert_eq!(s.wall_seconds, 0.0);
    }
}
