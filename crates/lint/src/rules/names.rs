//! Rule L4: every metric name published through `obs` must exist in
//! the `crates/obs/src/names.rs` registry, every registry entry must be
//! referenced by some call site, and the README metrics table must be
//! regenerated from the registry.
//!
//! Call sites are collected lexically from non-test code:
//! * `.counter("name")` / `.histogram("name")` — exact names;
//! * `.counter(&format!("{prefix}.hits"))` — patterns: each `{…}`
//!   interpolation becomes a `*` wildcard;
//! * `span("name")` — the histogram `span.name`.
//!
//! Phase spans are started through a variable (`obs::span(name)` with
//! `name = "query.plan"`), so for the reverse check a `span.*` registry
//! entry also counts as referenced when its name (with or without the
//! `span.` prefix) appears as any string literal in production code.

use crate::config::{METRICS_TABLE_BEGIN, METRICS_TABLE_END, NAMES_RS_PATH};
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, TokKind};
use std::collections::HashSet;

/// Counter, gauge, or histogram, as implied by the call site /
/// registry ctor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `.counter(…)` / `MetricDef::counter(…)`.
    Counter,
    /// `.gauge(…)` / `MetricDef::gauge(…)`.
    Gauge,
    /// `.histogram(…)` / `span(…)` / `MetricDef::histogram(…)`.
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One metric name use in the codebase.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Exact name, or a `*`-wildcard pattern from a `format!` literal.
    pub name: String,
    /// Whether `name` contains wildcards.
    pub is_pattern: bool,
    /// Counter or histogram.
    pub kind: Kind,
    /// Location.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One parsed registry entry (`MetricDef::counter("…", "…")`).
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// Registered name (may contain one `*`).
    pub name: String,
    /// Counter or histogram.
    pub kind: Kind,
    /// Help text (third column of the generated table).
    pub help: String,
    /// Line in `names.rs`.
    pub line: u32,
}

/// Per-file collection output, merged by [`reconcile`].
#[derive(Debug, Default)]
pub struct Collected {
    /// Metric call sites.
    pub sites: Vec<CallSite>,
    /// All production string literals (reverse check for span names).
    pub literals: HashSet<String>,
}

/// Collects call sites and literals from one file's non-test code.
pub fn collect(ctx: &FileCtx, into: &mut Collected) {
    if ctx.test_file || ctx.path == NAMES_RS_PATH {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Str && !ctx.in_test(t.line) {
            into.literals.insert(t.str_value(ctx.src));
        }
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let name = t.text(ctx.src);
        let kind = match name {
            "counter" => Kind::Counter,
            "gauge" => Kind::Gauge,
            "histogram" => Kind::Histogram,
            "span" => Kind::Histogram,
            _ => continue,
        };
        // `.counter(` / `.histogram(` methods; bare `span(` calls
        // (`obs::span("x")`) — a leading `.` would be a method named
        // span, which doesn't exist.
        let is_method = i > 0 && toks[i - 1].kind == TokKind::Punct(b'.');
        if name == "span" && is_method {
            continue;
        }
        if name != "span" && !is_method {
            continue;
        }
        if toks.get(i + 1).map(|n| n.kind) != Some(TokKind::Punct(b'(')) {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        let (value, is_pattern) = match arg.kind {
            TokKind::Str => (arg.str_value(ctx.src), false),
            // `&format!("…", …)` — take the format literal.
            TokKind::Punct(b'&') => {
                let fmt = toks.get(i + 3).zip(toks.get(i + 4)).zip(toks.get(i + 5));
                match fmt {
                    Some(((f, bang), op))
                        if f.kind == TokKind::Ident
                            && f.text(ctx.src) == "format"
                            && bang.kind == TokKind::Punct(b'!')
                            && op.kind == TokKind::Punct(b'(') =>
                    {
                        match toks.get(i + 6) {
                            Some(s) if s.kind == TokKind::Str => {
                                (fmt_to_pattern(&s.str_value(ctx.src)), true)
                            }
                            _ => continue,
                        }
                    }
                    _ => continue,
                }
            }
            _ => continue,
        };
        let value = match (name, value) {
            ("span", v) => format!("span.{v}"),
            (_, v) => v,
        };
        into.sites.push(CallSite {
            name: value,
            is_pattern,
            kind,
            file: ctx.path.clone(),
            line: t.line,
            col: t.col,
        });
    }
}

/// `{prefix}.hits` → `*.hits`; `span.{}` → `span.*`.
fn fmt_to_pattern(fmt: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in fmt.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Parses the registry entries out of `names.rs` source text.
pub fn parse_registry(src: &str) -> Vec<RegistryEntry> {
    let toks = lex(src);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let kind = match t.text(src) {
            "counter" => Kind::Counter,
            "gauge" => Kind::Gauge,
            "histogram" => Kind::Histogram,
            _ => continue,
        };
        // MetricDef :: counter ( "name" , "help" )
        let preceded = i >= 3
            && toks[i - 1].kind == TokKind::Punct(b':')
            && toks[i - 2].kind == TokKind::Punct(b':')
            && toks[i - 3].kind == TokKind::Ident
            && toks[i - 3].text(src) == "MetricDef";
        if !preceded {
            continue;
        }
        let (Some(op), Some(name), Some(comma), Some(help)) = (
            toks.get(i + 1),
            toks.get(i + 2),
            toks.get(i + 3),
            toks.get(i + 4),
        ) else {
            continue;
        };
        if op.kind != TokKind::Punct(b'(')
            || name.kind != TokKind::Str
            || comma.kind != TokKind::Punct(b',')
            || help.kind != TokKind::Str
        {
            continue;
        }
        out.push(RegistryEntry {
            name: name.str_value(src),
            kind,
            help: help.str_value(src),
            line: name.line,
        });
    }
    out
}

/// The markdown table generated from the registry — must stay
/// byte-identical to `obs::names::markdown_table()` (an integration
/// test in the facade crate pins the two together).
pub fn markdown_table(entries: &[RegistryEntry]) -> String {
    let mut out = String::from("| name | kind | description |\n|---|---|---|\n");
    for e in entries {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            e.name,
            e.kind.label(),
            e.help
        ));
    }
    out
}

/// Whether registry entry `entry` covers metric `name` (wildcard-aware,
/// same semantics as `obs::names::MetricDef::matches`).
fn entry_matches(entry: &str, name: &str) -> bool {
    match entry.split_once('*') {
        None => entry == name,
        Some((prefix, suffix)) => {
            name.len() > prefix.len() + suffix.len()
                && name.starts_with(prefix)
                && name.ends_with(suffix)
                && !name[prefix.len()..name.len() - suffix.len()].contains('.')
        }
    }
}

/// Cross-file reconciliation: forward check (sites → registry),
/// reverse check (registry → sites/literals), README drift.
pub fn reconcile(
    collected: &Collected,
    registry: &[RegistryEntry],
    readme: Option<&str>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Forward: every call site resolves in the registry.
    for site in &collected.sites {
        let matched = registry.iter().any(|e| {
            e.kind == site.kind
                && if site.is_pattern {
                    // A format-pattern site references every entry the
                    // pattern covers; it must cover at least one.
                    pattern_overlaps(&site.name, &e.name)
                } else {
                    entry_matches(&e.name, &site.name)
                }
        });
        if !matched {
            out.push(Diagnostic {
                rule: Rule::L4,
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} `{}` is not in the obs name registry",
                    site.kind.label(),
                    site.name
                ),
                help: format!("add it to {NAMES_RS_PATH} or fix the typo"),
            });
        }
    }

    // Reverse: every registry entry is referenced somewhere.
    for e in registry {
        let referenced = collected.sites.iter().any(|s| {
            s.kind == e.kind
                && if s.is_pattern {
                    pattern_overlaps(&s.name, &e.name)
                } else {
                    entry_matches(&e.name, &s.name)
                }
        }) || (e.name.starts_with("span.")
            && (collected.literals.contains(&e.name)
                || collected
                    .literals
                    .contains(e.name.trim_start_matches("span."))));
        if !referenced {
            out.push(Diagnostic {
                rule: Rule::L4,
                file: NAMES_RS_PATH.to_string(),
                line: e.line,
                col: 1,
                message: format!("registry entry `{}` is never referenced", e.name),
                help: "remove the dead entry or wire the metric up".to_string(),
            });
        }
    }

    // README drift: the generated table must appear verbatim between
    // the markers.
    if let Some(readme) = readme {
        let expected = markdown_table(registry);
        match extract_between(readme, METRICS_TABLE_BEGIN, METRICS_TABLE_END) {
            None => out.push(Diagnostic {
                rule: Rule::L4,
                file: "README.md".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "README.md lacks the `{METRICS_TABLE_BEGIN}` / `{METRICS_TABLE_END}` markers"
                ),
                help: "add the markers and run `segdiff-lint --emit-metrics-table`".to_string(),
            }),
            Some((line, actual)) => {
                if actual.trim() != expected.trim() {
                    out.push(Diagnostic {
                        rule: Rule::L4,
                        file: "README.md".to_string(),
                        line,
                        col: 1,
                        message: "README metrics table is out of sync with the registry".to_string(),
                        help: "replace the table with the output of `segdiff-lint --emit-metrics-table`"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}

/// Do a `*`-pattern and a registry name (itself possibly wildcarded)
/// overlap? Conservative: compare the non-wildcard prefix/suffix.
fn pattern_overlaps(pattern: &str, entry: &str) -> bool {
    let (pp, ps) = pattern.split_once('*').unwrap_or((pattern, ""));
    let (ep, es) = entry.split_once('*').unwrap_or((entry, ""));
    let prefix_ok = pp.starts_with(ep) || ep.starts_with(pp);
    let suffix_ok = ps.ends_with(es) || es.ends_with(ps);
    prefix_ok && suffix_ok
}

/// Returns (1-based line after the begin marker, text between markers).
fn extract_between<'a>(text: &'a str, begin: &str, end: &str) -> Option<(u32, &'a str)> {
    let b = text.find(begin)?;
    let after = b + begin.len();
    let e = text[after..].find(end)? + after;
    let line = text[..after].lines().count() as u32 + 1;
    Some((line, &text[after..e]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const REGISTRY_SRC: &str = r#"
pub const METRICS: &[MetricDef] = &[
    MetricDef::counter("pool.hits", "Pool hits"),
    MetricDef::counter("pool.shard*.hits", "Per-shard hits"),
    MetricDef::gauge("pool.level", "Pool level"),
    MetricDef::histogram("span.query", "Query time"),
    MetricDef::histogram("span.query.plan", "Plan phase"),
    MetricDef::counter("dead.metric", "Never used"),
];
"#;

    fn collect_src(path: &str, src: &str) -> Collected {
        let mut c = Collected::default();
        collect(&FileCtx::new(path, src), &mut c);
        c
    }

    #[test]
    fn registry_parses() {
        let reg = parse_registry(REGISTRY_SRC);
        assert_eq!(reg.len(), 6);
        assert_eq!(reg[0].name, "pool.hits");
        assert_eq!(reg[0].kind, Kind::Counter);
        assert_eq!(reg[2].kind, Kind::Gauge);
        assert_eq!(reg[3].kind, Kind::Histogram);
        assert_eq!(reg[1].help, "Per-shard hits");
    }

    #[test]
    fn forward_check_flags_typo() {
        let reg = parse_registry(REGISTRY_SRC);
        let c = collect_src(
            "crates/x/src/lib.rs",
            r#"fn f() { r.counter("pool.hit").inc(); }"#,
        );
        let d = reconcile(&c, &reg, None);
        assert!(d.iter().any(|d| d.message.contains("`pool.hit` is not")));
    }

    #[test]
    fn wildcard_and_pattern_sites_resolve() {
        let reg = parse_registry(REGISTRY_SRC);
        let src = r#"
fn f(prefix: &str, i: usize) {
    r.counter("pool.hits").inc();
    r.counter(&format!("{prefix}.hits")).inc();
    r.gauge("pool.level").set(1);
    let s = span("query");
}
"#;
        let c = collect_src("crates/x/src/lib.rs", src);
        let d = reconcile(&c, &reg, None);
        assert!(d.iter().all(|d| !d.message.contains("is not in")), "{d:?}");
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let reg = parse_registry(REGISTRY_SRC);
        let c = collect_src(
            "crates/x/src/lib.rs",
            r#"fn f() { r.histogram("pool.hits").record(1); }"#,
        );
        let d = reconcile(&c, &reg, None);
        assert_eq!(d.iter().filter(|d| d.message.contains("is not")).count(), 1);
    }

    #[test]
    fn reverse_check_flags_dead_entry_and_honors_literals() {
        let reg = parse_registry(REGISTRY_SRC);
        let src = r#"
fn f() {
    r.counter("pool.hits").inc();
    r.counter(&format!("pool.shard{i}.hits")).inc();
    r.gauge("pool.level").set(1);
    let s = span("query");
    let phase = Phase::start(db, "query.plan");
}
"#;
        let c = collect_src("crates/x/src/lib.rs", src);
        let d = reconcile(&c, &reg, None);
        let dead: Vec<_> = d
            .iter()
            .filter(|d| d.message.contains("never referenced"))
            .collect();
        assert_eq!(dead.len(), 1, "{d:?}");
        assert!(dead[0].message.contains("dead.metric"));
    }

    #[test]
    fn test_code_is_not_collected() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { r.counter(\"bogus\").inc(); }\n}\n";
        let c = collect_src("crates/x/src/lib.rs", src);
        assert!(c.sites.is_empty());
    }

    #[test]
    fn readme_drift() {
        let reg = parse_registry(REGISTRY_SRC);
        let table = markdown_table(&reg);
        let good =
            format!("# Doc\n<!-- metrics-table:begin -->\n{table}<!-- metrics-table:end -->\n");
        let c = Collected::default();
        let d = reconcile(&c, &reg, Some(&good));
        assert!(
            !d.iter().any(|d| d.file == "README.md"),
            "in-sync table accepted: {d:?}"
        );
        let stale = good.replace("Pool hits", "Old text");
        let d = reconcile(&c, &reg, Some(&stale));
        assert!(d.iter().any(|d| d.message.contains("out of sync")));
        let d = reconcile(&c, &reg, Some("no markers"));
        assert!(d.iter().any(|d| d.message.contains("lacks the")));
    }
}
