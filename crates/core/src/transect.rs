//! Managing a whole sensor network: one SegDiff index per sensor.
//!
//! The paper's deployment is twenty-five sensors across a canyon, and its
//! §6.3 reports that "SegDiff can return results for all sensors within 10
//! seconds". [`TransectIndex`] is that operational layer: a directory of
//! per-sensor [`SegDiffIndex`]es sharing one configuration, with fan-out
//! queries executed across sensors in parallel.

use crate::config::SegDiffConfig;
use crate::index::SegDiffIndex;
use crate::query::{QueryPlan, QueryStats};
use crate::result::SegmentPair;
use crate::stats::SegDiffStats;
use featurespace::QueryRegion;
use pagestore::{Result, StoreError};
use sensorgen::TimeSeries;
use std::path::{Path, PathBuf};

/// A collection of per-sensor SegDiff indexes under one root directory
/// (`<root>/sensor-<k>/`).
///
/// An instance may hold the whole transect or, for a shard process, any
/// subset of its sensors ([`TransectIndex::open_subset`]): `sensors[i]`
/// belongs to *global* sensor id `ids[i]`, and all public APIs address
/// sensors by global id so a shard and a full open agree on names.
pub struct TransectIndex {
    root: PathBuf,
    /// Ascending global sensor ids, parallel to `sensors`.
    ids: Vec<u32>,
    sensors: Vec<SegDiffIndex>,
}

impl TransectIndex {
    /// Creates indexes for `n_sensors` sensors under `root`. The configured
    /// buffer pool is divided evenly across sensors.
    pub fn create(root: &Path, config: SegDiffConfig, n_sensors: u32) -> Result<Self> {
        assert!(n_sensors > 0, "need at least one sensor");
        let per_sensor = (config.pool_pages / n_sensors as usize).max(64);
        let config = config.with_pool_pages(per_sensor);
        let mut sensors = Vec::with_capacity(n_sensors as usize);
        for k in 0..n_sensors {
            sensors.push(SegDiffIndex::create(
                &Self::sensor_dir(root, k),
                config.clone(),
            )?);
        }
        Ok(Self {
            root: root.to_path_buf(),
            ids: (0..n_sensors).collect(),
            sensors,
        })
    }

    /// Reopens a transect previously persisted with
    /// [`TransectIndex::finish_all`]. Sensors are discovered by scanning
    /// the directory for `sensor-<k>` entries, so a root holding a sparse
    /// subset (e.g. one shard's share of a transect) opens too; ids are
    /// sorted ascending.
    pub fn open(root: &Path, pool_pages: usize) -> Result<Self> {
        let ids = Self::scan_ids(root)?;
        if ids.is_empty() {
            return Err(StoreError::NotFound(format!(
                "no sensor indexes under {}",
                root.display()
            )));
        }
        Self::open_ids(root, pool_pages, ids)
    }

    /// Opens only the named global sensor ids under `root` (a shard's
    /// view of a shared transect directory). Ids are deduplicated and
    /// sorted; every named `sensor-<k>` directory must exist.
    pub fn open_subset(root: &Path, pool_pages: usize, ids: &[u32]) -> Result<Self> {
        let mut ids = ids.to_vec();
        ids.sort_unstable();
        ids.dedup();
        if ids.is_empty() {
            return Err(StoreError::NotFound(format!(
                "empty sensor subset for {}",
                root.display()
            )));
        }
        for &k in &ids {
            if !Self::sensor_dir(root, k).exists() {
                return Err(StoreError::NotFound(format!(
                    "no sensor-{k} under {}",
                    root.display()
                )));
            }
        }
        Self::open_ids(root, pool_pages, ids)
    }

    fn open_ids(root: &Path, pool_pages: usize, ids: Vec<u32>) -> Result<Self> {
        let mut sensors = Vec::with_capacity(ids.len());
        for &k in &ids {
            sensors.push(SegDiffIndex::open(
                &Self::sensor_dir(root, k),
                pool_pages.max(64),
            )?);
        }
        Ok(Self {
            root: root.to_path_buf(),
            ids,
            sensors,
        })
    }

    /// Global sensor ids present under `root`, ascending.
    pub fn scan_ids(root: &Path) -> Result<Vec<u32>> {
        let mut ids = Vec::new();
        let entries = match std::fs::read_dir(root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ids),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            if let Some(k) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("sensor-"))
                .and_then(|n| n.parse::<u32>().ok())
            {
                ids.push(k);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    fn sensor_dir(root: &Path, sensor: u32) -> PathBuf {
        root.join(format!("sensor-{sensor}"))
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of sensors in this instance (the subset, for a shard).
    pub fn num_sensors(&self) -> u32 {
        self.sensors.len() as u32
    }

    /// Global sensor ids in this instance, ascending and parallel to the
    /// per-sensor result lists of [`TransectIndex::query_all`].
    pub fn sensor_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Position of global sensor id `sensor`, or an error naming it.
    fn pos(&self, sensor: u32) -> Result<usize> {
        self.ids
            .binary_search(&sensor)
            .map_err(|_| StoreError::NotFound(format!("sensor {sensor} not in this transect")))
    }

    /// The index for global sensor id `sensor`.
    pub fn sensor(&self, sensor: u32) -> Result<&SegDiffIndex> {
        Ok(&self.sensors[self.pos(sensor)?])
    }

    /// Ingests one observation for global sensor id `sensor`.
    pub fn push(&mut self, sensor: u32, t: f64, v: f64) -> Result<()> {
        let i = self.pos(sensor)?;
        self.sensors[i].push(t, v)
    }

    /// Ingests a whole series for global sensor id `sensor`.
    pub fn ingest_series(&mut self, sensor: u32, series: &TimeSeries) -> Result<()> {
        let i = self.pos(sensor)?;
        self.sensors[i].ingest_series(series)
    }

    /// Finishes and persists every sensor.
    pub fn finish_all(&mut self) -> Result<()> {
        for s in &mut self.sensors {
            s.finish()?;
        }
        Ok(())
    }

    /// Builds the query B+trees on every sensor.
    pub fn build_indexes_all(&self) -> Result<()> {
        for s in &self.sensors {
            s.build_indexes()?;
        }
        Ok(())
    }

    /// Queries one sensor by global id.
    pub fn query_sensor(
        &self,
        sensor: u32,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Vec<SegmentPair>, QueryStats)> {
        self.sensors[self.pos(sensor)?].query(region, plan)
    }

    /// Queries every sensor in parallel (one worker per sensor); returns
    /// per-sensor results plus merged execution statistics (wall time =
    /// slowest sensor, the rest summed).
    pub fn query_all(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Vec<Vec<SegmentPair>>, QueryStats)> {
        self.query_all_with_threads(region, plan, self.sensors.len())
    }

    /// Like [`TransectIndex::query_all`], but fans the per-sensor queries
    /// out on a fixed pool of at most `threads` worker threads
    /// ([`crate::pool::run_on_pool`]). Results are identical for every
    /// thread count — per-sensor execution is independent and the merge
    /// preserves sensor order — which the integration tests assert.
    pub fn query_all_with_threads(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
        threads: usize,
    ) -> Result<(Vec<Vec<SegmentPair>>, QueryStats)> {
        let outcomes: Vec<Result<(Vec<SegmentPair>, QueryStats)>> =
            crate::pool::run_on_pool(threads.max(1), self.sensors.len(), |k| {
                self.sensors[k].query(region, plan)
            });
        let mut results = Vec::with_capacity(outcomes.len());
        let mut merged = QueryStats::default();
        for outcome in outcomes {
            let (r, s) = outcome?;
            merged.wall_seconds = merged.wall_seconds.max(s.wall_seconds);
            merged.rows_considered += s.rows_considered;
            merged.results += s.results;
            merged.io = merged.io.merged(&s.io);
            // Merge phases by name: rows and I/O sum across sensors; wall
            // time takes the slowest sensor (phases ran in parallel).
            for phase in s.phases {
                match merged.phases.iter_mut().find(|p| p.name == phase.name) {
                    Some(m) => {
                        m.wall_seconds = m.wall_seconds.max(phase.wall_seconds);
                        m.rows_in += phase.rows_in;
                        m.rows_out += phase.rows_out;
                        m.io = m.io.merged(&phase.io);
                    }
                    None => merged.phases.push(phase),
                }
            }
            results.push(r);
        }
        Ok((results, merged))
    }

    /// Queries only the named global sensor ids on the worker pool,
    /// returning `(global id, results)` pairs in ascending id order —
    /// the shape [`crate::result::merge_sharded`] consumes. Stats merge
    /// as in [`TransectIndex::query_all_with_threads`].
    pub fn query_subset_with_threads(
        &self,
        ids: &[u32],
        region: &QueryRegion,
        plan: QueryPlan,
        threads: usize,
    ) -> Result<(crate::result::ShardResults, QueryStats)> {
        let mut wanted = ids.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let mut positions = Vec::with_capacity(wanted.len());
        for &id in &wanted {
            positions.push(self.pos(id)?);
        }
        let outcomes: Vec<Result<(Vec<SegmentPair>, QueryStats)>> =
            crate::pool::run_on_pool(threads.max(1), positions.len(), |i| {
                self.sensors[positions[i]].query(region, plan)
            });
        let mut results = Vec::with_capacity(outcomes.len());
        let mut merged = QueryStats::default();
        for (id, outcome) in wanted.into_iter().zip(outcomes) {
            let (r, s) = outcome?;
            merged.wall_seconds = merged.wall_seconds.max(s.wall_seconds);
            merged.rows_considered += s.rows_considered;
            merged.results += s.results;
            merged.io = merged.io.merged(&s.io);
            results.push((id, r));
        }
        Ok((results, merged))
    }

    /// Sum of the per-sensor invalidation epochs; changes whenever any
    /// sensor's data changes, so it can version fan-out query responses
    /// the way [`SegDiffIndex::epoch`] versions single-sensor ones.
    pub fn epoch(&self) -> u64 {
        self.sensors.iter().map(|s| s.epoch()).sum()
    }

    /// Flushes every sensor's database (dirty pages + checkpoint).
    pub fn flush_all(&self) -> Result<()> {
        for s in &self.sensors {
            s.database().flush()?;
        }
        Ok(())
    }

    /// Per-sensor statistics.
    pub fn stats(&self) -> Vec<SegDiffStats> {
        self.sensors.iter().map(|s| s.stats()).collect()
    }

    /// Aggregate feature payload bytes across sensors.
    pub fn total_feature_bytes(&self) -> u64 {
        self.sensors
            .iter()
            .map(|s| s.stats().feature_payload_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorgen::{generate_sensor, CadTransectConfig, HOUR};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-trans-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn build(tag: &str, sensors: u32, days: u32) -> (TransectIndex, PathBuf) {
        let root = tmpdir(tag);
        let cfg = CadTransectConfig::default()
            .with_days(days)
            .with_sensors(sensors)
            .clean();
        let mut t = TransectIndex::create(&root, SegDiffConfig::default(), sensors).unwrap();
        for k in 0..sensors {
            let series = generate_sensor(&cfg, k, 7);
            t.ingest_series(k, &series).unwrap();
        }
        t.finish_all().unwrap();
        (t, root)
    }

    #[test]
    fn fan_out_query_matches_per_sensor() {
        let (t, root) = build("fanout", 4, 4);
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (all, merged) = t.query_all(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(all.len(), 4);
        let mut total = 0u64;
        for (k, per) in all.iter().enumerate() {
            let (single, _) = t
                .query_sensor(k as u32, &region, QueryPlan::SeqScan)
                .unwrap();
            assert_eq!(per, &single, "sensor {k}");
            total += per.len() as u64;
        }
        assert_eq!(merged.results, total);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Results are identical whatever the worker-pool size — the
    /// acceptance criterion for parallel fan-out.
    #[test]
    fn query_all_is_thread_count_invariant() {
        let (t, root) = build("threads", 5, 3);
        t.build_indexes_all().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        for plan in [QueryPlan::SeqScan, QueryPlan::Index] {
            let (r1, s1) = t.query_all_with_threads(&region, plan, 1).unwrap();
            let (r8, s8) = t.query_all_with_threads(&region, plan, 8).unwrap();
            let (rd, _) = t.query_all(&region, plan).unwrap();
            assert_eq!(r1, r8, "{plan:?}: thread count changed results");
            assert_eq!(r1, rd, "{plan:?}: default fan-out disagrees");
            assert_eq!(s1.results, s8.results);
            assert_eq!(s1.rows_considered, s8.rows_considered);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_preserves_everything() {
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (before, root) = {
            let (t, root) = build("reopen", 3, 4);
            let (results, _) = t.query_all(&region, QueryPlan::SeqScan).unwrap();
            (results, root)
        };
        let t = TransectIndex::open(&root, 256).unwrap();
        assert_eq!(t.num_sensors(), 3);
        let (after, _) = t.query_all(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&root).ok();
    }

    /// A shard opening only its share of a shared transect root answers
    /// exactly like the full open does for those sensors, and the
    /// sharded union over a disjoint partition reproduces the
    /// single-process flatten byte for byte.
    #[test]
    fn subset_union_matches_full_open() {
        let (full, root) = build("subset", 6, 3);
        full.build_indexes_all().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (all, _) = full.query_all(&region, QueryPlan::SeqScan).unwrap();
        let flat: Vec<SegmentPair> = all.iter().flatten().copied().collect();
        // Interleaved partition, as a hash ring would produce.
        let shards: [&[u32]; 3] = [&[0, 3], &[1, 4], &[2, 5]];
        let mut parts = Vec::new();
        for ids in shards {
            let shard = TransectIndex::open_subset(&root, 256, ids).unwrap();
            assert_eq!(shard.sensor_ids(), ids);
            let (per, _) = shard
                .query_subset_with_threads(ids, &region, QueryPlan::SeqScan, 2)
                .unwrap();
            parts.extend(per);
        }
        let merged = crate::result::merge_sharded(parts);
        assert_eq!(merged, flat);
        assert!(!merged.is_empty(), "query must match something");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn subset_rejects_unknown_sensors() {
        let (t, root) = build("subset-miss", 2, 2);
        drop(t);
        assert!(TransectIndex::open_subset(&root, 256, &[0, 9]).is_err());
        let shard = TransectIndex::open_subset(&root, 256, &[1]).unwrap();
        assert!(shard
            .query_sensor(0, &QueryRegion::drop(HOUR, -3.0), QueryPlan::SeqScan,)
            .is_err());
        assert_eq!(TransectIndex::scan_ids(&root).unwrap(), vec![0, 1]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_missing_root_errors() {
        let root = tmpdir("missing");
        assert!(TransectIndex::open(&root, 256).is_err());
    }

    #[test]
    fn stats_cover_all_sensors() {
        let (t, root) = build("stats", 3, 2);
        let stats = t.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.n_segments > 0));
        assert!(t.total_feature_bytes() > 0);
        std::fs::remove_dir_all(&root).ok();
    }
}
