//! Concurrency stress tests: many reader threads over one shared pool.
//!
//! These tests exist to catch two classes of bug the striped buffer pool
//! could introduce: `PoolStats` miscounting (a hit or miss dropped or
//! double-counted when shards race) and shard-eviction races (a frame
//! evicted by one thread while another still believes it holds the page).
//! They drive real B+tree range probes and heap fetches — the same access
//! pattern a concurrent query service produces.

use crate::buffer::PoolStats;
use crate::db::{Database, TableSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pagestore-stress-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Builds a table big enough that a small pool must evict constantly:
/// rows are `(k, k*2, k*3)` with an index on the first column, so every
/// probe's results are self-checking.
fn build_db(dir: &Path, rows: u64, pool_pages: usize) -> Arc<Database> {
    let db = Database::create(dir, pool_pages).unwrap();
    let t = db
        .create_table(TableSpec::new("stress", &["k", "a", "b"]))
        .unwrap();
    for k in 0..rows {
        t.insert(&[k as f64, (k * 2) as f64, (k * 3) as f64])
            .unwrap();
    }
    db.create_index("stress", "by_k", &["k"]).unwrap();
    db.flush().unwrap();
    db
}

/// N reader threads doing B+tree range probes plus heap fetches over one
/// shared pool. Every fetched row is validated against its key, which
/// fails loudly if an eviction race ever hands a thread the wrong page
/// image; afterwards the pool counters must obey the conservation laws
/// and the per-shard counters must tile the global totals.
#[test]
fn concurrent_probes_and_fetches_over_shared_pool() {
    let dir = tmpdir("probes");
    let rows: u64 = 20_000;
    // A pool far smaller than the data set, so eviction is constant.
    let db = build_db(&dir, rows, 64);
    let t = db.table("stress").unwrap();
    db.clear_cache().unwrap();
    db.pool().reset_stats();

    let threads = 8;
    let probes_per_thread = 60;
    std::thread::scope(|s| {
        for ti in 0..threads {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let mut rowbuf = Vec::new();
                for p in 0..probes_per_thread {
                    // Spread the probe windows so threads overlap but do
                    // not all walk the same leaves in lockstep.
                    let lo = ((ti * 131 + p * 977) as u64 * 37) % (rows - 200);
                    let hi = lo + 150;
                    let mut seen = 0u64;
                    t.index_scan("by_k", &[lo as f64], &[hi as f64], |rid, cols| {
                        let k = cols[0];
                        assert!((lo as f64..=hi as f64).contains(&k), "key out of range");
                        t.fetch(rid, &mut rowbuf).unwrap();
                        assert_eq!(rowbuf[0], k, "heap row disagrees with index key");
                        assert_eq!(rowbuf[1], k * 2.0, "corrupt column a for k={k}");
                        assert_eq!(rowbuf[2], k * 3.0, "corrupt column b for k={k}");
                        seen += 1;
                        true
                    })
                    .unwrap();
                    assert_eq!(seen, 151, "range [{lo}, {hi}] returned {seen} rows");
                }
            });
        }
    });

    let s = db.stats();
    // Conservation: this workload only reads, and every miss does exactly
    // one physical read. A lost or double-counted increment breaks these.
    assert_eq!(s.physical_reads, s.misses, "{s:?}");
    assert_eq!(
        s.physical_writes, 0,
        "read-only workload wrote pages: {s:?}"
    );
    assert!(s.hits > 0 && s.misses > 0, "{s:?}");
    assert!(s.evictions > 0, "pool never evicted; enlarge the workload");
    // The per-shard counters must tile the global totals exactly.
    let mut merged = PoolStats::default();
    for sh in db.pool().shard_stats() {
        merged = merged.merged(&sh);
    }
    assert_eq!(merged, s, "shard stats do not tile the pool stats");
    std::fs::remove_dir_all(&dir).ok();
}

/// Pool counter deltas must still tile per-query totals when queries run
/// concurrently: each thread snapshots the pool around its own probes,
/// and the sum of all per-thread deltas must equal the global delta.
/// (Per-thread deltas include activity from *other* threads, so instead
/// of comparing deltas pairwise, the test brackets the whole concurrent
/// phase and checks that the global delta equals the merged per-shard
/// delta and obeys hit/miss accounting under contention.)
#[test]
fn counter_deltas_tile_under_concurrency() {
    let dir = tmpdir("deltas");
    let rows: u64 = 8_000;
    let db = build_db(&dir, rows, 256);
    let t = db.table("stress").unwrap();
    db.clear_cache().unwrap();

    let before = db.stats();
    let shard_before = db.pool().shard_stats();
    let threads = 6;
    let total_requests: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let mut requests = 0u64;
                    for p in 0..40u64 {
                        let lo = ((ti as u64 * 997 + p * 613) * 11) % (rows - 100);
                        t.index_scan("by_k", &[lo as f64], &[(lo + 99) as f64], |_, _| {
                            requests += 1;
                            true
                        })
                        .unwrap();
                    }
                    requests
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(total_requests, threads as u64 * 40 * 100);

    let after = db.stats();
    let delta = after.since(&before);
    // Logical requests are hits + misses; nothing may be lost when six
    // threads hammer the counters concurrently.
    assert!(delta.hits + delta.misses > 0);
    assert_eq!(delta.physical_reads, delta.misses, "{delta:?}");
    // Merge the per-shard deltas; they must reproduce the global delta
    // component for component.
    let shard_after = db.pool().shard_stats();
    let mut merged = PoolStats::default();
    for (a, b) in shard_after.iter().zip(shard_before.iter()) {
        merged = merged.merged(&a.since(b));
    }
    assert_eq!(merged, delta, "per-shard deltas do not tile the global");
    std::fs::remove_dir_all(&dir).ok();
}

/// Readers race against concurrent eviction pressure from a writer that
/// keeps allocating and dirtying fresh pages in a second table. Dirty
/// eviction must never corrupt the readers' view.
#[test]
fn readers_survive_dirty_eviction_pressure() {
    let dir = tmpdir("dirty");
    let rows: u64 = 4_000;
    let db = build_db(&dir, rows, 32);
    let spill = db
        .create_table(TableSpec::new("spill", &["x", "y"]))
        .unwrap();
    let t = db.table("stress").unwrap();
    db.clear_cache().unwrap();

    std::thread::scope(|s| {
        // Writer: constant dirty-page churn through the same small pool.
        let spill = Arc::clone(&spill);
        s.spawn(move || {
            for i in 0..4_000u64 {
                spill.insert(&[i as f64, (i ^ 0xff) as f64]).unwrap();
            }
        });
        for ti in 0..4 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let mut rowbuf = Vec::new();
                for p in 0..30u64 {
                    let lo = ((ti as u64 * 389 + p * 211) * 7) % (rows - 64);
                    t.index_scan("by_k", &[lo as f64], &[(lo + 63) as f64], |rid, cols| {
                        t.fetch(rid, &mut rowbuf).unwrap();
                        assert_eq!(rowbuf[0], cols[0]);
                        assert_eq!(rowbuf[1], cols[0] * 2.0);
                        true
                    })
                    .unwrap();
                }
            });
        }
    });

    assert_eq!(spill.num_rows(), 4_000);
    let s = db.stats();
    assert!(s.evictions > 0, "no eviction pressure: {s:?}");
    assert!(s.physical_writes > 0, "dirty pages never hit the disk");
    std::fs::remove_dir_all(&dir).ok();
}
