//! The individual lint rules. The per-file rules are pure functions
//! over a [`crate::context::FileCtx`] (plus shared config for
//! L3/L7); the cross-file rules consume the assembled
//! [`crate::callgraph::CallGraph`] (L6) or the artifact sources (L4,
//! L8) — so the unit tests feed them fixture snippets directly.
//! Every rule emits unfiltered diagnostics; suppression is applied
//! centrally by [`crate::context::SuppressionIndex`].

pub mod blocking;
pub mod contracts;
pub mod discard;
pub mod interlock;
pub mod locks;
pub mod names;
pub mod panics;
pub mod safety;
