//! Snapshot exporters.
//!
//! An [`Exporter`] renders a [`MetricsSnapshot`] to a string. Two
//! implementations ship with the crate: [`TextExporter`] for humans and
//! [`JsonLinesExporter`] emitting one JSON object per metric, suitable
//! for piping into log collectors.

use crate::json_impl::Json;
use crate::metrics::MetricsSnapshot;

/// Renders a metrics snapshot to a string.
pub trait Exporter {
    /// Renders `snapshot`.
    fn export(&self, snapshot: &MetricsSnapshot) -> String;
}

/// Human-readable, aligned text output.
#[derive(Debug, Default, Clone, Copy)]
pub struct TextExporter;

impl Exporter for TextExporter {
    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        if !snapshot.counters.is_empty() {
            out.push_str("counters:\n");
            let width = snapshot.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &snapshot.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !snapshot.histograms.is_empty() {
            out.push_str("histograms (nanos):\n");
            let width = snapshot
                .histograms
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0);
            for (name, s) in &snapshot.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} p50={} p90={} p99={} max={}\n",
                    s.count, s.p50, s.p90, s.p99, s.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Line-delimited JSON: one object per metric, stable field order.
///
/// Counters: `{"kind":"counter","name":...,"value":...}`.
/// Histograms: `{"kind":"histogram","name":...,"count":...,"sum":...,
/// "p50":...,"p90":...,"p99":...,"max":...}`.
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonLinesExporter;

impl Exporter for JsonLinesExporter {
    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            let j = Json::obj([
                ("kind", Json::from("counter")),
                ("name", Json::from(name.as_str())),
                ("value", Json::from(*value)),
            ]);
            out.push_str(&j.to_string_compact());
            out.push('\n');
        }
        for (name, s) in &snapshot.histograms {
            let j = Json::obj([
                ("kind", Json::from("histogram")),
                ("name", Json::from(name.as_str())),
                ("count", Json::from(s.count)),
                ("sum", Json::from(s.sum)),
                ("p50", Json::from(s.p50)),
                ("p90", Json::from(s.p90)),
                ("p99", Json::from(s.p99)),
                ("max", Json::from(s.max)),
            ]);
            out.push_str(&j.to_string_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("pool.hits").add(10);
        r.counter("pool.misses").add(3);
        r.histogram("span.query").record(1500);
        r.snapshot()
    }

    #[test]
    fn text_export_lists_everything() {
        let text = TextExporter.export(&sample());
        assert!(text.contains("pool.hits"));
        assert!(text.contains("10"));
        assert!(text.contains("span.query"));
        assert!(text.contains("count=1"));
    }

    #[test]
    fn text_export_empty() {
        let text = TextExporter.export(&MetricsSnapshot::default());
        assert!(text.contains("no metrics"));
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip() {
        let out = JsonLinesExporter.export(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let j = Json::parse(line).expect("each line is valid JSON");
            assert!(j.get("kind").is_some());
            assert!(j.get("name").is_some());
        }
        let hits = lines
            .iter()
            .map(|l| Json::parse(l).unwrap())
            .find(|j| j.get("name").and_then(Json::as_str) == Some("pool.hits"))
            .unwrap();
        assert_eq!(hits.get("value").and_then(Json::as_u64), Some(10));
    }
}
