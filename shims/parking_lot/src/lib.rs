//! Offline shim for the `parking_lot` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the handful of
//! external crates the workspace depends on are provided as local shims
//! (see `shims/`). This one maps `parking_lot::Mutex`/`RwLock` onto the
//! std primitives, with `parking_lot`'s no-poisoning semantics: a lock
//! poisoned by a panicking holder is recovered, not propagated.

use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a poisoned lock is recovered silently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
