//! Request routing and query execution against a shared index.
//!
//! The service is the pure request→response core of the server: it owns
//! no sockets and no threads, which makes every route unit-testable
//! without networking. Handlers run concurrently on worker threads over
//! one shared read-only [`SegDiffIndex`], so everything here takes
//! `&self`.
//!
//! Every request is traced: the service assigns a process-unique trace
//! id, installs it in the handler thread (whence it propagates onto the
//! executor's worker pool), collects the span tree, and records the
//! finished request into the tail-sampling
//! [`TraceStore`](obs::tracering::TraceStore) — slow or erroring
//! requests are retained in a separate ring that fast traffic cannot
//! evict. `GET /debug/traces` serves both rings; `GET /series` and
//! `GET /alerts` serve the sampled metric history and the standing
//! drop/jump alerts (see [`crate::observer`]).

use crate::http::{Request, Response};
use crate::observer::Observability;
use obs::export::Exporter;
use obs::json::Json;
use obs::tracering::TraceRecord;
use obs::TraceNode;
use segdiff::{QueryPlan, QueryStats, SegDiffIndex, SegmentPair, TransectIndex};
use sensorgen::HOUR;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The query backend a [`Service`] executes against: one sensor's index,
/// or a whole transect fanned out on the worker pool
/// ([`TransectIndex::query_all_with_threads`]).
#[derive(Clone)]
pub enum Engine {
    /// One sensor's index, answered through its epoch-tagged result cache.
    Single(Arc<SegDiffIndex>),
    /// A transect of per-sensor indexes queried in parallel; results are
    /// concatenated in sensor order, so responses are deterministic for
    /// every `threads` value.
    Transect {
        /// The per-sensor index collection.
        index: Arc<TransectIndex>,
        /// Worker threads per fan-out query.
        threads: usize,
    },
}

impl Engine {
    /// A transect engine with an explicit worker-pool size (min 1).
    pub fn transect(index: Arc<TransectIndex>, threads: usize) -> Engine {
        Engine::Transect {
            index,
            threads: threads.max(1),
        }
    }

    /// Executes one query; the bool reports whether the answer came from
    /// a result cache (the transect path is always computed fresh).
    fn query(
        &self,
        region: &featurespace::QueryRegion,
        plan: QueryPlan,
    ) -> pagestore::Result<(Arc<Vec<SegmentPair>>, QueryStats, bool)> {
        match self {
            Engine::Single(idx) => idx.query_cached(region, plan),
            Engine::Transect { index, threads } => {
                let (per_sensor, stats) = index.query_all_with_threads(region, plan, *threads)?;
                let flat: Vec<SegmentPair> = per_sensor.into_iter().flatten().collect();
                Ok((Arc::new(flat), stats, false))
            }
        }
    }

    /// The invalidation epoch versioning responses.
    pub fn epoch(&self) -> u64 {
        match self {
            Engine::Single(idx) => idx.epoch(),
            Engine::Transect { index, .. } => index.epoch(),
        }
    }

    /// Entries currently held in result caches.
    fn cache_entries(&self) -> usize {
        match self {
            Engine::Single(idx) => idx.result_cache().len(),
            Engine::Transect { .. } => 0,
        }
    }

    /// Number of sensors served.
    pub fn num_sensors(&self) -> u32 {
        match self {
            Engine::Single(_) => 1,
            Engine::Transect { index, .. } => index.num_sensors(),
        }
    }

    /// Flushes dirty pages (and checkpoints the WAL) on every backing
    /// database; called once the server has drained.
    pub fn flush(&self) -> pagestore::Result<()> {
        match self {
            Engine::Single(idx) => idx.database().flush(),
            Engine::Transect { index, .. } => index.flush_all(),
        }
    }
}

impl From<Arc<SegDiffIndex>> for Engine {
    fn from(index: Arc<SegDiffIndex>) -> Engine {
        Engine::Single(index)
    }
}

impl From<Arc<TransectIndex>> for Engine {
    fn from(index: Arc<TransectIndex>) -> Engine {
        let threads = index.num_sensors() as usize;
        Engine::transect(index, threads)
    }
}

/// `server.*` telemetry published to the global registry.
struct ServiceMetrics {
    requests: Arc<obs::Counter>,
    queries: Arc<obs::Counter>,
    bad_requests: Arc<obs::Counter>,
    not_found: Arc<obs::Counter>,
    errors: Arc<obs::Counter>,
    inflight: Arc<obs::Gauge>,
    request_nanos: Arc<obs::Histogram>,
    query_nanos: Arc<obs::Histogram>,
}

impl ServiceMetrics {
    fn new() -> Self {
        let r = obs::global();
        ServiceMetrics {
            requests: r.counter("server.requests"),
            queries: r.counter("server.queries"),
            bad_requests: r.counter("server.bad_requests"),
            not_found: r.counter("server.not_found"),
            errors: r.counter("server.errors"),
            inflight: r.gauge("server.inflight"),
            request_nanos: r.histogram("server.request_nanos"),
            query_nanos: r.histogram("server.query_nanos"),
        }
    }
}

/// The HTTP-facing facade over one query engine.
pub struct Service {
    engine: Engine,
    shutdown: Arc<AtomicBool>,
    in_flight: AtomicU64,
    metrics: ServiceMetrics,
    observability: Arc<Observability>,
}

/// A validated `/query` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Optional caller-supplied series label, echoed in the response.
    pub series: Option<String>,
    /// `"drop"` or `"jump"`.
    pub kind: String,
    /// Value threshold `V` (negative for drops, positive for jumps).
    pub v: f64,
    /// Time threshold `T` in hours.
    pub t_hours: f64,
    /// `"scan"` or `"index"`.
    pub plan: String,
    /// Whether to attach an `EXPLAIN ANALYZE`-style trace.
    pub trace: bool,
}

impl QuerySpec {
    /// Parses and validates a JSON body. Every constraint the checked
    /// [`featurespace::QueryRegion`] constructors would `assert!` is
    /// verified here first, so invalid input becomes a `400`, never a
    /// worker-thread panic.
    pub fn from_json(body: &str) -> Result<QuerySpec, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing field: kind (\"drop\" or \"jump\")")?
            .to_string();
        if kind != "drop" && kind != "jump" {
            return Err(format!("kind must be \"drop\" or \"jump\", got {kind:?}"));
        }
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("missing field: v (number)")?;
        let t_hours = match doc.get("t_hours").and_then(Json::as_f64) {
            Some(h) => h,
            None => {
                doc.get("t_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("missing field: t_hours (number)")?
                    / HOUR
            }
        };
        if !t_hours.is_finite() || t_hours <= 0.0 {
            return Err(format!(
                "t_hours must be positive and finite, got {t_hours}"
            ));
        }
        if kind == "drop" && !(v.is_finite() && v < 0.0) {
            return Err(format!("v must be negative for a drop search, got {v}"));
        }
        if kind == "jump" && !(v.is_finite() && v > 0.0) {
            return Err(format!("v must be positive for a jump search, got {v}"));
        }
        let plan = doc
            .get("plan")
            .and_then(Json::as_str)
            .unwrap_or("scan")
            .to_string();
        if plan != "scan" && plan != "index" {
            return Err(format!("plan must be \"scan\" or \"index\", got {plan:?}"));
        }
        let trace = matches!(doc.get("trace"), Some(Json::Bool(true)));
        let series = doc
            .get("series")
            .and_then(Json::as_str)
            .map(|s| s.to_string());
        Ok(QuerySpec {
            series,
            kind,
            v,
            t_hours,
            plan,
            trace,
        })
    }

    /// The parsed plan.
    pub fn query_plan(&self) -> QueryPlan {
        if self.plan == "index" {
            QueryPlan::Index
        } else {
            QueryPlan::SeqScan
        }
    }

    /// The validated region (safe: `from_json` already enforced the
    /// constructor preconditions).
    pub fn region(&self) -> featurespace::QueryRegion {
        if self.kind == "drop" {
            featurespace::QueryRegion::drop(self.t_hours * HOUR, self.v)
        } else {
            featurespace::QueryRegion::jump(self.t_hours * HOUR, self.v)
        }
    }
}

/// A validated `POST /subscribe` request body: the standing query's
/// `(V, T)` region plus an optional label and sensor restriction.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeSpec {
    /// Caller-supplied label echoed in listings (default empty).
    pub label: String,
    /// `"drop"` or `"jump"`.
    pub kind: String,
    /// Value threshold `V` (negative for drops, positive for jumps).
    pub v: f64,
    /// Time threshold `T` in hours.
    pub t_hours: f64,
    /// Sensors the subscription watches; empty means all.
    pub sensors: Vec<u32>,
}

impl SubscribeSpec {
    /// Parses and validates a JSON body with the same rigor as
    /// [`QuerySpec::from_json`]: every constraint the checked
    /// [`featurespace::QueryRegion`] constructors would `assert!` becomes
    /// a `400` here.
    pub fn from_json(body: &str) -> Result<SubscribeSpec, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing field: kind (\"drop\" or \"jump\")")?
            .to_string();
        if kind != "drop" && kind != "jump" {
            return Err(format!("kind must be \"drop\" or \"jump\", got {kind:?}"));
        }
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("missing field: v (number)")?;
        let t_hours = match doc.get("t_hours").and_then(Json::as_f64) {
            Some(h) => h,
            None => {
                doc.get("t_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("missing field: t_hours (number)")?
                    / HOUR
            }
        };
        if !t_hours.is_finite() || t_hours <= 0.0 {
            return Err(format!(
                "t_hours must be positive and finite, got {t_hours}"
            ));
        }
        if kind == "drop" && !(v.is_finite() && v < 0.0) {
            return Err(format!("v must be negative for a drop search, got {v}"));
        }
        if kind == "jump" && !(v.is_finite() && v > 0.0) {
            return Err(format!("v must be positive for a jump search, got {v}"));
        }
        let label = doc
            .get("label")
            .map(|l| {
                l.as_str()
                    .map(|s| s.to_string())
                    .ok_or("label must be a string")
            })
            .transpose()?
            .unwrap_or_default();
        let sensors = match doc.get("sensors") {
            None => Vec::new(),
            Some(Json::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let id = item
                        .as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or("sensors must be an array of non-negative sensor ids")?;
                    out.push(id as u32);
                }
                out
            }
            Some(_) => return Err("sensors must be an array of sensor ids".to_string()),
        };
        Ok(SubscribeSpec {
            label,
            kind,
            v,
            t_hours,
            sensors,
        })
    }

    /// The validated region (safe: `from_json` already enforced the
    /// constructor preconditions).
    pub fn region(&self) -> featurespace::QueryRegion {
        if self.kind == "drop" {
            featurespace::QueryRegion::drop(self.t_hours * HOUR, self.v)
        } else {
            featurespace::QueryRegion::jump(self.t_hours * HOUR, self.v)
        }
    }
}

/// Parses a `/series` window parameter: plain seconds (`"90"`) or a
/// number with an `s`/`m`/`h` suffix (`"90s"`, `"5m"`, `"2h"`).
fn parse_window(raw: &str) -> Result<Duration, String> {
    let (digits, unit_secs) = match raw.as_bytes().last() {
        Some(b's') => (&raw[..raw.len() - 1], 1u64),
        Some(b'm') => (&raw[..raw.len() - 1], 60),
        Some(b'h') => (&raw[..raw.len() - 1], 3600),
        _ => (raw, 1),
    };
    match digits.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(Duration::from_secs(n.saturating_mul(unit_secs))),
        _ => Err(format!(
            "window must be a positive duration like 90, 90s, 5m or 2h, got {raw:?}"
        )),
    }
}

/// Uniform query-string validation: every pair must be `key=value` with
/// a key in `allowed`. Routes apply this before doing any work, so a
/// typo'd or unsupported parameter is a structured `400` on every route
/// rather than silently ignored on some and rejected on others.
pub(crate) fn check_query_params(req: &Request, allowed: &[&str]) -> Result<(), String> {
    for pair in req.query.split('&').filter(|p| !p.is_empty()) {
        let Some((key, _)) = pair.split_once('=') else {
            return Err(format!(
                "malformed query parameter {pair:?} (expected key=value)"
            ));
        };
        if !allowed.contains(&key) {
            return Err(if allowed.is_empty() {
                format!("unknown query parameter {key:?} (route takes none)")
            } else {
                format!(
                    "unknown query parameter {key:?} (allowed: {})",
                    allowed.join(", ")
                )
            });
        }
    }
    Ok(())
}

/// Parses an optional unsigned query parameter, with a default.
pub(crate) fn parse_u64_param(req: &Request, key: &str, default: u64) -> Result<u64, String> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("{key} must be a non-negative integer, got {raw:?}")),
    }
}

fn trace_to_json(node: &TraceNode) -> Json {
    let mut fields = vec![
        ("span".to_string(), Json::Str(node.name.clone())),
        ("wall_nanos".to_string(), Json::Uint(node.wall_nanos)),
    ];
    for (k, v) in &node.attrs {
        fields.push((k.clone(), v.clone()));
    }
    if !node.children.is_empty() {
        fields.push((
            "children".to_string(),
            Json::Array(node.children.iter().map(trace_to_json).collect()),
        ));
    }
    Json::Object(fields)
}

impl Service {
    /// Creates a service over `engine` (a single index or a transect).
    /// Setting `shutdown` (from any thread, or via `POST /shutdown`)
    /// makes the accept loop drain.
    pub fn new(engine: impl Into<Engine>, shutdown: Arc<AtomicBool>) -> Self {
        Service::with_observability(engine, shutdown, Arc::new(Observability::default()))
    }

    /// [`Service::new`] with explicitly configured observability stores
    /// (series capacity, alert rules, trace slow threshold).
    pub fn with_observability(
        engine: impl Into<Engine>,
        shutdown: Arc<AtomicBool>,
        observability: Arc<Observability>,
    ) -> Self {
        Service {
            engine: engine.into(),
            shutdown,
            in_flight: AtomicU64::new(0),
            metrics: ServiceMetrics::new(),
            observability,
        }
    }

    /// The engine queries execute against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The observability stores the service records into and serves from.
    pub fn observability(&self) -> &Arc<Observability> {
        &self.observability
    }

    /// The shared shutdown flag.
    pub fn shutdown_flag(&self) -> &Arc<AtomicBool> {
        &self.shutdown
    }

    /// Number of requests currently executing.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Dispatches one request.
    ///
    /// Tracing is always on: every request gets a process-unique trace
    /// id (propagated to executor worker threads via
    /// [`obs::TraceIdScope`]) and lands in the tail-sampling trace ring
    /// when it finishes — with its span tree for `/query`, summary-only
    /// for the cheap routes.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let started_ms = obs::unix_ms();
        self.metrics.requests.inc();
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.metrics.inflight.add(1);
        let trace_id = obs::next_trace_id();
        let scope = obs::TraceIdScope::enter(trace_id);
        let (resp, root) = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/query") => self.query(req, trace_id),
            ("GET", "/metrics") => (self.metrics_dump(req), None),
            ("GET", "/healthz") => (self.healthz(req), None),
            ("GET", "/series") => (self.series_dump(req), None),
            ("GET", "/alerts") => (self.alerts_dump(req), None),
            ("GET", "/debug/traces") => (self.traces_dump(req), None),
            ("POST", "/subscribe") => (self.subscribe_create(req), None),
            ("GET", "/subscribe") => (self.subscribe_list(req), None),
            ("GET", "/notifications") => (self.notifications(req), None),
            ("POST", "/shutdown") => (self.initiate_shutdown(), None),
            (method, path) if path.starts_with("/subscribe/") => {
                (self.subscribe_item(method, path), None)
            }
            (
                _,
                "/query" | "/metrics" | "/healthz" | "/series" | "/alerts" | "/debug/traces"
                | "/subscribe" | "/notifications" | "/shutdown",
            ) => (
                Response::error(405, format!("method {} not allowed", req.method)),
                None,
            ),
            _ => {
                self.metrics.not_found.inc();
                (
                    Response::error(404, format!("no route for {}", req.path)),
                    None,
                )
            }
        };
        drop(scope);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.metrics.inflight.sub(1);
        if resp.status >= 400 {
            self.metrics.errors.inc();
        }
        let wall = start.elapsed();
        self.metrics.request_nanos.record_duration(wall);
        self.observability.traces.record(TraceRecord {
            trace_id,
            name: format!("{} {}", req.method, req.path),
            started_ms,
            wall_nanos: wall.as_nanos().min(u64::MAX as u128) as u64,
            status: resp.status,
            error: resp.status >= 400,
            root,
        });
        resp
    }

    /// A structured `400`, counted in `server.bad_requests`.
    fn bad_request(&self, message: String) -> Response {
        self.metrics.bad_requests.inc();
        Response::error(400, message)
    }

    fn query(&self, req: &Request, trace_id: u64) -> (Response, Option<TraceNode>) {
        if let Err(e) = check_query_params(req, &[]) {
            return (self.bad_request(e), None);
        }
        let body = match req.body_str() {
            Ok(b) => b,
            Err(e) => {
                self.metrics.bad_requests.inc();
                return (Response::error(400, e.to_string()), None);
            }
        };
        let spec = match QuerySpec::from_json(body) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.bad_requests.inc();
                return (Response::error(400, e), None);
            }
        };
        self.metrics.queries.inc();
        let start = Instant::now();
        obs::trace_begin();
        let outcome = self.engine.query(&spec.region(), spec.query_plan());
        let trace = obs::trace_take();
        let (results, stats, cached) = match outcome {
            Ok(t) => t,
            Err(e) => {
                return (Response::error(500, format!("query failed: {e}")), trace);
            }
        };
        self.metrics.query_nanos.record_duration(start.elapsed());

        let mut fields = Vec::new();
        if let Some(series) = &spec.series {
            fields.push(("series".to_string(), Json::Str(series.clone())));
        }
        fields.extend([
            ("kind".to_string(), Json::Str(spec.kind.clone())),
            ("v".to_string(), Json::Float(spec.v)),
            ("t_hours".to_string(), Json::Float(spec.t_hours)),
            ("plan".to_string(), Json::Str(spec.plan.clone())),
            ("epoch".to_string(), Json::Uint(self.engine.epoch())),
            ("cached".to_string(), Json::Bool(cached)),
            ("count".to_string(), Json::Uint(results.len() as u64)),
            (
                "rows_considered".to_string(),
                Json::Uint(stats.rows_considered),
            ),
            ("wall_ms".to_string(), Json::Float(stats.wall_seconds * 1e3)),
            (
                "results".to_string(),
                Json::Array(
                    results
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("t_d", Json::Float(p.t_d)),
                                ("t_c", Json::Float(p.t_c)),
                                ("t_b", Json::Float(p.t_b)),
                                ("t_a", Json::Float(p.t_a)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Engine::Transect { .. } = &self.engine {
            fields.push((
                "sensors".to_string(),
                Json::Uint(self.engine.num_sensors() as u64),
            ));
        }
        fields.push(("trace_id".to_string(), Json::Uint(trace_id)));
        if spec.trace {
            if let Some(node) = &trace {
                fields.push(("trace".to_string(), trace_to_json(node)));
            }
        }
        (Response::json(200, &Json::Object(fields)), trace)
    }

    fn metrics_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["format"]) {
            return self.bad_request(e);
        }
        let snapshot = obs::global().snapshot();
        match req.query_param("format") {
            Some("json") => Response::text(
                200,
                obs::export::JsonLinesExporter::default().export(&snapshot),
            ),
            None | Some("text") => Response::text(200, obs::export::TextExporter.export(&snapshot)),
            Some(other) => self.bad_request(format!(
                "format must be \"text\" or \"json\", got {other:?}"
            )),
        }
    }

    /// `GET /series` — the sampled metric history. Without a `name`
    /// parameter, lists the sampled series; with one, returns the points
    /// inside `window` (e.g. `60s`, `5m`, `2h`; default the whole ring).
    fn series_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["name", "window"]) {
            return self.bad_request(e);
        }
        let store = &self.observability.series;
        let Some(name) = req.query_param("name") else {
            let names = store.names();
            return Response::json(
                200,
                &Json::obj([
                    ("count", Json::from(names.len() as u64)),
                    (
                        "series",
                        Json::Array(names.into_iter().map(Json::Str).collect()),
                    ),
                ]),
            );
        };
        let window = match req.query_param("window").map(parse_window) {
            None => None,
            Some(Ok(w)) => Some(w),
            Some(Err(e)) => {
                self.metrics.bad_requests.inc();
                return Response::error(400, e);
            }
        };
        let points = match window {
            Some(w) => store.window(name, w, obs::unix_ms()),
            None => store.since(name, 0),
        };
        if points.is_empty() && !store.names().iter().any(|n| n == name) {
            return Response::error(404, format!("no sampled series named {name:?}"));
        }
        Response::json(
            200,
            &Json::obj([
                ("name", Json::from(name)),
                ("count", Json::from(points.len() as u64)),
                (
                    "points",
                    Json::Array(
                        points
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("ts_ms", Json::from(p.ts_ms)),
                                    ("value", Json::Float(p.value)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `GET /alerts` — the standing rules and the bounded log of alerts
    /// they have fired, oldest first. `?after=N` returns only alerts
    /// with sequence number > N (the polling cursor `segdiff alerts
    /// --follow` rides on); each alert then carries its `seq` and the
    /// response a `next_after` to resume from.
    fn alerts_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["after"]) {
            return self.bad_request(e);
        }
        let after = match parse_u64_param(req, "after", 0) {
            Ok(n) => n,
            Err(e) => return self.bad_request(e),
        };
        let engine = &self.observability.alerts;
        let rules: Vec<Json> = engine
            .rules()
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::from(r.name.as_str())),
                    ("metric", Json::from(r.metric.as_str())),
                    ("kind", Json::from(r.kind.name())),
                    ("v", Json::Float(r.v)),
                    ("t_seconds", Json::Float(r.t_seconds)),
                    ("epsilon", Json::Float(r.epsilon)),
                    ("scale", Json::Float(r.scale)),
                ])
            })
            .collect();
        let alerts = engine.alerts_since(after);
        let next_after = alerts.last().map(|(seq, _)| *seq).unwrap_or(after);
        Response::json(
            200,
            &Json::obj([
                ("rules", Json::Array(rules)),
                ("fired", Json::from(alerts.len() as u64)),
                ("next_after", Json::from(next_after)),
                (
                    "alerts",
                    Json::Array(
                        alerts
                            .iter()
                            .map(|(seq, a)| {
                                let mut obj = a.to_json();
                                if let Json::Object(fields) = &mut obj {
                                    fields.insert(0, ("seq".to_string(), Json::from(*seq)));
                                }
                                obj
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `GET /debug/traces` — recently finished requests from the trace
    /// rings. `?ring=slow` selects the tail-sampled slow/error ring,
    /// `?n=` bounds the count (default 20), `?full=1` includes span
    /// trees.
    fn traces_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["n", "ring", "full"]) {
            return self.bad_request(e);
        }
        let store = &self.observability.traces;
        let n = match req.query_param("n") {
            None => 20,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => n.min(4096),
                _ => {
                    self.metrics.bad_requests.inc();
                    return Response::error(
                        400,
                        format!("n must be a positive integer, got {raw:?}"),
                    );
                }
            },
        };
        let ring = req.query_param("ring").unwrap_or("recent");
        let records = match ring {
            "recent" => store.recent(n),
            "slow" => store.slow(n),
            other => {
                self.metrics.bad_requests.inc();
                return Response::error(
                    400,
                    format!("ring must be \"recent\" or \"slow\", got {other:?}"),
                );
            }
        };
        let full = match req.query_param("full") {
            None | Some("0") => false,
            Some("1") => true,
            Some(other) => {
                return self.bad_request(format!("full must be \"0\" or \"1\", got {other:?}"));
            }
        };
        Response::json(
            200,
            &Json::obj([
                ("ring", Json::from(ring)),
                ("count", Json::from(records.len() as u64)),
                (
                    "slow_threshold_ms",
                    Json::Float(store.slow_threshold().as_secs_f64() * 1e3),
                ),
                (
                    "traces",
                    Json::Array(
                        records
                            .iter()
                            .map(|r| {
                                if full {
                                    r.to_json_full()
                                } else {
                                    r.to_json_summary()
                                }
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `POST /subscribe` — register a standing query. The body is a
    /// [`SubscribeSpec`]; the response echoes the stored subscription,
    /// including the `id` used by `GET /notifications?sub=` and
    /// `GET /subscribe/<id>/stream`.
    fn subscribe_create(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) {
            return self.bad_request(e);
        }
        let body = match req.body_str() {
            Ok(b) => b,
            Err(e) => return self.bad_request(e.to_string()),
        };
        let spec = match SubscribeSpec::from_json(body) {
            Ok(s) => s,
            Err(e) => return self.bad_request(e),
        };
        let sub = self.observability.subs.subscribe(
            &spec.label,
            spec.region(),
            &spec.sensors,
            obs::unix_ms(),
        );
        Response::json(200, &sub.to_json())
    }

    /// `GET /subscribe` — every registered subscription plus the
    /// per-sensor event-frequency characterization (events observed and
    /// the expected rate per hour over the observed span).
    fn subscribe_list(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) {
            return self.bad_request(e);
        }
        let registry = &self.observability.subs;
        let subs = registry.subscriptions();
        let sensors: Vec<Json> = registry
            .sensor_stats()
            .iter()
            .map(|(sensor, f)| {
                Json::obj([
                    ("sensor", Json::from(u64::from(*sensor))),
                    ("events", Json::from(f.events)),
                    ("first_ms", Json::from(f.first_ms)),
                    ("last_ms", Json::from(f.last_ms)),
                    ("expected_per_hour", Json::Float(f.expected_per_hour())),
                ])
            })
            .collect();
        Response::json(
            200,
            &Json::obj([
                ("count", Json::from(subs.len() as u64)),
                (
                    "subscriptions",
                    Json::Array(subs.iter().map(|s| s.to_json()).collect()),
                ),
                ("sensors", Json::Array(sensors)),
            ]),
        )
    }

    /// `GET /notifications?sub=<id>` — the durable polling cursor.
    /// Returns notifications with sequence number > `after` (default 0,
    /// i.e. everything retained), at most `max` (default 100), plus a
    /// `next_after` to resume from.
    fn notifications(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["sub", "after", "max"]) {
            return self.bad_request(e);
        }
        let sub = match req.query_param("sub") {
            None => return self.bad_request("missing query parameter \"sub\"".to_string()),
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    return self.bad_request(format!("sub must be a subscription id, got {raw:?}"));
                }
            },
        };
        let after = match parse_u64_param(req, "after", 0) {
            Ok(n) => n,
            Err(e) => return self.bad_request(e),
        };
        let max = match parse_u64_param(req, "max", 100) {
            Ok(n) if (1..=1000).contains(&n) => n as usize,
            Ok(n) => return self.bad_request(format!("max must be in 1..=1000, got {n}")),
            Err(e) => return self.bad_request(e),
        };
        match self.observability.subs.since(sub, after, max) {
            None => Response::error(404, format!("no subscription {sub}")),
            Some((items, next_after)) => Response::json(
                200,
                &Json::obj([
                    ("sub", Json::from(sub)),
                    ("count", Json::from(items.len() as u64)),
                    ("next_after", Json::from(next_after)),
                    (
                        "notifications",
                        Json::Array(items.iter().map(|n| n.to_json()).collect()),
                    ),
                ]),
            ),
        }
    }

    /// Routes `/subscribe/<id>` (GET one, DELETE to unsubscribe) and the
    /// `/subscribe/<id>/stream` tail. The stream variant is intercepted
    /// by the connection handler before [`Service::handle`] (it takes
    /// over the socket for a chunked live feed); reaching it here means
    /// the transport cannot stream.
    fn subscribe_item(&self, method: &str, path: &str) -> Response {
        let rest = &path["/subscribe/".len()..];
        if let Some(id_raw) = rest.strip_suffix("/stream") {
            return if method == "GET" && id_raw.parse::<u64>().is_ok() {
                Response::error(
                    400,
                    "the stream endpoint requires a dedicated streaming connection",
                )
            } else if method == "GET" {
                self.bad_request(format!(
                    "subscription id must be an integer, got {id_raw:?}"
                ))
            } else {
                Response::error(405, format!("method {method} not allowed"))
            };
        }
        let id = match rest.parse::<u64>() {
            Ok(id) => id,
            Err(_) => {
                return self
                    .bad_request(format!("subscription id must be an integer, got {rest:?}"))
            }
        };
        match method {
            "GET" => match self.observability.subs.subscription(id) {
                Some(sub) => Response::json(200, &sub.to_json()),
                None => Response::error(404, format!("no subscription {id}")),
            },
            "DELETE" => {
                if self.observability.subs.unsubscribe(id) {
                    Response::json(
                        200,
                        &Json::obj([
                            ("status", Json::from("unsubscribed")),
                            ("id", Json::from(id)),
                        ]),
                    )
                } else {
                    Response::error(404, format!("no subscription {id}"))
                }
            }
            other => Response::error(405, format!("method {other} not allowed")),
        }
    }

    /// The subscription id when `req` is `GET /subscribe/<id>/stream` —
    /// the connection handler checks this before dispatching to
    /// [`Service::handle`] and, on a hit, takes over the socket for a
    /// chunked live notification feed.
    pub fn stream_target(req: &Request) -> Option<u64> {
        if req.method != "GET" {
            return None;
        }
        let rest = req.path.strip_prefix("/subscribe/")?;
        rest.strip_suffix("/stream")?.parse().ok()
    }

    fn healthz(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) {
            return self.bad_request(e);
        }
        Response::json(
            200,
            &Json::obj([
                ("status", Json::from("ok")),
                ("epoch", Json::Uint(self.engine.epoch())),
                ("sensors", Json::Uint(self.engine.num_sensors() as u64)),
                ("cache_entries", Json::from(self.engine.cache_entries())),
            ]),
        )
    }

    fn initiate_shutdown(&self) -> Response {
        obs::info!("shutdown requested over HTTP");
        self.shutdown.store(true, Ordering::Release);
        Response::json(200, &Json::obj([("status", Json::from("shutting down"))])).with_close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query_spec() {
        let s = QuerySpec::from_json(r#"{"kind":"drop","v":-3,"t_hours":1}"#).unwrap();
        assert_eq!(s.kind, "drop");
        assert_eq!(s.v, -3.0);
        assert_eq!(s.t_hours, 1.0);
        assert_eq!(s.plan, "scan");
        assert!(!s.trace);
        assert!(s.series.is_none());
        assert_eq!(s.query_plan(), QueryPlan::SeqScan);
    }

    #[test]
    fn accepts_t_seconds_alternative() {
        let s = QuerySpec::from_json(r#"{"kind":"jump","v":2,"t_seconds":1800}"#).unwrap();
        assert_eq!(s.t_hours, 0.5);
    }

    #[test]
    fn parses_full_query_spec() {
        let s = QuerySpec::from_json(
            r#"{"series":"cad-12","kind":"jump","v":1.5,"t_hours":0.5,"plan":"index","trace":true}"#,
        )
        .unwrap();
        assert_eq!(s.series.as_deref(), Some("cad-12"));
        assert_eq!(s.query_plan(), QueryPlan::Index);
        assert!(s.trace);
        let r = s.region();
        assert_eq!(r.v, 1.5);
        assert_eq!(r.t, 0.5 * HOUR);
    }

    #[test]
    fn parses_subscribe_spec() {
        let s = SubscribeSpec::from_json(
            r#"{"label":"canyon","kind":"drop","v":-3,"t_hours":1,"sensors":[0,2]}"#,
        )
        .unwrap();
        assert_eq!(s.label, "canyon");
        assert_eq!(s.sensors, vec![0, 2]);
        let r = s.region();
        assert_eq!(r.v, -3.0);
        assert_eq!(r.t, HOUR);

        let s = SubscribeSpec::from_json(r#"{"kind":"jump","v":2,"t_seconds":1800}"#).unwrap();
        assert!(s.label.is_empty());
        assert!(s.sensors.is_empty(), "no sensors means all sensors");
        assert_eq!(s.t_hours, 0.5);
    }

    #[test]
    fn rejects_invalid_subscribe_specs() {
        for body in [
            "not json",
            "{}",
            r#"{"kind":"drop","v":1,"t_hours":1}"#,
            r#"{"kind":"jump","v":-1,"t_hours":1}"#,
            r#"{"kind":"drop","v":-1,"t_hours":0}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"sensors":7}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"sensors":[-1]}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"label":7}"#,
        ] {
            assert!(SubscribeSpec::from_json(body).is_err(), "accepted: {body}");
        }
    }

    fn get(path_and_query: &str) -> crate::http::Request {
        let raw = format!("GET {path_and_query} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn query_param_checks_reject_unknown_and_malformed() {
        let req = get("/series?name=x&window=5m");
        assert!(check_query_params(&req, &["name", "window"]).is_ok());
        let req = get("/series?nam=x");
        assert!(check_query_params(&req, &["name", "window"]).is_err());
        let req = get("/series?name");
        assert!(check_query_params(&req, &["name", "window"]).is_err());
        let req = get("/healthz");
        assert!(check_query_params(&req, &[]).is_ok());
    }

    #[test]
    fn stream_targets_are_recognized() {
        assert_eq!(Service::stream_target(&get("/subscribe/7/stream")), Some(7));
        assert_eq!(Service::stream_target(&get("/subscribe/7")), None);
        assert_eq!(Service::stream_target(&get("/subscribe/x/stream")), None);
        assert_eq!(Service::stream_target(&get("/notifications")), None);
    }

    #[test]
    fn rejects_invalid_specs() {
        // Each of these would have tripped a QueryRegion assert.
        for body in [
            "not json",
            "{}",
            r#"{"kind":"sideways","v":-1,"t_hours":1}"#,
            r#"{"kind":"drop","v":1,"t_hours":1}"#,
            r#"{"kind":"drop","v":0,"t_hours":1}"#,
            r#"{"kind":"jump","v":-1,"t_hours":1}"#,
            r#"{"kind":"drop","v":-1,"t_hours":0}"#,
            r#"{"kind":"drop","v":-1,"t_hours":-2}"#,
            r#"{"kind":"drop","v":-1}"#,
            r#"{"kind":"drop","t_hours":1}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"plan":"turbo"}"#,
        ] {
            assert!(QuerySpec::from_json(body).is_err(), "accepted: {body}");
        }
    }
}
