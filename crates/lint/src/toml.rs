//! A minimal TOML subset parser — exactly what `ci/lock-order.toml`
//! needs: comments, top-level and `[section]` tables, `[[array]]`
//! tables, string values, arrays of strings, booleans and integers.
//! No dates, no nested inline tables, no multi-line strings.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"…"`.
    Str(String),
    /// `["a", "b"]`.
    StrArray(Vec<String>),
    /// `true` / `false`.
    Bool(bool),
    /// `123` / `-4`.
    Int(i64),
}

impl Value {
    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array content, if this is an array of strings.
    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(v) => Some(v),
            _ => None,
        }
    }
}

/// One table: key → value.
pub type Table = BTreeMap<String, Value>;

/// The parsed document: the root table, named tables, and array tables.
#[derive(Debug, Default)]
pub struct Doc {
    /// Keys defined before any `[section]`.
    pub root: Table,
    /// `[name]` tables.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` tables, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

/// Parse error with a 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    /// Line the error was found on.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

enum Target {
    Root,
    Table(String),
    Array(String),
}

/// Parses the supported TOML subset.
pub fn parse(src: &str) -> Result<Doc, ParseError> {
    let mut doc = Doc::default();
    let mut target = Target::Root;
    // Multi-line array accumulator: (start line, text so far).
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let owned;
        let (lineno, line) = if let Some((start, mut acc)) = pending.take() {
            acc.push(' ');
            acc.push_str(line);
            if !array_closed(&acc) {
                pending = Some((start, acc));
                continue;
            }
            owned = acc;
            (start, owned.as_str())
        } else if line
            .split_once('=')
            .is_some_and(|(_, rhs)| rhs.trim_start().starts_with('[') && !array_closed(rhs))
        {
            pending = Some((lineno, line.to_string()));
            continue;
        } else {
            (lineno, line)
        };
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::Array(name);
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
        } else if let Some((key, rhs)) = line.split_once('=') {
            let key = key.trim().to_string();
            let value = parse_value(rhs.trim(), lineno)?;
            let table = match &target {
                Target::Root => &mut doc.root,
                Target::Table(name) => doc
                    .tables
                    .get_mut(name)
                    .unwrap_or_else(|| unreachable!("table created on section header")),
                Target::Array(name) => doc
                    .arrays
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .unwrap_or_else(|| unreachable!("entry created on section header")),
            };
            table.insert(key, value);
        } else {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `key = value` or `[section]`, got `{line}`"),
            });
        }
    }
    Ok(doc)
}

/// Whether an array value's brackets balance outside strings.
fn array_closed(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => escaped = false,
        }
    }
    depth <= 0
}

/// Removes a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_value(rhs: &str, line: usize) -> Result<Value, ParseError> {
    if rhs == "true" {
        return Ok(Value::Bool(true));
    }
    if rhs == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = rhs.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or(ParseError {
            line,
            message: "unterminated array (arrays must be single-line)".into(),
        })?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ParseError {
                        line,
                        message: "only string arrays are supported".into(),
                    })
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(inner) = rhs.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or(ParseError {
            line,
            message: "unterminated string".into(),
        })?;
        return Ok(Value::Str(
            inner.replace("\\\"", "\"").replace("\\\\", "\\"),
        ));
    }
    rhs.parse::<i64>().map(Value::Int).map_err(|_| ParseError {
        line,
        message: format!("unsupported value `{rhs}`"),
    })
}

/// Splits on commas not inside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_document() {
        let doc = parse(
            r#"
# top comment
order = ["a", "b", "c"]  # trailing comment
strict = true
max = 4

[meta]
title = "lock order"

[[class]]
name = "pool.shard"
paths = ["*.shards[]", "shard"]

[[class]]
name = "wal"
paths = ["*.inner"]
"#,
        )
        .unwrap();
        assert_eq!(
            doc.root.get("order").unwrap().as_array().unwrap(),
            &["a".to_string(), "b".into(), "c".into()]
        );
        assert_eq!(doc.root.get("strict"), Some(&Value::Bool(true)));
        assert_eq!(doc.root.get("max"), Some(&Value::Int(4)));
        assert_eq!(
            doc.tables
                .get("meta")
                .unwrap()
                .get("title")
                .unwrap()
                .as_str(),
            Some("lock order")
        );
        let classes = doc.arrays.get("class").unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].get("name").unwrap().as_str(), Some("pool.shard"));
        assert_eq!(
            classes[1].get("paths").unwrap().as_array().unwrap(),
            &["*.inner".to_string()]
        );
    }

    #[test]
    fn multi_line_arrays() {
        let doc =
            parse("order = [\n  \"a\",  # first\n  \"b\",\n  \"c\",\n]\nnext = true\n").unwrap();
        assert_eq!(
            doc.root.get("order").unwrap().as_array().unwrap(),
            &["a".to_string(), "b".into(), "c".into()]
        );
        assert_eq!(doc.root.get("next"), Some(&Value::Bool(true)));
    }

    #[test]
    fn hash_inside_string_is_kept() {
        let doc = parse(r##"key = "a#b" # real comment"##).unwrap();
        assert_eq!(doc.root.get("key").unwrap().as_str(), Some("a#b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = true\nbroken line").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
