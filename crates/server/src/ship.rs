//! Wire format for WAL shipping (`GET /wal`).
//!
//! A shipping response body is a fixed 40-byte header followed by raw
//! WAL frames exactly as they appear in the primary's `wal.log` — the
//! receiver appends the frame bytes verbatim to its own log and replays
//! them through the ordinary recovery path. Everything is little-endian:
//!
//! ```text
//! [magic "SDWS" u32][flags u32 (bit0 = restart)]
//! [log_start_lsn u64][log_end_lsn u64][first_lsn u64][last_lsn u64]
//! [raw frames ...]
//! ```

use pagestore::{wal, WalSegment};

/// Magic word opening every shipping response ("SDWS").
pub const SHIP_MAGIC: u32 = u32::from_le_bytes(*b"SDWS");

/// Header length in bytes.
pub const SHIP_HDR: usize = 40;

/// Serializes a [`WalSegment`] into a shipping response body.
pub fn encode_segment(seg: &WalSegment) -> Vec<u8> {
    let mut out = Vec::with_capacity(SHIP_HDR + seg.frames.len());
    out.extend_from_slice(&SHIP_MAGIC.to_le_bytes());
    out.extend_from_slice(&u32::from(seg.restart).to_le_bytes());
    for v in [
        seg.log_start_lsn,
        seg.log_end_lsn,
        seg.first_lsn,
        seg.last_lsn,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&seg.frames);
    out
}

/// Parses a shipping response body back into a [`WalSegment`]
/// (`valid_bytes` is not carried on the wire and decodes as 0).
pub fn decode_segment(body: &[u8]) -> Result<WalSegment, String> {
    if body.len() < SHIP_HDR {
        return Err(format!(
            "ship body too short: {} bytes (need {SHIP_HDR})",
            body.len()
        ));
    }
    let u32_at = |off: usize| {
        let mut b = [0u8; 4];
        b.copy_from_slice(&body[off..off + 4]);
        u32::from_le_bytes(b)
    };
    let u64_at = |off: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&body[off..off + 8]);
        u64::from_le_bytes(b)
    };
    if u32_at(0) != SHIP_MAGIC {
        return Err("bad ship magic".to_string());
    }
    Ok(WalSegment {
        restart: u32_at(4) & 1 != 0,
        log_start_lsn: u64_at(8),
        log_end_lsn: u64_at(16),
        first_lsn: u64_at(24),
        last_lsn: u64_at(32),
        frames: body[SHIP_HDR..].to_vec(),
        valid_bytes: 0,
    })
}

/// Counts whole frames in a shipped `frames` buffer (shipping always
/// sends whole frames, so a partial trailer would be a transport bug
/// and simply stops the count, like recovery's torn-tail rule).
pub fn count_frames(frames: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut pos = 0usize;
    while let Some(hdr) = frames.get(pos..pos + wal::FRAME_HDR) {
        if u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) != wal::WAL_MAGIC {
            break;
        }
        let len = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
        if frames.len() < pos + wal::FRAME_HDR + len {
            break;
        }
        count += 1;
        pos += wal::FRAME_HDR + len;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_segments() {
        let seg = WalSegment {
            frames: vec![1, 2, 3, 4, 5],
            first_lsn: 7,
            last_lsn: 9,
            log_start_lsn: 3,
            log_end_lsn: 11,
            restart: true,
            valid_bytes: 99,
        };
        let body = encode_segment(&seg);
        assert_eq!(body.len(), SHIP_HDR + 5);
        let back = decode_segment(&body).expect("decode");
        assert_eq!(back.frames, seg.frames);
        assert_eq!(back.first_lsn, 7);
        assert_eq!(back.last_lsn, 9);
        assert_eq!(back.log_start_lsn, 3);
        assert_eq!(back.log_end_lsn, 11);
        assert!(back.restart);
        assert_eq!(back.valid_bytes, 0, "not carried on the wire");

        let empty = encode_segment(&WalSegment::default());
        let back = decode_segment(&empty).expect("decode empty");
        assert!(back.frames.is_empty());
        assert!(!back.restart);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_segment(&[]).is_err());
        assert!(decode_segment(&[0u8; SHIP_HDR - 1]).is_err());
        assert!(decode_segment(&[0u8; SHIP_HDR]).is_err(), "bad magic");
    }

    #[test]
    fn counts_frames() {
        assert_eq!(count_frames(&[]), 0);
        // Two synthetic frames with empty payloads.
        let mut buf = Vec::new();
        for _ in 0..2 {
            buf.extend_from_slice(&wal::WAL_MAGIC.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes()); // len
            buf.extend_from_slice(&0u32.to_le_bytes()); // crc (unchecked)
        }
        assert_eq!(count_frames(&buf), 2);
        // A truncated trailer stops the count.
        buf.extend_from_slice(&wal::WAL_MAGIC.to_le_bytes());
        assert_eq!(count_frames(&buf), 2);
    }
}
