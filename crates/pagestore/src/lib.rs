#![warn(missing_docs)]

//! An embedded page-based storage engine.
//!
//! The paper stores extracted features in MySQL tables with B-tree indexes
//! and issues standard SQL range queries (§4.4, §6). This crate is the
//! from-scratch substitute: a small relational storage engine with
//!
//! * fixed-size 4 KiB [`page`]s backed by ordinary files,
//! * a shared [`BufferPool`] (clock eviction) with hit/miss/physical-I/O
//!   accounting, so experiments can run "cold" (cache dropped) or "warm"
//!   exactly like the paper's flushed-vs-cached runs,
//! * append-only [`HeapFile`]s of fixed-width `f64` rows,
//! * disk-backed [`BTree`] indexes over order-preserving big-endian
//!   composite keys (the analogue of MySQL's B-tree on concatenated
//!   columns),
//! * a [`Table`] layer tying heap + indexes together, and a [`Database`]
//!   catalog that persists across reopen.
//!
//! Everything both search systems (SegDiff and the exhaustive baseline) do
//! runs through this engine, so their measured ratios compare like for
//! like.
//!
//! # Example
//!
//! ```
//! use pagestore::{Database, TableSpec};
//!
//! let dir = std::env::temp_dir().join(format!("pagestore-doc-{}", std::process::id()));
//! let db = Database::create(&dir, 256).unwrap();
//! let table = db
//!     .create_table(TableSpec::new("events", &["dt", "dv", "t"]))
//!     .unwrap();
//! table.insert(&[30.0, -3.5, 1000.0]).unwrap();
//! table.insert(&[60.0, -1.0, 2000.0]).unwrap();
//! let mut deep = 0;
//! table
//!     .seq_scan(|_rid, row| {
//!         if row[1] <= -3.0 {
//!             deep += 1;
//!         }
//!         true
//!     })
//!     .unwrap();
//! assert_eq!(deep, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

mod btree;
mod buffer;
pub mod colpage;
mod db;
mod encode;
mod error;
mod heap;
pub mod page;
mod pagefile;
pub mod recovery;
pub mod sql;
mod table;
pub mod wal;
mod zonemap;

#[cfg(test)]
mod fault_tests;
#[cfg(test)]
mod proptests;
#[cfg(test)]
mod stress_tests;

pub use btree::BTree;
pub use buffer::{BufferPool, PoolStats};
pub use db::{sync_from_env, Database, DurabilityOptions, TableSpec};
pub use encode::{decode_f64, encode_f64, encode_key, KeyBuf};
pub use error::{Result, StoreError};
pub use heap::{CompressionStats, HeapFile, PageFormat, RowId, ZoneScanStats};
pub use pagefile::{FileId, PageFile, PageId};
pub use recovery::RecoveryReport;
pub use sql::{ExecOutcome, Plan};
pub use table::{Index, Table};
pub use wal::{CommitState, Wal, WalSegment, WAL_FILE};
pub use zonemap::{ZoneMap, EXTENT_PAGES, ZONE_LEVELS};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;
