//! CI gate for the standing-query subsystem (DESIGN.md §5h).
//!
//! ```sh
//! subsmoke --smoke [--subs N] [--out DIR]     # exactly-once push delivery
//! subsmoke --churn [--regions N] [--out DIR]  # indexed matching is sublinear
//! ```
//!
//! Smoke mode serves a real index, registers a population of standing
//! queries over HTTP (matchers and decoys), ingests a planted-drop
//! series through the live registry, and requires every matcher to be
//! notified exactly once — writing the full notification log as an
//! artifact. Churn mode registers N standing regions and requires the
//! region index to reproduce brute-force matching with far fewer
//! region tests.

use segdiff_bench::subsmoke::{
    churn_summary_json, judge_churn, judge_smoke, run_churn, run_subsmoke, smoke_summary_json,
    ChurnConfig, SmokeConfig,
};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: subsmoke (--smoke | --churn) [--subs N] [--regions N] \
     [--deadline-secs N] [--out DIR]";

fn main() {
    let mut mode: Option<bool> = None; // true = smoke
    let mut out: Option<PathBuf> = None;
    let mut smoke = SmokeConfig::ci();
    let mut churn = ChurnConfig::ci();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number\n{USAGE}"))
        };
        match a.as_str() {
            "--smoke" => mode = Some(true),
            "--churn" => mode = Some(false),
            "--subs" => smoke.subs = num("--subs") as usize,
            "--regions" => churn.regions = num("--regions") as usize,
            "--deadline-secs" => smoke.deadline = Duration::from_secs(num("--deadline-secs")),
            "--out" => out = Some(PathBuf::from(it.next().expect("--out DIR"))),
            other => panic!("unknown argument '{other}'\n{USAGE}"),
        }
    }
    let smoke_mode = mode.unwrap_or_else(|| panic!("pick --smoke or --churn\n{USAGE}"));

    let (summary, failures, log) = if smoke_mode {
        eprintln!(
            "subsmoke: smoke run, {} subscriptions, {} s deadline",
            smoke.subs,
            smoke.deadline.as_secs()
        );
        let outcome = run_subsmoke(&smoke).expect("subsmoke run");
        let failures = judge_smoke(&outcome);
        let summary = smoke_summary_json(&outcome, &failures);
        (
            summary,
            failures,
            Some((outcome.notification_log, outcome.subs_body)),
        )
    } else {
        eprintln!("subsmoke: churn run, {} standing regions", churn.regions);
        let outcome = run_churn(&churn);
        let failures = judge_churn(&outcome);
        eprintln!(
            "subsmoke: {} rows x {} regions: index tested {} of {} ({:.2}%), \
             {:.1} ms indexed vs {:.1} ms brute",
            outcome.rows,
            outcome.regions,
            outcome.regions_tested,
            outcome.brute_tested,
            outcome.test_ratio() * 100.0,
            outcome.indexed_seconds * 1e3,
            outcome.brute_seconds * 1e3,
        );
        (churn_summary_json(&outcome, &failures), failures, None)
    };

    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).expect("create --out dir");
        std::fs::write(dir.join("summary.json"), summary.to_string()).expect("write summary");
        if let Some((notifications, subs)) = &log {
            std::fs::write(dir.join("notifications.ndjson"), notifications)
                .expect("write notification log");
            std::fs::write(dir.join("subscriptions.json"), subs).expect("write subscriptions");
        }
        eprintln!("subsmoke: artifacts in {}", dir.display());
    }

    println!("{summary}");
    if failures.is_empty() {
        eprintln!("subsmoke: PASS");
    } else {
        for failure in &failures {
            eprintln!("subsmoke: FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
