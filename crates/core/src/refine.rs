//! Result refinement: from segment pairs back to concrete events.
//!
//! SegDiff returns *periods* — `((t_D, t_C), (t_B, t_A))` tuples — and the
//! paper notes that "once the periods ... are found, biologists can further
//! explore the characteristics of data collected in these periods" (§1).
//! This module is that exploration step: given the raw series, it locates
//! the steepest event inside each returned pair and classifies pairs whose
//! steepest event misses the user threshold (possible within the `2ε`
//! tolerance) as near misses.

use crate::oracle::pair_extreme_change;
use crate::result::SegmentPair;
use featurespace::{QueryRegion, SearchKind};
use sensorgen::TimeSeries;

/// A refined search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinedEvent {
    /// The period pair the event was found in.
    pub pair: SegmentPair,
    /// Start time of the steepest event.
    pub t1: f64,
    /// End time of the steepest event.
    pub t2: f64,
    /// Its change `v(t2) - v(t1)`.
    pub dv: f64,
    /// Whether the event meets the user threshold exactly (`false` means
    /// the pair is a `2ε` near miss).
    pub meets_threshold: bool,
}

/// Refines every result pair against the raw `series`: finds the steepest
/// event (minimum `Δv` for drops, maximum for jumps) with `0 < Δt <= T`
/// inside the pair, on a grid of `grid` points per interval plus all
/// sampled observations.
///
/// Pairs admitting no event at all (cannot happen for pairs produced by
/// the framework over the same series) are skipped.
pub fn refine_results(
    series: &TimeSeries,
    results: &[SegmentPair],
    region: &QueryRegion,
    grid: usize,
) -> Vec<RefinedEvent> {
    let mut out = Vec::with_capacity(results.len());
    for &pair in results {
        let Some(extreme) = pair_extreme_change(series, &pair, region, grid) else {
            continue;
        };
        let (t1, t2) = locate_event(series, &pair, region, extreme, grid);
        let meets = match region.kind {
            SearchKind::Drop => extreme <= region.v,
            SearchKind::Jump => extreme >= region.v,
        };
        out.push(RefinedEvent {
            pair,
            t1,
            t2,
            dv: extreme,
            meets_threshold: meets,
        });
    }
    out
}

/// Like [`refine_results`], but refines chunks of pairs in parallel on a
/// fixed pool of at most `threads` worker threads
/// ([`crate::pool::run_on_pool`]). Refinement of one pair is pure and
/// independent, and chunk outputs are concatenated in submission order,
/// so the result is identical to the sequential path for every thread
/// count.
pub fn refine_results_with_threads(
    series: &TimeSeries,
    results: &[SegmentPair],
    region: &QueryRegion,
    grid: usize,
    threads: usize,
) -> Vec<RefinedEvent> {
    if threads <= 1 || results.len() <= 1 {
        return refine_results(series, results, region, grid);
    }
    // Over-partition (4 chunks per worker) so one dense chunk cannot
    // stall the pool behind a static split.
    let chunk = results.len().div_ceil(threads * 4).max(1);
    let chunks: Vec<&[SegmentPair]> = results.chunks(chunk).collect();
    let outs = crate::pool::run_on_pool(threads, chunks.len(), |i| {
        refine_results(series, chunks[i], region, grid)
    });
    outs.into_iter().flatten().collect()
}

/// Finds a `(t1, t2)` attaining (up to grid resolution) the extreme change.
fn locate_event(
    series: &TimeSeries,
    pair: &SegmentPair,
    region: &QueryRegion,
    target: f64,
    grid: usize,
) -> (f64, f64) {
    let times = |lo: f64, hi: f64| -> Vec<f64> {
        let mut v: Vec<f64> = series
            .times()
            .iter()
            .copied()
            .filter(|&t| lo <= t && t <= hi)
            .collect();
        if hi > lo {
            for k in 0..=grid {
                v.push(lo + (hi - lo) * k as f64 / grid as f64);
            }
        } else {
            v.push(lo);
        }
        v.sort_by(f64::total_cmp);
        v.dedup();
        v
    };
    let earlier = times(pair.t_d, pair.t_c);
    let later = times(pair.t_b, pair.t_a);
    let mut best = (pair.t_c, pair.t_b, f64::INFINITY);
    for &t1 in &earlier {
        let Some(v1) = series.interpolate(t1) else {
            continue;
        };
        for &t2 in &later {
            let dt = t2 - t1;
            if dt <= 0.0 || dt > region.t {
                continue;
            }
            let Some(v2) = series.interpolate(t2) else {
                continue;
            };
            let dv = v2 - v1;
            let gap = (dv - target).abs();
            if gap < best.2 {
                best = (t1, t2, gap);
            }
        }
    }
    (best.0, best.1)
}

/// Splits refined events into exact hits and `2ε` near misses.
pub fn partition_hits(events: &[RefinedEvent]) -> (Vec<RefinedEvent>, Vec<RefinedEvent>) {
    events.iter().partition(|e| e.meets_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryPlan, SegDiffConfig, SegDiffIndex};
    use sensorgen::HOUR;

    fn series_with_drop() -> TimeSeries {
        let mut s = TimeSeries::new();
        let mut v = 10.0;
        for i in 0..200 {
            if (80..88).contains(&i) {
                v -= 0.5; // 4-degree drop over 40 minutes
            }
            s.push(i as f64 * 300.0, v);
        }
        s
    }

    #[test]
    fn refinement_locates_the_drop() {
        let series = series_with_drop();
        let dir = std::env::temp_dir().join(format!("segdiff-refine-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.0);
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let refined = refine_results(&series, &results, &region, 32);
        assert_eq!(refined.len(), results.len());
        // The steepest refined event must reach the true -4 drop and sit
        // inside the planted window.
        let steepest = refined
            .iter()
            .min_by(|a, b| a.dv.partial_cmp(&b.dv).unwrap())
            .unwrap();
        assert!(steepest.dv <= -3.9, "steepest {}", steepest.dv);
        // The full -4 drop runs from sample 79 (v = 10, t = 23700) to
        // sample 87 (v = 6, t = 26100); the located event must span it
        // (t1 may sit earlier on the flat plateau where v is still 10).
        assert!(
            steepest.t1 <= 23_700.0 + 1.0 && steepest.t2 >= 26_100.0 - 1.0,
            "located ({}, {})",
            steepest.t1,
            steepest.t2
        );
        assert!(steepest.meets_threshold);
        // Every refined event is inside its pair and within T.
        for e in &refined {
            assert!(e.pair.covers(e.t1, e.t2));
            assert!(e.t2 - e.t1 <= region.t + 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn near_misses_are_classified() {
        let series = series_with_drop();
        let dir = std::env::temp_dir().join(format!("segdiff-refine2-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Large epsilon: tolerance admits pairs whose best drop is above V.
        let mut idx =
            SegDiffIndex::create(&dir, SegDiffConfig::default().with_epsilon(1.0)).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -3.9);
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let refined = refine_results(&series, &results, &region, 32);
        let (hits, misses) = partition_hits(&refined);
        // The genuine -4 drop is a hit; with eps = 1 the tolerance is 2
        // degrees, so near misses are possible but every near miss must
        // still be within V + 2eps.
        assert!(!hits.is_empty());
        for m in &misses {
            assert!(m.dv <= region.v + 2.0 + 1e-6);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
