//! The Cold Air Drainage transect generator.

use crate::events::EventSchedule;
use crate::noise::NoiseConfig;
use crate::series::TimeSeries;
use crate::weather::WeatherModel;
use crate::SAMPLE_PERIOD;
use rand::{rngs::StdRng, SeedableRng};

/// Configuration of the synthetic CAD transect.
///
/// The defaults mimic the paper's deployment: 25 sensors in two parallel
/// lines across a canyon, one observation every five minutes, recorded from
/// December to the following November (365 days).
#[derive(Debug, Clone)]
pub struct CadTransectConfig {
    /// Number of sensors in the transect.
    pub sensors: u32,
    /// Recording length in days.
    pub days: u32,
    /// Sampling period in seconds.
    pub sample_period: f64,
    /// Climate model shared by the transect.
    pub weather: WeatherModel,
    /// Noise/anomaly model per sensor.
    pub noise: NoiseConfig,
    /// Daily CAD-event probability at the coldest time of year.
    pub winter_daily_prob: f64,
    /// Daily CAD-event probability at the warmest time of year.
    pub summer_daily_prob: f64,
}

impl Default for CadTransectConfig {
    fn default() -> Self {
        Self {
            sensors: 25,
            days: 365,
            sample_period: SAMPLE_PERIOD,
            weather: WeatherModel::default(),
            noise: NoiseConfig::default(),
            winter_daily_prob: 0.75,
            summer_daily_prob: 0.10,
        }
    }
}

impl CadTransectConfig {
    /// Sets the recording length.
    pub fn with_days(mut self, days: u32) -> Self {
        self.days = days;
        self
    }

    /// Sets the number of sensors.
    pub fn with_sensors(mut self, sensors: u32) -> Self {
        self.sensors = sensors;
        self
    }

    /// Disables noise and anomalies (useful in tests).
    pub fn clean(mut self) -> Self {
        self.noise = NoiseConfig::none();
        self
    }

    /// Expected number of observations per sensor, ignoring dropouts.
    pub fn samples_per_sensor(&self) -> usize {
        (self.days as f64 * crate::DAY / self.sample_period) as usize
    }

    /// How strongly CAD events express at `sensor` (0-based position along
    /// the transect): sensors near the canyon bottom (the middle of the
    /// transect) see deeper drops.
    pub fn depth_scale(&self, sensor: u32) -> f64 {
        if self.sensors <= 1 {
            return 1.0;
        }
        let x = sensor as f64 / (self.sensors - 1) as f64; // 0..1 across
        let canyon = 1.0 - (2.0 * x - 1.0).powi(2); // 0 at rims, 1 at bottom
        0.5 + canyon
    }
}

/// Generates the raw (unsmoothed) series for one sensor.
///
/// Deterministic in `(cfg, sensor, seed)`: each sensor derives its own RNG
/// stream, so series can be generated independently and in parallel.
pub fn generate_sensor(cfg: &CadTransectConfig, sensor: u32, seed: u64) -> TimeSeries {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(sensor as u64 + 1)));
    let mut weather = cfg.weather.clone();
    let schedule = EventSchedule::generate(
        &mut rng,
        cfg.days,
        cfg.winter_daily_prob,
        cfg.summer_daily_prob,
        cfg.depth_scale(sensor),
        cfg.weather.coldest_day,
    );
    // Small per-sensor bias: elevation/exposure differences along the canyon.
    let bias = crate::rng::normal(&mut rng, 0.0, 0.7);

    let n = cfg.samples_per_sensor();
    let mut out = TimeSeries::with_capacity(n);
    let mut skip = 0u32;
    for i in 0..n {
        let t = i as f64 * cfg.sample_period;
        weather.step_front(&mut rng, cfg.sample_period);
        if skip > 0 {
            skip -= 1;
            continue; // dropout: no observation recorded
        }
        if let Some(len) = cfg.noise.dropout(&mut rng) {
            skip = len;
            continue;
        }
        let v = weather.baseline(t)
            + weather.front()
            + schedule.offset(t)
            + bias
            + cfg.noise.white(&mut rng)
            + cfg.noise.spike(&mut rng);
        out.push(t, v);
    }
    out
}

/// Generates the whole transect: one series per sensor. Each sensor gets
/// an *independent* weather realization — adequate for experiments that
/// treat sensors as separate workloads. For cross-sensor analyses use
/// [`generate_transect_correlated`].
pub fn generate_transect(cfg: &CadTransectConfig, seed: u64) -> Vec<TimeSeries> {
    (0..cfg.sensors)
        .map(|s| generate_sensor(cfg, s, seed))
        .collect()
}

/// Generates the transect with a **shared** weather-front process: all
/// sensors in the canyon see the same synoptic fronts (plus their own CAD
/// events, bias, noise and dropouts), so cross-sensor values are strongly
/// correlated — like the real deployment, where two parallel lines of
/// sensors sample one air mass.
pub fn generate_transect_correlated(cfg: &CadTransectConfig, seed: u64) -> Vec<TimeSeries> {
    // One realization of the shared front, sampled at every slot.
    let n = cfg.samples_per_sensor();
    let mut front_rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_DEAD_BEEF);
    let mut weather = cfg.weather.clone();
    let mut front = Vec::with_capacity(n);
    for _ in 0..n {
        front.push(weather.step_front(&mut front_rng, cfg.sample_period));
    }

    (0..cfg.sensors)
        .map(|sensor| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(sensor as u64 + 1)),
            );
            let schedule = EventSchedule::generate(
                &mut rng,
                cfg.days,
                cfg.winter_daily_prob,
                cfg.summer_daily_prob,
                cfg.depth_scale(sensor),
                cfg.weather.coldest_day,
            );
            let bias = crate::rng::normal(&mut rng, 0.0, 0.7);
            let mut out = TimeSeries::with_capacity(n);
            let mut skip = 0u32;
            for (i, &front_i) in front.iter().enumerate() {
                let t = i as f64 * cfg.sample_period;
                if skip > 0 {
                    skip -= 1;
                    continue;
                }
                if let Some(len) = cfg.noise.dropout(&mut rng) {
                    skip = len;
                    continue;
                }
                let v = cfg.weather.baseline(t)
                    + front_i
                    + schedule.offset(t)
                    + bias
                    + cfg.noise.white(&mut rng)
                    + cfg.noise.spike(&mut rng);
                out.push(t, v);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DAY, HOUR};

    #[test]
    fn generator_is_deterministic() {
        let cfg = CadTransectConfig::default().with_days(3);
        let a = generate_sensor(&cfg, 4, 99);
        let b = generate_sensor(&cfg, 4, 99);
        assert_eq!(a, b);
        let c = generate_sensor(&cfg, 5, 99);
        assert_ne!(a, c, "different sensors differ");
    }

    #[test]
    fn sample_count_close_to_expected() {
        let cfg = CadTransectConfig::default().with_days(10);
        let s = generate_sensor(&cfg, 0, 1);
        let expect = cfg.samples_per_sensor();
        // Dropouts remove a small fraction of samples.
        assert!(s.len() <= expect);
        assert!(s.len() as f64 > 0.95 * expect as f64, "len {}", s.len());
    }

    #[test]
    fn clean_config_has_every_sample() {
        let cfg = CadTransectConfig::default().with_days(2).clean();
        let s = generate_sensor(&cfg, 0, 1);
        assert_eq!(s.len(), cfg.samples_per_sensor());
    }

    #[test]
    fn temperatures_in_plausible_band() {
        let cfg = CadTransectConfig::default().with_days(30);
        let s = generate_sensor(&cfg, 12, 7);
        assert!(s.min_value().unwrap() > -45.0);
        assert!(s.max_value().unwrap() < 60.0);
    }

    #[test]
    fn winter_mornings_show_drops() {
        // With a daily winter probability of 0.75 and 30 winter days, the
        // bottom-of-canyon sensor must show at least one >=3 degC drop within
        // an hour (the paper's CAD definition).
        let cfg = CadTransectConfig::default().with_days(30).clean();
        let s = generate_sensor(&cfg, 12, 21);
        let mut found = false;
        'outer: for i in 0..s.len() {
            let (ti, vi) = s.get(i);
            for j in (i + 1)..s.len() {
                let (tj, vj) = s.get(j);
                if tj - ti > HOUR {
                    break;
                }
                if vj - vi <= -3.0 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no CAD-grade drop found in a winter month");
    }

    #[test]
    fn depth_scale_peaks_mid_transect() {
        let cfg = CadTransectConfig::default();
        assert!(cfg.depth_scale(12) > cfg.depth_scale(0));
        assert!(cfg.depth_scale(12) > cfg.depth_scale(24));
        assert!((cfg.depth_scale(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn correlated_transect_shares_fronts() {
        let cfg = CadTransectConfig::default()
            .with_days(10)
            .with_sensors(4)
            .clean();
        // Disable CAD events so the shared front dominates the residual.
        let cfg = CadTransectConfig {
            winter_daily_prob: 0.0,
            summer_daily_prob: 0.0,
            ..cfg
        };
        let corr = generate_transect_correlated(&cfg, 5);
        let indep = generate_transect(&cfg, 5);
        let residual = |s: &TimeSeries, cfg: &CadTransectConfig| -> Vec<f64> {
            s.iter().map(|(t, v)| v - cfg.weather.baseline(t)).collect()
        };
        let corrcoef = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len().min(b.len());
            let ma = a[..n].iter().sum::<f64>() / n as f64;
            let mb = b[..n].iter().sum::<f64>() / n as f64;
            let cov: f64 = (0..n).map(|i| (a[i] - ma) * (b[i] - mb)).sum();
            let va: f64 = (0..n).map(|i| (a[i] - ma).powi(2)).sum();
            let vb: f64 = (0..n).map(|i| (b[i] - mb).powi(2)).sum();
            cov / (va.sqrt() * vb.sqrt())
        };
        let rc = corrcoef(&residual(&corr[0], &cfg), &residual(&corr[3], &cfg));
        let ri = corrcoef(&residual(&indep[0], &cfg), &residual(&indep[3], &cfg));
        assert!(rc > 0.95, "shared front correlation {rc}");
        assert!(ri < 0.5, "independent correlation {ri}");
    }

    #[test]
    fn transect_has_one_series_per_sensor() {
        let cfg = CadTransectConfig::default().with_days(1).with_sensors(5);
        let t = generate_transect(&cfg, 3);
        assert_eq!(t.len(), 5);
        for s in &t {
            assert!(s.end_time().unwrap() < 1.0 * DAY);
        }
    }
}
