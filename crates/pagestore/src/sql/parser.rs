//! Recursive-descent SQL parser.

use super::ast::{BinOp, Expr, Projection, Statement};
use super::lexer::{tokenize, Token};
use crate::error::Result;
use crate::StoreError;

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    // Allow a trailing semicolon, then demand the end.
    p.eat(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> StoreError {
        StoreError::InvalidArgument(format!(
            "SQL parse error at token {}: {msg}",
            self.pos.min(self.tokens.len())
        ))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes `tok` if it is next; returns whether it did.
    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {what}")))
        }
    }

    /// Consumes a keyword (case-insensitive identifier) if next.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.error(&format!("expected {what}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            Some(Token::Minus) => match self.next() {
                Some(Token::Number(n)) => Ok(-n),
                _ => Err(self.error("expected number after '-'")),
            },
            _ => Err(self.error("expected number")),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        self.expect(&Token::LParen, "'('")?;
        let mut cols = vec![self.ident("column name")?];
        while self.eat(&Token::Comma) {
            cols.push(self.ident("column name")?);
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(cols)
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                let name = self.ident("table name")?;
                let cols = self.ident_list()?;
                return Ok(Statement::CreateTable { name, cols });
            }
            if self.eat_kw("INDEX") {
                let name = self.ident("index name")?;
                self.expect_kw("ON")?;
                let table = self.ident("table name")?;
                let cols = self.ident_list()?;
                return Ok(Statement::CreateIndex { name, table, cols });
            }
            return Err(self.error("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident("table name")?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen, "'('")?;
                let mut row = vec![self.number()?];
                while self.eat(&Token::Comma) {
                    row.push(self.number()?);
                }
                self.expect(&Token::RParen, "')'")?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_kw("SELECT") {
            let projection = if self.eat(&Token::Star) {
                Projection::All
            } else if self.eat_kw("COUNT") {
                self.expect(&Token::LParen, "'('")?;
                self.expect(&Token::Star, "'*'")?;
                self.expect(&Token::RParen, "')'")?;
                Projection::Count
            } else {
                let mut cols = vec![self.ident("column name")?];
                while self.eat(&Token::Comma) {
                    cols.push(self.ident("column name")?);
                }
                Projection::Columns(cols)
            };
            self.expect_kw("FROM")?;
            let table = self.ident("table name")?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            let index_hint = if self.eat_kw("USING") {
                self.expect_kw("INDEX")?;
                Some(self.ident("index name")?)
            } else {
                None
            };
            let limit = if self.eat_kw("LIMIT") {
                Some(self.number()? as u64)
            } else {
                None
            };
            return Ok(Statement::Select {
                projection,
                table,
                predicate,
                index_hint,
                limit,
            });
        }
        Err(self.error("expected CREATE, INSERT or SELECT"))
    }

    // Expression grammar, lowest precedence first.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Ident(name)) => Ok(Expr::Column(name)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse("CREATE TABLE ev (dt, dv, t)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "ev".into(),
                cols: vec!["dt".into(), "dv".into(), "t".into()],
            }
        );
    }

    #[test]
    fn parses_create_index() {
        let s = parse("create index by_dt on ev (dt, dv);").unwrap();
        assert!(matches!(s, Statement::CreateIndex { .. }));
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO ev VALUES (1, -2.5, 3), (4, 5, 6)").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows, vec![vec![1.0, -2.5, 3.0], vec![4.0, 5.0, 6.0]]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_the_papers_line_query() {
        let s = parse(
            "SELECT td, tc, tb, ta FROM drop2 \
             WHERE dt1 <= 3600 AND dv1 > -3 AND dt2 > 3600 AND dv2 < -3 \
             AND dv1 + (dv2 - dv1) / (dt2 - dt1) * (3600 - dt1) <= -3",
        )
        .unwrap();
        match s {
            Statement::Select {
                projection,
                table,
                predicate,
                ..
            } => {
                assert_eq!(
                    projection,
                    Projection::Columns(vec!["td".into(), "tc".into(), "tb".into(), "ta".into()])
                );
                assert_eq!(table, "drop2");
                let conj = predicate.unwrap();
                assert_eq!(conj.conjuncts().len(), 5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_count_hint_limit() {
        let s = parse("SELECT COUNT(*) FROM t WHERE a >= 1 USING INDEX by_a LIMIT 10").unwrap();
        match s {
            Statement::Select {
                projection,
                index_hint,
                limit,
                ..
            } => {
                assert_eq!(projection, Projection::Count);
                assert_eq!(index_hint.as_deref(), Some("by_a"));
                assert_eq!(limit, Some(10));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_is_sane() {
        let s = parse("SELECT * FROM t WHERE a + 2 * 3 = 7 OR NOT b > 1 AND c < 2").unwrap();
        let Statement::Select {
            predicate: Some(e), ..
        } = s
        else {
            panic!()
        };
        // Top level must be OR.
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("CREATE TABLE t").is_err());
        assert!(parse("INSERT INTO t VALUES 1, 2").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage").is_err());
        assert!(parse("DELETE FROM t").is_err());
    }
}
