//! Rule L8: cross-artifact contract drift.
//!
//! Two contracts in this workspace live in prose and string literals
//! rather than types, so the compiler cannot see them rot:
//!
//! * **HTTP routes** — the `crates/server/src/routes.rs` registry must
//!   match the `(method, path)` dispatch arms in `service.rs` (both
//!   directions), each registry entry's `params` must equal the
//!   `check_query_params` allowed list of the handler its arm calls,
//!   and the README routes table (between the
//!   `<!-- routes-table:begin/end -->` markers) must be the registry's
//!   generated table, byte for byte.
//! * **CLI subcommands** — the `match sub` dispatch in
//!   `crates/cli/src/args.rs` must agree with the `USAGE` text and the
//!   README: every subcommand is documented in both, and every
//!   `segdiff <word>` the README mentions is a real subcommand.
//!
//! Everything is parsed lexically with the crate's own lexer, in the
//! same style as L4's metric-registry reconciliation; the routes table
//! renderer here is pinned byte-identical to
//! `segdiff_server::routes::markdown_table()` by an integration test.

use crate::callgraph::file_functions;
use crate::config::{
    ARGS_RS_PATH, ROUTES_RS_PATH, ROUTES_TABLE_BEGIN, ROUTES_TABLE_END, SERVICE_RS_PATH,
};
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, TokKind};
use std::collections::BTreeMap;

/// One entry parsed from the `routes.rs` registry.
#[derive(Debug, Clone)]
pub struct ParsedRoute {
    /// `GET` / `POST` / `DELETE` (upper-cased ctor name).
    pub method: String,
    /// Path, possibly with a `<…>` dynamic segment.
    pub path: String,
    /// Declared query parameters.
    pub params: Vec<String>,
    /// Help text (last column of the generated table).
    pub help: String,
    /// Line in `routes.rs`.
    pub line: u32,
}

impl ParsedRoute {
    /// Whether the path has a dynamic `<…>` segment (no dispatch-arm
    /// literal to reconcile against).
    pub fn is_dynamic(&self) -> bool {
        self.path.contains('<')
    }
}

/// One static `(method, path)` dispatch arm in `service.rs`.
#[derive(Debug, Clone)]
struct DispatchArm {
    method: String,
    path: String,
    /// First `self.<name>(` called by the arm body, when present.
    handler: Option<String>,
    line: u32,
}

/// The artifact sources rule L8 reconciles. `None` skips the checks
/// that need the artifact (the orchestrator reports unreadable files
/// separately).
#[derive(Debug, Default)]
pub struct Inputs<'a> {
    /// `crates/server/src/routes.rs`.
    pub routes_src: Option<&'a str>,
    /// `crates/server/src/service.rs`.
    pub service_src: Option<&'a str>,
    /// `crates/cli/src/args.rs`.
    pub args_src: Option<&'a str>,
    /// `README.md`.
    pub readme: Option<&'a str>,
}

/// Runs every L8 check the available inputs allow. Diagnostics are
/// unfiltered; the caller applies the suppression index.
pub fn check(inputs: &Inputs) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let routes = inputs.routes_src.map(parse_routes);
    if let (Some(routes), Some(service)) = (&routes, inputs.service_src) {
        reconcile_routes(routes, service, &mut out);
    }
    if let (Some(routes), Some(readme)) = (&routes, inputs.readme) {
        readme_routes_drift(routes, readme, &mut out);
    }
    if let Some(args) = inputs.args_src {
        reconcile_cli(args, inputs.readme, &mut out);
    }
    out
}

/// Parses `RouteDef::get("/path", &["p", …], "help")` constructor calls.
pub fn parse_routes(src: &str) -> Vec<ParsedRoute> {
    let toks = lex(src);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let method = match t.text(src) {
            "get" => "GET",
            "post" => "POST",
            "delete" => "DELETE",
            _ => continue,
        };
        let preceded = i >= 3
            && toks[i - 1].kind == TokKind::Punct(b':')
            && toks[i - 2].kind == TokKind::Punct(b':')
            && toks[i - 3].kind == TokKind::Ident
            && toks[i - 3].text(src) == "RouteDef";
        if !preceded {
            continue;
        }
        // ( "path" , & [ "p" , … ] , "help" )
        let (Some(op), Some(path), Some(c1), Some(amp), Some(open)) = (
            toks.get(i + 1),
            toks.get(i + 2),
            toks.get(i + 3),
            toks.get(i + 4),
            toks.get(i + 5),
        ) else {
            continue;
        };
        if op.kind != TokKind::Punct(b'(')
            || path.kind != TokKind::Str
            || c1.kind != TokKind::Punct(b',')
            || amp.kind != TokKind::Punct(b'&')
            || open.kind != TokKind::Punct(b'[')
        {
            continue;
        }
        let mut params = Vec::new();
        let mut j = i + 6;
        while j < toks.len() && toks[j].kind != TokKind::Punct(b']') {
            if toks[j].kind == TokKind::Str {
                params.push(toks[j].str_value(src));
            }
            j += 1;
        }
        let help = match (toks.get(j + 1), toks.get(j + 2)) {
            (Some(c), Some(h)) if c.kind == TokKind::Punct(b',') && h.kind == TokKind::Str => {
                h.str_value(src)
            }
            _ => continue,
        };
        out.push(ParsedRoute {
            method: method.to_string(),
            path: path.str_value(src),
            params,
            help,
            line: path.line,
        });
    }
    out
}

/// The markdown routes table generated from the parsed registry — must
/// stay byte-identical to `segdiff_server::routes::markdown_table()`
/// (an integration test in the facade crate pins the two together).
pub fn markdown_table(routes: &[ParsedRoute]) -> String {
    let mut out =
        String::from("| method | path | query params | description |\n|---|---|---|---|\n");
    for r in routes {
        let params = if r.params.is_empty() {
            "—".to_string()
        } else {
            r.params
                .iter()
                .map(|p| format!("`{p}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "| {} | `{}` | {} | {} |\n",
            r.method, r.path, params, r.help
        ));
    }
    out
}

/// Registry ↔ dispatch ↔ handler-params reconciliation.
fn reconcile_routes(routes: &[ParsedRoute], service_src: &str, out: &mut Vec<Diagnostic>) {
    let ctx = FileCtx::new(SERVICE_RS_PATH, service_src);
    let arms = dispatch_arms(&ctx);
    let params_of = handler_params(&ctx);

    // Forward: every static registry entry has a dispatch arm, and its
    // params equal the handler's allowed list.
    for r in routes.iter().filter(|r| !r.is_dynamic()) {
        let Some(arm) = arms
            .iter()
            .find(|a| a.method == r.method && a.path == r.path)
        else {
            out.push(Diagnostic {
                rule: Rule::L8,
                file: ROUTES_RS_PATH.to_string(),
                line: r.line,
                col: 1,
                message: format!(
                    "route `{} {}` is registered but has no dispatch arm in service.rs",
                    r.method, r.path
                ),
                help: "add the arm to `SegDiffService::handle` or delete the registry entry"
                    .to_string(),
            });
            continue;
        };
        let Some(handler) = &arm.handler else {
            continue;
        };
        let Some(Some(allowed)) = params_of.get(handler.as_str()) else {
            // Handler takes no request / does its own parsing: nothing
            // to reconcile.
            continue;
        };
        let mut want = r.params.clone();
        let mut have = allowed.clone();
        want.sort();
        have.sort();
        if want != have {
            out.push(Diagnostic {
                rule: Rule::L8,
                file: ROUTES_RS_PATH.to_string(),
                line: r.line,
                col: 1,
                message: format!(
                    "route `{} {}` declares params [{}] but handler `{}` accepts [{}]",
                    r.method,
                    r.path,
                    r.params.join(", "),
                    handler,
                    allowed.join(", "),
                ),
                help: "update the registry entry or the handler's `check_query_params` list"
                    .to_string(),
            });
        }
    }

    // Reverse: every dispatch arm is registered.
    for a in &arms {
        if !routes
            .iter()
            .any(|r| r.method == a.method && r.path == a.path)
        {
            out.push(Diagnostic {
                rule: Rule::L8,
                file: SERVICE_RS_PATH.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "dispatch arm `{} {}` is not in the crates/server/src/routes.rs registry",
                    a.method, a.path
                ),
                help: "register the route (with its params and help text) in routes.rs".to_string(),
            });
        }
    }
}

/// Static `("METHOD", "/path") =>` arms in non-test code, with the
/// first `self.<handler>(` the arm body calls.
fn dispatch_arms(ctx: &FileCtx) -> Vec<DispatchArm> {
    let toks = &ctx.toks;
    let src = ctx.src;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // ( Str , Str ) = >
        let pat = (
            toks.get(i),
            toks.get(i + 1),
            toks.get(i + 2),
            toks.get(i + 3),
            toks.get(i + 4),
            toks.get(i + 5),
            toks.get(i + 6),
        );
        let (Some(op), Some(m), Some(c), Some(p), Some(cl), Some(eq), Some(gt)) = pat else {
            continue;
        };
        if op.kind != TokKind::Punct(b'(')
            || m.kind != TokKind::Str
            || c.kind != TokKind::Punct(b',')
            || p.kind != TokKind::Str
            || cl.kind != TokKind::Punct(b')')
            || eq.kind != TokKind::Punct(b'=')
            || gt.kind != TokKind::Punct(b'>')
            || ctx.in_test(m.line)
        {
            continue;
        }
        let method = m.str_value(src);
        let path = p.str_value(src);
        if !matches!(
            method.as_str(),
            "GET" | "POST" | "PUT" | "DELETE" | "HEAD" | "PATCH"
        ) || !path.starts_with('/')
        {
            continue;
        }
        // The arm body's handler: the first `self . name (` within the
        // next few tokens (arm bodies here are single calls).
        let mut handler = None;
        let mut j = i + 7;
        while j + 3 < toks.len() && j < i + 40 {
            if toks[j].kind == TokKind::Ident
                && toks[j].text(src) == "self"
                && toks[j + 1].kind == TokKind::Punct(b'.')
                && toks[j + 2].kind == TokKind::Ident
                && toks[j + 3].kind == TokKind::Punct(b'(')
            {
                handler = Some(toks[j + 2].text(src).to_string());
                break;
            }
            // Stop at the arm's end.
            if toks[j].kind == TokKind::Punct(b',') && toks[j].line > m.line {
                break;
            }
            j += 1;
        }
        out.push(DispatchArm {
            method,
            path,
            handler,
            line: m.line,
        });
    }
    out
}

/// Per-handler allowed query parameters: the first
/// `check_query_params(req, &[…])` call in each function body.
/// `Some(None)` means the function makes no such call.
fn handler_params(ctx: &FileCtx) -> BTreeMap<String, Option<Vec<String>>> {
    let toks = &ctx.toks;
    let src = ctx.src;
    let mut out = BTreeMap::new();
    for (name, _impl_type, _line, open, close) in file_functions(ctx) {
        let mut params: Option<Vec<String>> = None;
        let mut i = open;
        while i < close {
            if toks[i].kind == TokKind::Ident
                && toks[i].text(src) == "check_query_params"
                && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b'('))
            {
                // Skip to the `[` and collect strings to the `]`.
                let mut j = i + 2;
                while j < close && toks[j].kind != TokKind::Punct(b'[') {
                    j += 1;
                }
                let mut list = Vec::new();
                while j < close && toks[j].kind != TokKind::Punct(b']') {
                    if toks[j].kind == TokKind::Str {
                        list.push(toks[j].str_value(src));
                    }
                    j += 1;
                }
                params = Some(list);
                break;
            }
            i += 1;
        }
        out.insert(name, params);
    }
    out
}

/// README routes-table drift, mirroring L4's metrics-table check.
fn readme_routes_drift(routes: &[ParsedRoute], readme: &str, out: &mut Vec<Diagnostic>) {
    let expected = markdown_table(routes);
    match extract_between(readme, ROUTES_TABLE_BEGIN, ROUTES_TABLE_END) {
        None => out.push(Diagnostic {
            rule: Rule::L8,
            file: "README.md".to_string(),
            line: 1,
            col: 1,
            message: format!(
                "README.md lacks the `{ROUTES_TABLE_BEGIN}` / `{ROUTES_TABLE_END}` markers"
            ),
            help: "add the markers and run `segdiff-lint --emit-routes-table`".to_string(),
        }),
        Some((line, actual)) => {
            if actual.trim() != expected.trim() {
                out.push(Diagnostic {
                    rule: Rule::L8,
                    file: "README.md".to_string(),
                    line,
                    col: 1,
                    message: "README routes table is out of sync with the registry".to_string(),
                    help: "replace the table with the output of `segdiff-lint --emit-routes-table`"
                        .to_string(),
                });
            }
        }
    }
}

/// CLI contract: `match sub` dispatch ↔ `USAGE` text ↔ README.
fn reconcile_cli(args_src: &str, readme: Option<&str>, out: &mut Vec<Diagnostic>) {
    let ctx = FileCtx::new(ARGS_RS_PATH, args_src);
    let subs = cli_dispatch_subs(&ctx);
    let usage = usage_text(&ctx);
    let usage_subs: Vec<String> = usage.as_deref().map(usage_subcommands).unwrap_or_default();

    for (name, line) in &subs {
        if !usage_subs.iter().any(|u| u == name) {
            out.push(Diagnostic {
                rule: Rule::L8,
                file: ARGS_RS_PATH.to_string(),
                line: *line,
                col: 1,
                message: format!("subcommand `{name}` is dispatched but absent from USAGE"),
                help: "add a `segdiff {name} …` line to the USAGE text".to_string(),
            });
        }
        if let Some(readme) = readme {
            if !readme_mentions_sub(readme, name) {
                out.push(Diagnostic {
                    rule: Rule::L8,
                    file: ARGS_RS_PATH.to_string(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "subcommand `{name}` is dispatched but not documented in README.md"
                    ),
                    help: format!("document it (a `segdiff {name}` or `-- {name}` example)"),
                });
            }
        }
    }
    for u in &usage_subs {
        if !subs.iter().any(|(n, _)| n == u) {
            out.push(Diagnostic {
                rule: Rule::L8,
                file: ARGS_RS_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!("USAGE documents `segdiff {u}` but no dispatch arm handles it"),
                help: "remove the dead usage line or wire the subcommand up".to_string(),
            });
        }
    }
    if let Some(readme) = readme {
        for (word, line) in readme_segdiff_words(readme) {
            if !subs.iter().any(|(n, _)| *n == word) {
                out.push(Diagnostic {
                    rule: Rule::L8,
                    file: "README.md".to_string(),
                    line,
                    col: 1,
                    message: format!(
                        "README mentions `segdiff {word}` but no such subcommand exists"
                    ),
                    help: "fix the example or add the subcommand".to_string(),
                });
            }
        }
    }
}

/// String arms of the `match sub {` block at relative brace depth 1.
fn cli_dispatch_subs(ctx: &FileCtx) -> Vec<(String, u32)> {
    let toks = &ctx.toks;
    let src = ctx.src;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text(src) != "match" {
            continue;
        }
        let Some(scrut) = toks.get(i + 1) else {
            continue;
        };
        if scrut.kind != TokKind::Ident || scrut.text(src) != "sub" {
            continue;
        }
        let Some(open) = toks
            .get(i + 2)
            .filter(|t| t.kind == TokKind::Punct(b'{'))
            .map(|_| i + 2)
        else {
            continue;
        };
        let Some(close) = ctx.close_of(open) else {
            continue;
        };
        let mut depth = 0usize;
        for j in open..=close {
            match toks[j].kind {
                TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b'}') => depth -= 1,
                // "name" => … or "name" | "alias" => …
                TokKind::Str if depth == 1 => {
                    let next = toks.get(j + 1).map(|t| t.kind);
                    let is_arm = next == Some(TokKind::Punct(b'|'))
                        || (next == Some(TokKind::Punct(b'='))
                            && toks.get(j + 2).map(|t| t.kind) == Some(TokKind::Punct(b'>')));
                    if is_arm {
                        out.push((toks[j].str_value(src), toks[j].line));
                    }
                }
                _ => {}
            }
        }
        break;
    }
    out
}

/// The `USAGE` const's string value.
fn usage_text(ctx: &FileCtx) -> Option<String> {
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text(ctx.src) == "USAGE" {
            // const USAGE : & str = "…"
            if let Some(s) = toks[i..].iter().take(8).find(|t| t.kind == TokKind::Str) {
                return Some(s.str_value(ctx.src));
            }
        }
    }
    None
}

/// Subcommand words from `  segdiff <word> …` usage lines.
fn usage_subcommands(usage: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in usage.lines() {
        let line = line.trim_start();
        if let Some(rest) = line.strip_prefix("segdiff ") {
            if let Some(word) = rest.split_whitespace().next() {
                if word.chars().all(|c| c.is_ascii_lowercase() || c == '-')
                    && !out.iter().any(|w| w == word)
                {
                    out.push(word.to_string());
                }
            }
        }
    }
    out
}

/// Whether the README documents subcommand `name` — either a
/// `segdiff <name>` mention or a `-- <name>` cargo-run example.
fn readme_mentions_sub(readme: &str, name: &str) -> bool {
    readme_segdiff_words(readme).iter().any(|(w, _)| w == name)
        || readme.contains(&format!("-- {name} "))
        || readme.contains(&format!("-- {name}\n"))
}

/// Every `segdiff <word>` mention in the README (exact lower-case
/// `segdiff` as a standalone word, followed by a lower-case word), with
/// its 1-based line.
fn readme_segdiff_words(readme: &str) -> Vec<(String, u32)> {
    let bytes = readme.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = readme[from..].find("segdiff") {
        let start = from + pos;
        let end = start + "segdiff".len();
        from = end;
        let before_ok = start == 0
            || !(bytes[start - 1].is_ascii_alphanumeric()
                || bytes[start - 1] == b'-'
                || bytes[start - 1] == b'_');
        if !before_ok {
            continue;
        }
        // Exactly one space, then a lower-case word. The word must
        // *start* with a letter: `segdiff --help` is a flag, not a
        // subcommand mention.
        let rest = &readme[end..];
        let Some(rest) = rest.strip_prefix(' ') else {
            continue;
        };
        if !rest.starts_with(|c: char| c.is_ascii_lowercase()) {
            continue;
        }
        let word: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || *c == '-')
            .collect();
        let line = readme[..start].lines().count() as u32;
        out.push((word, line.max(1)));
    }
    out
}

/// Returns (1-based line after the begin marker, text between markers).
fn extract_between<'a>(text: &'a str, begin: &str, end: &str) -> Option<(u32, &'a str)> {
    let b = text.find(begin)?;
    let after = b + begin.len();
    let e = text[after..].find(end)? + after;
    let line = text[..after].lines().count() as u32 + 1;
    Some((line, &text[after..e]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROUTES_SRC: &str = r#"
pub const ROUTES: &[RouteDef] = &[
    RouteDef::post("/query", &[], "run one query"),
    RouteDef::get("/metrics", &["format"], "registry dump"),
    RouteDef::get("/subscribe/<id>", &[], "inspect one subscription"),
];
"#;

    const SERVICE_SRC: &str = r#"
impl Svc {
    fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/query") => self.query(req),
            ("GET", "/metrics") => (self.metrics_dump(req), None),
            _ => Response::error(404, "no".into()),
        }
    }
    fn query(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) { return bad(e); }
        ok()
    }
    fn metrics_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["format"]) { return bad(e); }
        ok()
    }
}
"#;

    #[test]
    fn routes_parse() {
        let r = parse_routes(ROUTES_SRC);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].method, "POST");
        assert_eq!(r[0].path, "/query");
        assert!(r[0].params.is_empty());
        assert_eq!(r[1].params, vec!["format".to_string()]);
        assert!(r[2].is_dynamic());
    }

    #[test]
    fn in_sync_routes_are_clean() {
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            service_src: Some(SERVICE_SRC),
            ..Inputs::default()
        });
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unregistered_arm_and_dead_entry_fire() {
        let service = SERVICE_SRC.replace(
            "(\"GET\", \"/metrics\") => (self.metrics_dump(req), None),",
            "(\"GET\", \"/healthz\") => (self.metrics_dump(req), None),",
        );
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            service_src: Some(&service),
            ..Inputs::default()
        });
        assert!(
            d.iter()
                .any(|d| d.message.contains("`GET /healthz` is not in the")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|d| d
                .message
                .contains("`GET /metrics` is registered but has no dispatch arm")),
            "{d:?}"
        );
    }

    #[test]
    fn param_mismatch_fires() {
        let service = SERVICE_SRC.replace("&[\"format\"]", "&[\"format\", \"verbose\"]");
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            service_src: Some(&service),
            ..Inputs::default()
        });
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains(
                "declares params [format] but handler `metrics_dump` accepts [format, verbose]"
            ),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn test_code_arms_are_ignored() {
        let service = format!(
            "{SERVICE_SRC}\n#[cfg(test)]\nmod tests {{\n fn t() {{ match x {{ (\"GET\", \"/fake\") => self.q(r), _ => () }} }}\n}}\n"
        );
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            service_src: Some(&service),
            ..Inputs::default()
        });
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn readme_table_drift() {
        let routes = parse_routes(ROUTES_SRC);
        let table = markdown_table(&routes);
        let good =
            format!("# Doc\n<!-- routes-table:begin -->\n{table}<!-- routes-table:end -->\n");
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            readme: Some(&good),
            ..Inputs::default()
        });
        assert!(d.is_empty(), "{d:?}");
        let stale = good.replace("registry dump", "old words");
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            readme: Some(&stale),
            ..Inputs::default()
        });
        assert!(d.iter().any(|d| d.message.contains("out of sync")), "{d:?}");
        let d = check(&Inputs {
            routes_src: Some(ROUTES_SRC),
            readme: Some("no markers"),
            ..Inputs::default()
        });
        assert!(d.iter().any(|d| d.message.contains("lacks the")), "{d:?}");
    }

    const ARGS_SRC: &str = r#"
pub const USAGE: &str = "\
usage:
  segdiff generate --csv FILE
  segdiff query    --index DIR";

fn dispatch(sub: &str) -> Result<Command, String> {
    match sub {
        "generate" => Ok(Command::Generate {}),
        "query" => Ok(Command::Query {}),
        _ => Err(format!("unknown subcommand {sub}")),
    }
}
"#;

    #[test]
    fn cli_in_sync_is_clean() {
        let readme = "Run `segdiff generate` then `segdiff query`.";
        let d = check(&Inputs {
            args_src: Some(ARGS_SRC),
            readme: Some(readme),
            ..Inputs::default()
        });
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn undocumented_and_dead_subcommands_fire() {
        let args = ARGS_SRC.replace(
            "\"query\" => Ok(Command::Query {}),",
            "\"query\" => Ok(Command::Query {}),\n        \"hidden\" => Ok(Command::Hidden {}),",
        );
        let readme = "Run `segdiff generate`, `segdiff query`, and `segdiff hidden`.";
        let d = check(&Inputs {
            args_src: Some(&args),
            readme: Some(readme),
            ..Inputs::default()
        });
        assert!(
            d.iter().any(|d| d
                .message
                .contains("`hidden` is dispatched but absent from USAGE")),
            "{d:?}"
        );
        // USAGE documents a subcommand nobody dispatches.
        let args = ARGS_SRC.replace(
            "  segdiff query    --index DIR",
            "  segdiff query    --index DIR\n  segdiff ghost    --spooky",
        );
        let d = check(&Inputs {
            args_src: Some(&args),
            readme: None,
            ..Inputs::default()
        });
        assert!(
            d.iter()
                .any(|d| d.message.contains("USAGE documents `segdiff ghost`")),
            "{d:?}"
        );
    }

    #[test]
    fn readme_phantom_subcommand_fires() {
        let readme = "Use `segdiff generate`, `segdiff query`, or `segdiff frobnicate` today.";
        let d = check(&Inputs {
            args_src: Some(ARGS_SRC),
            readme: Some(readme),
            ..Inputs::default()
        });
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`segdiff frobnicate`"));
    }

    #[test]
    fn hyphenated_binary_names_are_not_mentions() {
        let readme = "Run segdiff-lint after `segdiff generate`; segdiff query too.";
        let words = readme_segdiff_words(readme);
        let names: Vec<&str> = words.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(names, vec!["generate", "query"]);
    }

    #[test]
    fn flags_are_not_subcommand_mentions() {
        let readme =
            "Try `segdiff --help` or `segdiff --url http://x`,\nthen `segdiff serve --root data`.";
        let words = readme_segdiff_words(readme);
        let names: Vec<&str> = words.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(names, vec!["serve"]);
    }
}
