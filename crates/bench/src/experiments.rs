//! The experiments of paper §6, one function per table/figure family.
//!
//! Four underlying sweeps feed every table and figure:
//!
//! * [`run_eps_sweep`] — ε ∈ {0.1, 0.2, 0.4, 0.8, 1.0} at the default
//!   window (Tables 3–6, Figures 7–11);
//! * [`run_w_sweep`] — w ∈ {1, 4, 8, 12, 16} h at ε = 0.2 (Table 7,
//!   Figures 12–13);
//! * [`run_scaling`] — five incremental data groups (Figures 14–15);
//! * [`run_random_queries`] — random query regions, warm and cold caches
//!   (Figures 16–24).

use crate::harness::{
    build_exh, build_segdiff, default_region, default_series, scratch_dir, time_query_exh,
    time_query_segdiff, Scale, TimedQuery,
};
use crate::report::{mib, ms, ratio, Report};
use featurespace::QueryRegion;
use segdiff::{CornerHistogram, QueryPlan};
use sensorgen::{TimeSeries, HOUR};

/// The five error tolerances of the paper's §6.1 sweep.
pub const EPSILONS: [f64; 5] = [0.1, 0.2, 0.4, 0.8, 1.0];
/// The five window widths (hours) of §6.2.
pub const WINDOWS_H: [f64; 5] = [1.0, 4.0, 8.0, 12.0, 16.0];

/// One ε point of the sweep.
pub struct EpsPoint {
    /// Error tolerance.
    pub eps: f64,
    /// Compression rate r.
    pub r: f64,
    /// SegDiff feature payload bytes (our physical layout).
    pub seg_payload: u64,
    /// SegDiff feature bytes under the paper's c2 accounting.
    pub seg_paper: u64,
    /// SegDiff heap + index bytes on disk.
    pub seg_disk: u64,
    /// SegDiff index bytes alone.
    pub seg_index: u64,
    /// Corner histogram over both kinds.
    pub hist: CornerHistogram,
    /// Default query, sequential scan, cold cache.
    pub scan: TimedQuery,
    /// Default query, index plan, cold cache.
    pub index: TimedQuery,
}

/// The full ε sweep, including the (ε-independent) Exh baseline.
pub struct EpsSweep {
    /// Observations in the subset.
    pub n: u64,
    /// One point per ε.
    pub points: Vec<EpsPoint>,
    /// Exh feature payload bytes (3 columns per row).
    pub exh_payload: u64,
    /// Exh heap + index bytes.
    pub exh_disk: u64,
    /// Exh index bytes alone.
    pub exh_index: u64,
    /// Exh default query, sequential scan, cold.
    pub exh_scan: TimedQuery,
    /// Exh default query, index plan, cold.
    pub exh_idx: TimedQuery,
}

/// Runs the ε sweep (§6.1) and returns every measured quantity.
pub fn run_eps_sweep(scale: &Scale) -> EpsSweep {
    let series = default_series(scale.subset_days, scale.seed);
    let w = 8.0 * HOUR;
    let region = default_region();

    let exh = build_exh(&series, w, scale.pool_pages, &scratch_dir("eps-exh"), true);
    let exh_stats = exh.index.stats();
    let exh_scan = time_query_exh(&exh, &region, QueryPlan::SeqScan, scale.repeats, true);
    let exh_idx = time_query_exh(&exh, &region, QueryPlan::Index, scale.repeats, true);

    let mut points = Vec::new();
    for (i, &eps) in EPSILONS.iter().enumerate() {
        let built = build_segdiff(
            &series,
            eps,
            w,
            scale.pool_pages,
            &scratch_dir(&format!("eps-{i}")),
            true,
        );
        let s = built.index.stats();
        let scan = time_query_segdiff(&built, &region, QueryPlan::SeqScan, scale.repeats, true);
        let index = time_query_segdiff(&built, &region, QueryPlan::Index, scale.repeats, true);
        points.push(EpsPoint {
            eps,
            r: s.compression_rate(),
            seg_payload: s.feature_payload_bytes,
            seg_paper: s.paper_feature_bytes,
            seg_disk: s.disk_bytes(),
            seg_index: s.index_bytes,
            hist: s.corner_hist(),
            scan,
            index,
        });
    }
    EpsSweep {
        n: series.len() as u64,
        points,
        exh_payload: exh_stats.feature_payload_bytes,
        exh_disk: exh_stats.disk_bytes(),
        exh_index: exh_stats.index_bytes,
        exh_scan,
        exh_idx,
    }
}

/// Table 3: compression rate under different tolerances.
pub fn table3(sweep: &EpsSweep, report: &mut Report) {
    report.heading("Table 3 — compression rate r under different error tolerances");
    report.table(
        &["eps", "r"],
        &sweep
            .points
            .iter()
            .map(|p| vec![format!("{}", p.eps), format!("{:.2}", p.r)])
            .collect::<Vec<_>>(),
    );
    report.para("(paper: 4.73, 7.03, 10.52, 16.10, 18.55 — r grows with eps)");
}

/// Table 4: corner-case distribution under different tolerances.
pub fn table4(sweep: &EpsSweep, report: &mut Report) {
    report.heading("Table 4 — percentage of corner cases under different tolerances");
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.eps),
                format!("{:.2}", p.hist.percent(1)),
                format!("{:.2}", p.hist.percent(2)),
                format!("{:.2}", p.hist.percent(3)),
                format!("{:.2}", p.hist.effective_corners()),
            ]
        })
        .collect();
    report.table(
        &[
            "eps",
            "one corner %",
            "two corners %",
            "three corners %",
            "effective",
        ],
        &rows,
    );
    report.para(
        "(paper at eps = 0.2: 19.83 / 46.79 / 33.37, effectively 2.13 corners — \
         the case analysis roughly halves corner storage)",
    );
}

/// Table 5: ratio of feature sizes and of sequential-scan times vs ε.
pub fn table5(sweep: &EpsSweep, report: &mut Report) {
    report.heading("Table 5 — ratios r_f (feature size) and r_st (seq-scan time) vs eps");
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.eps),
                ratio(sweep.exh_payload as f64, p.seg_payload as f64),
                ratio(sweep.exh_payload as f64, p.seg_paper as f64),
                ratio(sweep.exh_scan.seconds, p.scan.seconds),
            ]
        })
        .collect();
    report.table(&["eps", "r_f (physical)", "r_f (paper c2)", "r_st"], &rows);
    report.para("(paper: r_f 5.88..61.71, r_st 3.19..19.22 — both grow with eps)");
}

/// Table 6: ratio of disk sizes and of indexed execution times vs ε.
pub fn table6(sweep: &EpsSweep, report: &mut Report) {
    report.heading("Table 6 — ratios r_d (disk size) and r_it (indexed time) vs eps");
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.eps),
                ratio(sweep.exh_disk as f64, p.seg_disk as f64),
                ratio(sweep.exh_idx.seconds, p.index.seconds),
                ratio(
                    sweep.exh_idx.pages_read as f64,
                    p.index.pages_read.max(1) as f64,
                ),
            ]
        })
        .collect();
    report.table(&["eps", "r_d", "r_it (wall)", "r_it (pages)"], &rows);
    report.para("(paper: r_d 4.26..44.42, r_it 5.88..279.34 — indexes amplify Exh's size penalty)");
}

/// Figures 7–11: feature/disk sizes and query times as functions of r.
pub fn figs7_to_11(sweep: &EpsSweep, report: &mut Report) {
    report.heading("Figures 7-11 — sizes and times vs compression rate r");
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.r),
                mib(p.seg_payload),
                ratio(sweep.exh_payload as f64, p.seg_payload as f64),
                mib(p.seg_disk),
                ms(p.scan.seconds),
                ms(p.index.seconds),
            ]
        })
        .collect();
    report.table(
        &[
            "r",
            "feat MiB (fig 8)",
            "size ratio (fig 7)",
            "disk MiB (fig 9)",
            "scan ms (fig 10)",
            "index ms (fig 11)",
        ],
        &rows,
    );
    report.para(&format!(
        "Exh reference: features {} MiB, disk {} MiB, scan {} ms, index {} ms \
         (n = {}; curves should fall like 1/r; indexes lose to scans on this \
         large-result default query, as in the paper).",
        mib(sweep.exh_payload),
        mib(sweep.exh_disk),
        ms(sweep.exh_scan.seconds),
        ms(sweep.exh_idx.seconds),
        sweep.n
    ));
    // Shape check the paper emphasizes: SegDiff index overhead exceeds its
    // feature size (B-trees on repeated columns).
    for p in &sweep.points {
        if p.seg_index < p.seg_payload {
            report.para(&format!(
                "note: at eps = {} index bytes ({}) did not exceed feature bytes ({}).",
                p.eps,
                mib(p.seg_index),
                mib(p.seg_payload)
            ));
        }
    }
}

/// One point of the window sweep.
pub struct WPoint {
    /// Window width in hours.
    pub w_hours: f64,
    /// SegDiff feature payload bytes.
    pub seg_payload: u64,
    /// SegDiff disk bytes.
    pub seg_disk: u64,
    /// Exh feature payload bytes.
    pub exh_payload: u64,
    /// Exh disk bytes.
    pub exh_disk: u64,
    /// SegDiff scan time for the default query (cold).
    pub seg_scan: TimedQuery,
    /// Exh scan time for the default query (cold).
    pub exh_scan: TimedQuery,
}

/// Runs the window sweep (§6.2) at ε = 0.2.
pub fn run_w_sweep(scale: &Scale) -> Vec<WPoint> {
    let series = default_series(scale.subset_days, scale.seed);
    let region = default_region();
    WINDOWS_H
        .iter()
        .enumerate()
        .map(|(i, &wh)| {
            let w = wh * HOUR;
            let seg = build_segdiff(
                &series,
                0.2,
                w,
                scale.pool_pages,
                &scratch_dir(&format!("w-seg-{i}")),
                true,
            );
            let exh = build_exh(
                &series,
                w,
                scale.pool_pages,
                &scratch_dir(&format!("w-exh-{i}")),
                true,
            );
            let ss = seg.index.stats();
            let es = exh.index.stats();
            let seg_scan =
                time_query_segdiff(&seg, &region, QueryPlan::SeqScan, scale.repeats, true);
            let exh_scan = time_query_exh(&exh, &region, QueryPlan::SeqScan, scale.repeats, true);
            WPoint {
                w_hours: wh,
                seg_payload: ss.feature_payload_bytes,
                seg_disk: ss.disk_bytes(),
                exh_payload: es.feature_payload_bytes,
                exh_disk: es.disk_bytes(),
                seg_scan,
                exh_scan,
            }
        })
        .collect()
}

/// Table 7 and Figures 12–13 from the window sweep.
pub fn table7_figs12_13(points: &[WPoint], report: &mut Report) {
    report.heading("Table 7 + Figures 12-13 — window width sweep (eps = 0.2)");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.w_hours),
                mib(p.seg_payload),
                mib(p.exh_payload),
                ratio(p.exh_payload as f64, p.seg_payload as f64),
                ratio(p.exh_disk as f64, p.seg_disk as f64),
                ms(p.seg_scan.seconds),
                ms(p.exh_scan.seconds),
            ]
        })
        .collect();
    report.table(
        &[
            "w (h)",
            "SegDiff MiB",
            "Exh MiB",
            "r_f",
            "r_d",
            "SegDiff scan ms",
            "Exh scan ms",
        ],
        &rows,
    );
    report.para(
        "(paper: r_f 5.89 -> 13.94 and r_d 4.51 -> 10.18 as w grows 1 -> 16 h; \
         both systems' sizes grow roughly linearly in w but SegDiff's \
         advantage widens)",
    );
}

/// One point of the scalability run.
pub struct ScalePoint {
    /// Cumulative observations inserted.
    pub n_obs: u64,
    /// SegDiff feature payload bytes.
    pub seg_payload: u64,
    /// SegDiff scan time, cold.
    pub seg_scan: TimedQuery,
    /// Exh feature payload bytes, if Exh was still being built.
    pub exh_payload: Option<u64>,
    /// Exh scan time, cold, if measured.
    pub exh_scan: Option<TimedQuery>,
}

/// Runs the §6.3 scalability experiment: the full workload split into five
/// groups, inserted incrementally. Exh is aborted after two groups, exactly
/// like the paper ("it would take too much time to complete Exh's
/// experiments"), and extrapolated linearly afterwards.
pub fn run_scaling(scale: &Scale) -> Vec<ScalePoint> {
    let series = default_series(scale.full_days, scale.seed);
    let w = 8.0 * HOUR;
    let region = default_region();
    let group = series.len() / 5;

    let mut seg = build_segdiff(
        &TimeSeries::new(),
        0.2,
        w,
        scale.pool_pages,
        &scratch_dir("scale-seg"),
        false,
    );
    let mut exh = build_exh(
        &TimeSeries::new(),
        w,
        scale.pool_pages,
        &scratch_dir("scale-exh"),
        false,
    );

    let mut out = Vec::new();
    for g in 0..5 {
        let lo = g * group;
        let hi = if g == 4 {
            series.len()
        } else {
            (g + 1) * group
        };
        for i in lo..hi {
            let (t, v) = series.get(i);
            seg.index.push(t, v).expect("seg push");
            if g < 2 {
                exh.index.push(t, v).expect("exh push");
            }
        }
        if g == 4 {
            // flush the trailing segment before the final measurement
            seg.index.finish().expect("finish");
        }
        let ss = seg.index.stats();
        let seg_scan = time_query_segdiff(&seg, &region, QueryPlan::SeqScan, scale.repeats, true);
        let (exh_payload, exh_scan) = if g < 2 {
            exh.index.finish().expect("exh flush");
            let es = exh.index.stats();
            let t = time_query_exh(&exh, &region, QueryPlan::SeqScan, scale.repeats, true);
            (Some(es.feature_payload_bytes), Some(t))
        } else {
            (None, None)
        };
        out.push(ScalePoint {
            n_obs: ss.n_observations,
            seg_payload: ss.feature_payload_bytes,
            seg_scan,
            exh_payload,
            exh_scan,
        });
    }
    out
}

/// Figures 14–15 from the scalability run.
pub fn figs14_15(points: &[ScalePoint], report: &mut Report) {
    report.heading("Figures 14-15 — feature size and scan time vs number of observations");
    // Linear extrapolation of Exh from the first two groups.
    let slope = match (&points[0].exh_payload, &points[1].exh_payload) {
        (Some(a), Some(b)) => {
            (*b as f64 - *a as f64) / (points[1].n_obs as f64 - points[0].n_obs as f64)
        }
        _ => 0.0,
    };
    let base = points[1].exh_payload.unwrap_or(0) as f64;
    let base_n = points[1].n_obs as f64;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let exh_feat = match p.exh_payload {
                Some(b) => mib(b),
                None => format!(
                    "~{} (extrapolated)",
                    mib((base + slope * (p.n_obs as f64 - base_n)) as u64)
                ),
            };
            vec![
                format!("{}", p.n_obs),
                mib(p.seg_payload),
                exh_feat,
                ms(p.seg_scan.seconds),
                p.exh_scan
                    .map(|t| ms(t.seconds))
                    .unwrap_or_else(|| "aborted".into()),
            ]
        })
        .collect();
    report.table(
        &[
            "n",
            "SegDiff MiB",
            "Exh MiB",
            "SegDiff scan ms",
            "Exh scan ms",
        ],
        &rows,
    );
    report.para(
        "(paper: both grow linearly in n; Exh aborted after two groups with \
         1328 MB vs SegDiff's 108 MB, a 12.26x gap; SegDiff answers within \
         10 s for all sensors)",
    );
}

/// One random query region with all eight measurements.
pub struct RandomQueryPoint {
    /// Time-span threshold in hours.
    pub t_hours: f64,
    /// Drop threshold (degC, negative).
    pub v: f64,
    /// SegDiff results returned.
    pub results: u64,
    /// seg scan / seg index / exh scan / exh index, warm.
    pub warm: [f64; 4],
    /// Same, cold cache.
    pub cold: [f64; 4],
}

/// Runs the §6.4 random-query study. `n_queries` regions are sampled
/// uniformly over (T, V) query space, matching Figure 16's coverage.
pub fn run_random_queries(scale: &Scale, n_queries: usize) -> Vec<RandomQueryPoint> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let series = default_series(scale.subset_days, scale.seed);
    let w = 8.0 * HOUR;
    let seg = build_segdiff(
        &series,
        0.2,
        w,
        scale.pool_pages,
        &scratch_dir("rq-seg"),
        true,
    );
    let exh = build_exh(&series, w, scale.pool_pages, &scratch_dir("rq-exh"), true);

    let v_extent = series.value_range();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xABCD);
    let mut out = Vec::new();
    let repeats = scale.repeats.min(3);
    for _ in 0..n_queries {
        let t_hours = 0.25 + rng.random::<f64>() * 7.75;
        let v = -(0.5 + rng.random::<f64>() * (0.8 * v_extent));
        let region = QueryRegion::drop(t_hours * HOUR, v);
        let mut warm = [0.0f64; 4];
        let mut cold = [0.0f64; 4];
        let mut results = 0;
        for (slot, (plan, is_cold)) in [
            (QueryPlan::SeqScan, false),
            (QueryPlan::Index, false),
            (QueryPlan::SeqScan, true),
            (QueryPlan::Index, true),
        ]
        .iter()
        .enumerate()
        {
            let tq = time_query_segdiff(&seg, &region, *plan, repeats, *is_cold);
            results = tq.results;
            if *is_cold {
                cold[slot - 2] = tq.seconds;
            } else {
                warm[slot] = tq.seconds;
            }
        }
        for (slot, (plan, is_cold)) in [
            (QueryPlan::SeqScan, false),
            (QueryPlan::Index, false),
            (QueryPlan::SeqScan, true),
            (QueryPlan::Index, true),
        ]
        .iter()
        .enumerate()
        {
            let tq = time_query_exh(&exh, &region, *plan, repeats, *is_cold);
            if *is_cold {
                cold[slot] = tq.seconds;
            } else {
                warm[slot + 2] = tq.seconds;
            }
        }
        // Layout: warm = [seg_scan, seg_idx, exh_scan, exh_idx]
        //         cold = [seg_scan, seg_idx, exh_scan, exh_idx]
        out.push(RandomQueryPoint {
            t_hours,
            v,
            results,
            warm,
            cold,
        });
    }
    out
}

/// Figures 16–24 from the random-query study.
pub fn figs16_24(points: &[RandomQueryPoint], report: &mut Report) {
    report.heading("Figure 16 — coverage of random queries (T in hours, V in degC)");
    let hard_threshold = {
        // "Hard" = top quartile by retrieval volume (the quantity that
        // drives query time for both systems; the paper's hard region is
        // the top-right triangle of query space where the most tuples are
        // retrieved).
        let mut counts: Vec<u64> = points.iter().map(|p| p.results).collect();
        counts.sort_unstable();
        counts[3 * counts.len() / 4].max(1)
    };
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.t_hours),
                format!("{:.2}", p.v),
                format!("{}", p.results),
                if p.results >= hard_threshold {
                    "hard".into()
                } else {
                    "".into()
                },
            ]
        })
        .collect();
    report.table(&["T (h)", "V", "SegDiff results", "class"], &rows);
    report.para(
        "(paper: hard queries cluster at large T / shallow V — the top-right \
         triangular region retrieving the most tuples)",
    );

    report.heading("Figures 17-20 — per-query times with cache (ms)");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.t_hours),
                format!("{:.2}", p.v),
                ms(p.warm[2]),
                ms(p.warm[0]),
                ms(p.warm[3]),
                ms(p.warm[1]),
            ]
        })
        .collect();
    report.table(
        &[
            "T (h)",
            "V",
            "Exh scan (17)",
            "SegDiff scan (18)",
            "Exh index (19)",
            "SegDiff index (20)",
        ],
        &rows,
    );

    fn gmean(
        points: &[RandomQueryPoint],
        num: impl Fn(&RandomQueryPoint) -> f64,
        den: impl Fn(&RandomQueryPoint) -> f64,
    ) -> f64 {
        let logs: Vec<f64> = points
            .iter()
            .filter(|p| den(p) > 0.0 && num(p) > 0.0)
            .map(|p| (num(p) / den(p)).ln())
            .collect();
        (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp()
    }
    report.heading("Figures 21-24 — time ratios Exh/SegDiff (geometric mean over queries)");
    report.table(
        &["metric", "ratio"],
        &[
            vec![
                "scan, warm (fig 21; paper ~9x)".into(),
                format!("{:.2}", gmean(points, |p| p.warm[2], |p| p.warm[0])),
            ],
            vec![
                "index, warm (fig 22; paper ~10x)".into(),
                format!("{:.2}", gmean(points, |p| p.warm[3], |p| p.warm[1])),
            ],
            vec![
                "scan, cold (fig 23; paper ~9x)".into(),
                format!("{:.2}", gmean(points, |p| p.cold[2], |p| p.cold[0])),
            ],
            vec![
                "index, cold (fig 24; paper ~20x)".into(),
                format!("{:.2}", gmean(points, |p| p.cold[3], |p| p.cold[1])),
            ],
        ],
    );
}

/// One recovery point of the durability experiment: the index was built
/// with a given checkpoint interval, the process "crashed" (dropped the
/// index without flushing), and the next open replayed the WAL.
pub struct RecoveryPoint {
    /// Checkpoint trigger, bytes of WAL.
    pub checkpoint_wal_bytes: u64,
    /// WAL size at the simulated crash.
    pub wal_bytes: u64,
    /// Page images replayed on reopen.
    pub replayed_pages: u64,
    /// Wall-clock reopen (recovery included), seconds.
    pub recover_seconds: f64,
}

/// One ingest configuration of the durability experiment.
pub struct IngestMode {
    /// Human-readable configuration ("WAL, fsync off, group 8").
    pub label: String,
    /// Ingest + finish wall time (best of the repeats), seconds.
    pub seconds: f64,
}

/// The durability experiment: WAL ingest overhead across group-commit
/// settings and recovery time as a function of the checkpoint interval.
pub struct DurabilityResult {
    /// Observations ingested per run.
    pub n: u64,
    /// Ingest timings; the first entry is the no-WAL baseline.
    pub modes: Vec<IngestMode>,
    /// Recovery time per checkpoint interval.
    pub recovery: Vec<RecoveryPoint>,
}

/// Runs the durability experiment. Not part of the paper — it
/// characterizes the write-ahead log this reproduction adds: what
/// logging costs at ingest time and how the checkpoint interval bounds
/// replay after a crash.
pub fn run_durability(scale: &Scale) -> DurabilityResult {
    use segdiff::{SegDiffConfig, SegDiffIndex};
    use std::time::Instant;

    let series = default_series(scale.subset_days, scale.seed);
    let w = 8.0 * HOUR;
    let base = || {
        SegDiffConfig::default()
            .with_epsilon(0.2)
            .with_window(w)
            .with_pool_pages(scale.pool_pages)
    };
    let repeats = scale.repeats.clamp(1, 3);
    let ingest = |cfg: &SegDiffConfig, tag: &str| -> f64 {
        // Best-of-repeats: these runs are tens of milliseconds, so one
        // scheduler hiccup would otherwise dominate the overhead column.
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let dir = scratch_dir(&format!("durability-{tag}"));
            std::fs::remove_dir_all(&dir).ok();
            let start = Instant::now();
            let mut idx = SegDiffIndex::create(&dir, cfg.clone()).expect("create");
            idx.ingest_series(&series).expect("ingest");
            idx.finish().expect("finish");
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let mut modes = vec![IngestMode {
        label: "no WAL".into(),
        seconds: ingest(&base().with_durable(false), "off"),
    }];
    for group in [1u64, 8, 32] {
        let cfg = base()
            .with_durable(true)
            .with_sync(false)
            .with_group_commit(group);
        modes.push(IngestMode {
            label: format!("WAL, fsync off, group {group}"),
            seconds: ingest(&cfg, &format!("nosync-g{group}")),
        });
    }
    for group in [8u64, 32] {
        let cfg = base()
            .with_durable(true)
            .with_sync(true)
            .with_group_commit(group);
        modes.push(IngestMode {
            label: format!("WAL, fsync on, group {group}"),
            seconds: ingest(&cfg, &format!("sync-g{group}")),
        });
    }

    let mut recovery = Vec::new();
    for checkpoint_mib in [1u64, 2, 4, 8] {
        let checkpoint_wal_bytes = checkpoint_mib << 20;
        let dir = scratch_dir(&format!("durability-crash-{checkpoint_mib}"));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = base()
            .with_durable(true)
            .with_sync(false)
            .with_checkpoint_wal_bytes(checkpoint_wal_bytes);
        let mut idx = SegDiffIndex::create(&dir, cfg).expect("create");
        idx.ingest_series(&series).expect("ingest");
        // Simulated crash: drop without finish(); dirty pages die with
        // the pool, only the WAL survives.
        drop(idx);
        let wal_bytes = std::fs::metadata(dir.join("wal.log"))
            .map(|m| m.len())
            .unwrap_or(0);
        let start = Instant::now();
        let idx = SegDiffIndex::open(&dir, scale.pool_pages).expect("recovering open");
        let recover_seconds = start.elapsed().as_secs_f64();
        let replayed_pages = idx.recovery_report().map(|r| r.replayed_pages).unwrap_or(0);
        idx.verify_consistency()
            .expect("recovered index consistent");
        recovery.push(RecoveryPoint {
            checkpoint_wal_bytes,
            wal_bytes,
            replayed_pages,
            recover_seconds,
        });
    }
    DurabilityResult {
        n: series.len() as u64,
        modes,
        recovery,
    }
}

/// Renders the durability experiment.
pub fn durability_report(r: &DurabilityResult, report: &mut Report) {
    report.heading("Durability: WAL ingest overhead");
    report.para(&format!(
        "Ingest + finish over {} observations (ε = 0.2, w = 8 h), best of \
         repeats. Overhead is relative to the no-WAL build; \"group N\" \
         appends (and in sync mode fsyncs) one batch of page images + \
         commit record per N segment commits.",
        r.n
    ));
    let baseline = r.modes.first().map(|m| m.seconds).unwrap_or(1.0);
    let rows: Vec<Vec<String>> = r
        .modes
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let over = if i == 0 {
                "—".into()
            } else {
                format!("{:+.1}%", (m.seconds / baseline - 1.0) * 100.0)
            };
            vec![m.label.clone(), ms(m.seconds), over]
        })
        .collect();
    report.table(&["mode", "ingest", "overhead"], &rows);
    report.heading("Durability: recovery time vs checkpoint interval");
    report.para(
        "Crash injected after full ingest (index dropped without flushing); \
         the next open replays the WAL tail since the last checkpoint.",
    );
    let rows: Vec<Vec<String>> = r
        .recovery
        .iter()
        .map(|p| {
            vec![
                mib(p.checkpoint_wal_bytes),
                mib(p.wal_bytes),
                p.replayed_pages.to_string(),
                ms(p.recover_seconds),
            ]
        })
        .collect();
    report.table(
        &[
            "checkpoint every",
            "WAL at crash",
            "pages replayed",
            "recovery",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_eps_sweep_produces_sane_shapes() {
        let scale = Scale::tiny();
        let sweep = run_eps_sweep(&scale);
        assert_eq!(sweep.points.len(), 5);
        // r grows with eps.
        for w in sweep.points.windows(2) {
            assert!(w[1].r > w[0].r, "r must grow with eps");
        }
        // Exh stores more than any SegDiff configuration.
        for p in &sweep.points {
            assert!(sweep.exh_payload > p.seg_payload);
        }
        // Feature size falls as r grows.
        for w in sweep.points.windows(2) {
            assert!(w[1].seg_payload < w[0].seg_payload);
        }
        let mut r = Report::new();
        table3(&sweep, &mut r);
        table4(&sweep, &mut r);
        table5(&sweep, &mut r);
        table6(&sweep, &mut r);
        figs7_to_11(&sweep, &mut r);
        assert!(r.markdown().contains("Table 3"));
    }

    #[test]
    fn tiny_durability_experiment_runs() {
        let scale = Scale::tiny();
        let r = run_durability(&scale);
        assert!(r.n > 0);
        assert_eq!(r.modes.len(), 6, "baseline + 3 nosync + 2 sync modes");
        assert!(r.modes.iter().all(|m| m.seconds > 0.0));
        assert_eq!(r.recovery.len(), 4);
        for p in &r.recovery {
            assert!(p.wal_bytes > 0, "crash must leave a WAL behind");
            assert!(p.replayed_pages > 0, "recovery must replay something");
        }
        let mut rep = Report::new();
        durability_report(&r, &mut rep);
        assert!(rep.markdown().contains("recovery time vs checkpoint"));
    }

    #[test]
    fn tiny_w_sweep_grows_with_w() {
        let scale = Scale::tiny();
        let points = run_w_sweep(&scale);
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[1].exh_payload > w[0].exh_payload, "Exh grows with w");
            assert!(w[1].seg_payload >= w[0].seg_payload, "SegDiff grows with w");
        }
        // The advantage widens with w (paper Table 7).
        let first = points[0].exh_payload as f64 / points[0].seg_payload as f64;
        let last = points[4].exh_payload as f64 / points[4].seg_payload as f64;
        assert!(last > first, "r_f should grow with w: {first} -> {last}");
        let mut r = Report::new();
        table7_figs12_13(&points, &mut r);
    }
}
