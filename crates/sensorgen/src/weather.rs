//! Deterministic climate components and the stochastic weather-front model.

use crate::rng::normal;
use crate::{DAY, HOUR};
use rand::Rng;

/// The slowly varying part of the synthetic temperature signal.
///
/// The model is the sum of three components:
///
/// * an annual cycle (coldest in mid January, the transect recording starts
///   on December 1st, matching the paper's Dec 2005 – Nov 2006 window),
/// * a diurnal cycle whose amplitude grows in summer (peak mid-afternoon,
///   minimum shortly before dawn), and
/// * an Ornstein–Uhlenbeck "weather front" process with a relaxation time of
///   about two days, advanced sample by sample.
#[derive(Debug, Clone)]
pub struct WeatherModel {
    /// Annual mean temperature in degree Celsius.
    pub annual_mean: f64,
    /// Half peak-to-trough amplitude of the annual cycle.
    pub annual_amp: f64,
    /// Winter diurnal half-amplitude (degree Celsius).
    pub diurnal_amp_winter: f64,
    /// Summer diurnal half-amplitude (degree Celsius).
    pub diurnal_amp_summer: f64,
    /// OU relaxation time in seconds.
    pub front_relaxation: f64,
    /// OU stationary standard deviation (degree Celsius).
    pub front_sd: f64,
    /// Day of year (counted from the recording start) of the coldest day.
    pub coldest_day: f64,
    front_state: f64,
}

impl Default for WeatherModel {
    fn default() -> Self {
        Self {
            annual_mean: 11.0,
            annual_amp: 9.0,
            diurnal_amp_winter: 4.0,
            diurnal_amp_summer: 8.0,
            front_relaxation: 2.0 * DAY,
            front_sd: 2.5,
            coldest_day: 45.0, // mid January when t = 0 is Dec 1
            front_state: 0.0,
        }
    }
}

impl WeatherModel {
    /// The annual-cycle temperature at time `t` (seconds from Dec 1).
    pub fn seasonal(&self, t: f64) -> f64 {
        let day = t / DAY;
        self.annual_mean
            - self.annual_amp * (std::f64::consts::TAU * (day - self.coldest_day) / 365.0).cos()
    }

    /// Diurnal half-amplitude at time `t`, interpolating winter → summer.
    pub fn diurnal_amplitude(&self, t: f64) -> f64 {
        let day = t / DAY;
        // 0 at the coldest day, 1 half a year later.
        let season = 0.5 - 0.5 * (std::f64::consts::TAU * (day - self.coldest_day) / 365.0).cos();
        self.diurnal_amp_winter + season * (self.diurnal_amp_summer - self.diurnal_amp_winter)
    }

    /// The diurnal-cycle offset at time `t`: maximum around 14:00 local,
    /// minimum around 02:00.
    pub fn diurnal(&self, t: f64) -> f64 {
        let hour = (t % DAY) / HOUR;
        self.diurnal_amplitude(t) * (std::f64::consts::TAU * (hour - 14.0) / 24.0).cos()
    }

    /// Advances the OU weather-front state by `dt` seconds and returns the
    /// new state. Uses the exact OU discretization, so any `dt > 0` is valid.
    pub fn step_front<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) -> f64 {
        let a = (-dt / self.front_relaxation).exp();
        let sd = self.front_sd * (1.0 - a * a).sqrt();
        self.front_state = a * self.front_state + normal(rng, 0.0, sd);
        self.front_state
    }

    /// Current weather-front offset without advancing the process.
    pub fn front(&self) -> f64 {
        self.front_state
    }

    /// Deterministic part of the model: seasonal + diurnal at time `t`.
    pub fn baseline(&self, t: f64) -> f64 {
        self.seasonal(t) + self.diurnal(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn seasonal_coldest_in_january() {
        let m = WeatherModel::default();
        let jan = m.seasonal(45.0 * DAY);
        let jul = m.seasonal((45.0 + 182.5) * DAY);
        assert!(jan < jul);
        assert!((jan - (m.annual_mean - m.annual_amp)).abs() < 1e-9);
        assert!((jul - (m.annual_mean + m.annual_amp)).abs() < 1e-9);
    }

    #[test]
    fn diurnal_peaks_afternoon() {
        let m = WeatherModel::default();
        let afternoon = m.diurnal(14.0 * HOUR);
        let night = m.diurnal(2.0 * HOUR);
        assert!(afternoon > 0.0);
        assert!(night < 0.0);
        // Nearly symmetric: the diurnal amplitude drifts slightly with the
        // season between 02:00 and 14:00 of the same day.
        assert!((afternoon + night).abs() < 0.05 * afternoon.abs());
    }

    #[test]
    fn diurnal_amplitude_larger_in_summer() {
        let m = WeatherModel::default();
        assert!(m.diurnal_amplitude(200.0 * DAY) > m.diurnal_amplitude(45.0 * DAY));
    }

    #[test]
    fn ou_front_is_stationary() {
        let mut m = WeatherModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = m.step_front(&mut rng, 300.0);
            acc += x;
            acc2 += x * x;
        }
        let mean = acc / n as f64;
        let var = acc2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.5, "mean {mean}");
        let target = m.front_sd * m.front_sd;
        assert!((var - target).abs() < 0.2 * target, "var {var} vs {target}");
    }

    #[test]
    fn front_accessor_matches_last_step() {
        let mut m = WeatherModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let x = m.step_front(&mut rng, 300.0);
        assert_eq!(m.front(), x);
    }
}
