#![warn(missing_docs)]

//! **segdiff-server** — a concurrent HTTP query service over a SegDiff
//! index, built entirely on `std::net` (zero external dependencies).
//!
//! The paper evaluates SegDiff as an offline index; this crate turns it
//! into the online artifact a deployment would actually run: many
//! clients searching one shared index at once. The pieces:
//!
//! * [`http`] — minimal HTTP/1.1 framing (requests, responses,
//!   keep-alive, `Content-Length` bodies), shared by server and client;
//! * [`queue`] — the bounded accept queue between the non-blocking
//!   accept loop and the worker pool (`503` load-shedding when full);
//! * [`service`] — the routes: `POST /query`, `GET /metrics`,
//!   `GET /healthz`, `GET /series`, `GET /alerts`,
//!   `GET /debug/traces`, `POST /shutdown`;
//! * [`observer`] — self-observation: the background thread sampling
//!   every registered metric into ring-buffered time series and feeding
//!   them through the paper's own drop/jump detection as standing
//!   alert rules;
//! * [`server`] — the worker pool, graceful drain on shutdown, and the
//!   SIGINT/SIGTERM latch ([`server::signal`]);
//! * [`loadgen`] — a closed-loop load generator with persistent
//!   connections, used by `segdiff loadgen` and the bench harness.
//!
//! Concurrent reads are safe because [`segdiff::SegDiffIndex::query`]
//! and `query_cached` take `&self`: the buffer pool is striped into
//! lock shards and the table internals are reader/writer-locked, so
//! worker threads genuinely execute in parallel. Repeated queries are
//! answered from the epoch-tagged result cache (`cache.*` counters).

pub mod http;
pub mod loadgen;
pub mod observer;
pub mod queue;
pub mod server;
pub mod service;

pub use http::{Request, Response};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use observer::{Observability, Observer};
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig};
pub use service::{Engine, QuerySpec, Service};

#[cfg(test)]
mod e2e_tests {
    use super::loadgen::{fetch, query_mix};
    use super::*;
    use obs::json::Json;
    use segdiff::{QueryPlan, SegDiffConfig, SegDiffIndex};
    use sensorgen::{generate_sensor, CadTransectConfig};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("segdiff-server-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn build_index(dir: &std::path::Path) -> Arc<SegDiffIndex> {
        let series = generate_sensor(&CadTransectConfig::default().with_days(5).clean(), 12, 7);
        let mut idx = SegDiffIndex::create(dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        Arc::new(idx)
    }

    fn start_server(
        idx: Arc<SegDiffIndex>,
        threads: usize,
    ) -> (String, std::thread::JoinHandle<()>) {
        let server = Server::bind(
            "127.0.0.1:0",
            idx,
            ServerConfig {
                threads,
                queue_depth: 32,
                read_timeout: Duration::from_millis(250),
                sample_period: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let host = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (host, handle)
    }

    #[test]
    fn serves_queries_matching_offline_results() {
        let dir = TempDir::new("e2e");
        let idx = build_index(&dir.0);
        let (expected, _) = idx
            .query(
                &featurespace::QueryRegion::drop(3600.0, -2.0),
                QueryPlan::Index,
            )
            .unwrap();
        let (host, handle) = start_server(Arc::clone(&idx), 4);

        let (status, body) = fetch(&host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let (status, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
        assert_eq!(status, 200, "body: {body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(false)));
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), expected.len());
        for (got, want) in results.iter().zip(expected.iter()) {
            assert_eq!(got.get("t_d").unwrap().as_f64().unwrap(), want.t_d);
            assert_eq!(got.get("t_a").unwrap().as_f64().unwrap(), want.t_a);
        }

        // Same query again: answered from the epoch-tagged cache.
        let (_, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            doc.get("count").unwrap().as_u64().unwrap(),
            expected.len() as u64
        );

        // Traced query carries a span tree.
        let traced = r#"{"kind":"drop","v":-2.5,"t_hours":1.0,"plan":"scan","trace":true}"#;
        let (_, body) = fetch(&host, "POST", "/query", Some(traced)).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert!(doc.get("trace").is_some(), "missing trace: {body}");

        // Bad input is a 400, not a worker panic.
        let (status, _) = fetch(
            &host,
            "POST",
            "/query",
            Some(r#"{"kind":"drop","v":2.0,"t_hours":1.0}"#),
        )
        .unwrap();
        assert_eq!(status, 400);
        let (status, _) = fetch(&host, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);

        // Metrics dump includes server and cache counters.
        let (status, text) = fetch(&host, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("server.requests"), "metrics: {text}");
        assert!(text.contains("cache."), "metrics: {text}");

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// The transect engine serves the parallel fan-out path: a `/query`
    /// answer equals the offline `query_all` results concatenated in
    /// sensor order, whatever the pool size.
    #[test]
    fn serves_transect_fan_out_matching_offline_results() {
        use segdiff::TransectIndex;

        let dir = TempDir::new("transect");
        let cfg = CadTransectConfig::default()
            .with_days(3)
            .with_sensors(3)
            .clean();
        let mut t = TransectIndex::create(&dir.0, SegDiffConfig::default(), 3).unwrap();
        for k in 0..3 {
            t.ingest_series(k, &generate_sensor(&cfg, k, 7)).unwrap();
        }
        t.finish_all().unwrap();
        t.build_indexes_all().unwrap();
        let t = Arc::new(t);

        let region = featurespace::QueryRegion::drop(3600.0, -2.0);
        let (offline, _) = t.query_all(&region, QueryPlan::Index).unwrap();
        let expected: Vec<_> = offline.into_iter().flatten().collect();

        let server = Server::bind(
            "127.0.0.1:0",
            Engine::transect(Arc::clone(&t), 2),
            ServerConfig {
                threads: 4,
                queue_depth: 32,
                read_timeout: Duration::from_millis(250),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let host = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let (status, body) = fetch(&host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("sensors").and_then(Json::as_u64), Some(3));

        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let (status, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
        assert_eq!(status, 200, "body: {body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("sensors").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("cached"), Some(&Json::Bool(false)));
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), expected.len());
        for (got, want) in results.iter().zip(expected.iter()) {
            assert_eq!(got.get("t_d").unwrap().as_f64().unwrap(), want.t_d);
            assert_eq!(got.get("t_a").unwrap().as_f64().unwrap(), want.t_a);
        }

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// The self-observation surface end to end: `/query` responses carry
    /// trace ids, `/debug/traces` retains the finished requests,
    /// `/series` serves the sampled metric history, `/alerts` lists the
    /// standing rules, and `/metrics?format=json` stamps every line with
    /// a `ts` field.
    #[test]
    fn observability_routes_serve_series_alerts_and_traces() {
        let dir = TempDir::new("observe");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 2);

        // A couple of queries to give the rings and series content.
        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let mut trace_ids = Vec::new();
        for _ in 0..3 {
            let (status, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
            assert_eq!(status, 200, "body: {body}");
            let doc = Json::parse(&body).unwrap();
            let id = doc.get("trace_id").and_then(Json::as_u64).unwrap();
            assert!(id > 0, "trace_id must be assigned: {body}");
            trace_ids.push(id);
        }
        assert!(
            trace_ids.windows(2).all(|w| w[0] != w[1]),
            "trace ids must be unique: {trace_ids:?}"
        );

        // The trace ring has the queries, newest first, with their ids.
        let (status, body) = fetch(&host, "GET", "/debug/traces?n=50", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        let traces = doc.get("traces").unwrap().as_array().unwrap();
        for id in &trace_ids {
            assert!(
                traces
                    .iter()
                    .any(|t| t.get("trace_id").and_then(Json::as_u64) == Some(*id)),
                "trace {id} missing from ring: {body}"
            );
        }
        // Full dump parses too and query traces carry span trees.
        let (status, body) = fetch(&host, "GET", "/debug/traces?n=50&full=1", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert!(
            doc.get("traces")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(
                    |t| t.get("name").and_then(Json::as_str) == Some("POST /query")
                        && t.get("trace").is_some()
                ),
            "query trace must include its span tree: {body}"
        );
        // The slow ring answers (possibly empty) and bad params are 400s.
        let (status, _) = fetch(&host, "GET", "/debug/traces?ring=slow", None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = fetch(&host, "GET", "/debug/traces?ring=fast", None).unwrap();
        assert_eq!(status, 400);
        let (status, _) = fetch(&host, "GET", "/debug/traces?n=0", None).unwrap();
        assert_eq!(status, 400);

        // The sampler (50ms period here) publishes derived series.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (status, body) = fetch(&host, "GET", "/series", None).unwrap();
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            let names: Vec<String> = doc
                .get("series")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .filter_map(|j| j.as_str().map(str::to_string))
                .collect();
            if names.iter().any(|n| n == "server.requests.rate")
                && names.iter().any(|n| n == "server.inflight")
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never published request series: {names:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        let (status, body) = fetch(
            &host,
            "GET",
            "/series?name=server.requests.rate&window=1h",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert!(
            doc.get("count").and_then(Json::as_u64).unwrap() >= 1,
            "windowed series must have points: {body}"
        );
        let (status, _) = fetch(&host, "GET", "/series?name=no.such.series", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = fetch(&host, "GET", "/series?name=x&window=soon", None).unwrap();
        assert_eq!(status, 400);

        // The standing rules are served; the clean run fired nothing...
        let (status, body) = fetch(&host, "GET", "/alerts", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        let rules = doc.get("rules").unwrap().as_array().unwrap();
        assert!(
            rules
                .iter()
                .any(|r| r.get("name").and_then(Json::as_str) == Some("query-latency-jump")),
            "default rules must be listed: {body}"
        );
        // ...from the latency-jump rule (the rate rule can legitimately
        // see the load stopping, so only the jump rule is asserted).
        assert!(
            !doc.get("alerts")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|a| a.get("rule").and_then(Json::as_str) == Some("query-latency-jump")),
            "no latency alert on a clean baseline: {body}"
        );

        // Satellite: every JSON metrics line is stamped with `ts`.
        let (status, text) = fetch(&host, "GET", "/metrics?format=json", None).unwrap();
        assert_eq!(status, 200);
        let mut saw_gauge = false;
        for line in text.lines() {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert!(
                j.get("ts").and_then(Json::as_u64).unwrap() > 0,
                "line missing ts: {line}"
            );
            if j.get("kind").and_then(Json::as_str) == Some("gauge") {
                saw_gauge = true;
            }
        }
        assert!(saw_gauge, "gauges must be exported: {text}");
        assert!(text.contains("server.inflight"), "{text}");
        assert!(text.contains("pool.resident_pages"), "{text}");

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn loadgen_closed_loop_round_trips() {
        let dir = TempDir::new("loadgen");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 4);

        let report = loadgen::run(&LoadgenConfig {
            host: host.clone(),
            concurrency: 4,
            duration: Duration::from_millis(600),
            bodies: query_mix("drop", -2.0, 1.0),
        })
        .unwrap();
        assert!(report.ok > 0, "no successful requests: {report:?}");
        assert_eq!(report.non_2xx, 0, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.latency.count == report.ok);
        assert!(report.latency.p50 <= report.latency.p99);

        // The mix repeats queries, so the server cache must have hits.
        let (_, text) = fetch(&host, "GET", "/metrics?format=json", None).unwrap();
        let hits: u64 = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .filter(|j| j.get("name").and_then(Json::as_str) == Some("cache.hit"))
            .filter_map(|j| j.get("value").and_then(Json::as_u64))
            .sum();
        assert!(hits > 0, "expected cache hits after repeated queries");

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// With ONE worker thread, a hot keep-alive client must not starve a
    /// second connection: after `YIELD_AFTER` consecutive requests the
    /// worker re-queues the hot connection and serves the waiter.
    #[test]
    fn single_worker_round_robins_hot_connections() {
        use super::http::{read_response, write_request};
        use std::io::BufReader;
        use std::net::TcpStream;

        let dir = TempDir::new("fair");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 1);

        // Connection A claims the only worker with a first request.
        let mut a = TcpStream::connect(&host).unwrap();
        a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        write_request(&mut a, "GET", "/healthz", &host, None).unwrap();
        let (status, _) = read_response(&mut a_reader).unwrap();
        assert_eq!(status, 200);

        // Connection B sends a request and then waits in the queue.
        let mut b = TcpStream::connect(&host).unwrap();
        b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut b_reader = BufReader::new(b.try_clone().unwrap());
        write_request(&mut b, "GET", "/healthz", &host, None).unwrap();

        // A stays hot well past the yield threshold. The worker must
        // re-queue A at some point in this loop and answer B; A's own
        // requests still all complete (the pending one is served when the
        // worker rotates back).
        for _ in 0..80 {
            write_request(&mut a, "GET", "/healthz", &host, None).unwrap();
            let (status, _) = read_response(&mut a_reader).unwrap();
            assert_eq!(status, 200);
        }
        let (status, _) = read_response(&mut b_reader).unwrap();
        assert_eq!(status, 200);

        drop((a, b));
        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_flag_drains_and_stops() {
        let dir = TempDir::new("drain");
        let idx = build_index(&dir.0);
        let server = Server::bind("127.0.0.1:0", idx, ServerConfig::default()).unwrap();
        let host = server.local_addr().to_string();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let (status, _) = fetch(&host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        flag.store(true, Ordering::Release);
        handle.join().unwrap();
        // The listener is gone: new connections are refused.
        assert!(fetch(&host, "GET", "/healthz", None).is_err());
    }

    #[test]
    fn post_shutdown_leaves_store_durable() {
        let dir = TempDir::new("durable");
        let idx = build_index(&dir.0);
        let (expected, _) = idx
            .query(
                &featurespace::QueryRegion::drop(3600.0, -2.0),
                QueryPlan::Index,
            )
            .unwrap();
        let (host, handle) = start_server(idx, 2);
        // The WAL's counter family is part of the exported metrics.
        let (status, body) = fetch(&host, "GET", "/metrics?format=json", None).unwrap();
        assert_eq!(status, 200);
        for name in ["wal.appends", "wal.bytes", "wal.checkpoints"] {
            assert!(
                body.contains(&format!("\"{name}\"")),
                "GET /metrics must export {name}: {body}"
            );
        }
        let before = obs::global().histogram("server.flush_ms").count();
        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
        // The drain ended in a flush: its duration was recorded...
        assert_eq!(
            obs::global().histogram("server.flush_ms").count(),
            before + 1,
            "drain must record server.flush_ms"
        );
        // ...and the store on disk is complete: a fresh process sees a
        // cleanly shut-down index that answers the same query.
        let reopened = SegDiffIndex::open(&dir.0, 4096).unwrap();
        assert!(
            reopened.recovery_report().unwrap().clean,
            "drain flush must leave a clean WAL"
        );
        reopened.verify_consistency().unwrap();
        let (results, _) = reopened
            .query(
                &featurespace::QueryRegion::drop(3600.0, -2.0),
                QueryPlan::Index,
            )
            .unwrap();
        assert_eq!(results, expected, "reopened store must answer identically");
    }
}
