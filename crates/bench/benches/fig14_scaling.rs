//! Figures 14–15 counterpart: query time as the ingested volume grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segdiff::QueryPlan;
use segdiff_bench::{build_exh, build_segdiff, default_series};
use sensorgen::HOUR;
use std::hint::black_box;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let w = 8.0 * HOUR;
    let region = featurespace::QueryRegion::drop(1.0 * HOUR, -3.0);
    let base = std::env::temp_dir().join(format!("segdiff-bench-f14-{}", std::process::id()));

    let mut group = c.benchmark_group("fig14_15/scan_by_n");
    group.sample_size(15);
    for days in [4u32, 8, 16] {
        let series = default_series(days, 1);
        let n = series.len();
        let seg = build_segdiff(
            &series,
            0.2,
            w,
            8192,
            &base.join(format!("seg{days}")),
            false,
        );
        group.bench_with_input(BenchmarkId::new("segdiff", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    seg.index
                        .query(&region, QueryPlan::SeqScan)
                        .unwrap()
                        .0
                        .len(),
                )
            })
        });
        // Exh only at the two smaller sizes (the paper aborts it early).
        if days <= 8 {
            let exh = build_exh(&series, w, 8192, &base.join(format!("exh{days}")), false);
            group.bench_with_input(BenchmarkId::new("exh", n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        exh.index
                            .query(&region, QueryPlan::SeqScan)
                            .unwrap()
                            .0
                            .len(),
                    )
                })
            });
        }
    }
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_scaling
}
criterion_main!(benches);
