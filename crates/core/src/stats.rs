//! Size and distribution statistics (the quantities of paper §5.2 / §6).

/// Distribution of stored boundaries by corner count (paper Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CornerHistogram {
    /// `counts[k]` = number of stored boundaries with `k + 1` corners.
    pub counts: [u64; 3],
}

impl CornerHistogram {
    /// Records one boundary with `corners` corner points.
    pub fn record(&mut self, corners: usize) {
        self.counts[corners - 1] += 1;
    }

    /// Total number of boundaries.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage of boundaries with `corners` corner points.
    pub fn percent(&self, corners: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.counts[corners - 1] as f64 / t as f64
        }
    }

    /// The expected number of corners per boundary — the paper's
    /// "effectively two corner points" statistic (§6.1).
    pub fn effective_corners(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.counts[0] + 2 * self.counts[1] + 3 * self.counts[2]) as f64 / t as f64
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &CornerHistogram) -> CornerHistogram {
        CornerHistogram {
            counts: [
                self.counts[0] + other.counts[0],
                self.counts[1] + other.counts[1],
                self.counts[2] + other.counts[2],
            ],
        }
    }
}

/// Sizes and counts of a built [`crate::SegDiffIndex`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SegDiffStats {
    /// Observations ingested.
    pub n_observations: u64,
    /// Segments produced.
    pub n_segments: u64,
    /// Feature rows stored (all six tables).
    pub n_rows: u64,
    /// Raw feature payload bytes (rows × columns × 8) under *our* physical
    /// layout (explicit corners + four time stamps).
    pub feature_payload_bytes: u64,
    /// Feature bytes under the *paper's* column accounting
    /// (`c2 ∈ {5, 6, 7}` columns per 1/2/3-corner row, §5.2).
    pub paper_feature_bytes: u64,
    /// Heap pages on disk, in bytes.
    pub heap_bytes: u64,
    /// Index pages on disk, in bytes.
    pub index_bytes: u64,
    /// Corner-count distribution of drop boundaries.
    pub drop_hist: CornerHistogram,
    /// Corner-count distribution of jump boundaries.
    pub jump_hist: CornerHistogram,
}

impl SegDiffStats {
    /// The paper's compression rate `r`: observations per segment.
    pub fn compression_rate(&self) -> f64 {
        if self.n_segments == 0 {
            0.0
        } else {
            self.n_observations as f64 / self.n_segments as f64
        }
    }

    /// Heap plus index bytes — the paper's "disk size".
    pub fn disk_bytes(&self) -> u64 {
        self.heap_bytes + self.index_bytes
    }

    /// Combined corner histogram over both search kinds (paper Table 4).
    pub fn corner_hist(&self) -> CornerHistogram {
        self.drop_hist.merged(&self.jump_hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentages() {
        let mut h = CornerHistogram::default();
        for _ in 0..20 {
            h.record(1);
        }
        for _ in 0..47 {
            h.record(2);
        }
        for _ in 0..33 {
            h.record(3);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.percent(1), 20.0);
        assert_eq!(h.percent(2), 47.0);
        assert_eq!(h.percent(3), 33.0);
        // Effective corners = (20 + 94 + 99)/100 = 2.13 (the paper's value).
        assert!((h.effective_corners() - 2.13).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = CornerHistogram::default();
        assert_eq!(h.percent(1), 0.0);
        assert_eq!(h.effective_corners(), 0.0);
    }

    #[test]
    fn merged_adds() {
        let a = CornerHistogram { counts: [1, 2, 3] };
        let b = CornerHistogram {
            counts: [10, 20, 30],
        };
        assert_eq!(a.merged(&b).counts, [11, 22, 33]);
    }

    #[test]
    fn stats_derived_quantities() {
        let s = SegDiffStats {
            n_observations: 700,
            n_segments: 100,
            heap_bytes: 4096,
            index_bytes: 8192,
            ..Default::default()
        };
        assert_eq!(s.compression_rate(), 7.0);
        assert_eq!(s.disk_bytes(), 12288);
        assert_eq!(SegDiffStats::default().compression_rate(), 0.0);
    }
}
