//! The workspace call graph: a per-file symbol table (impl blocks, fn
//! names, receiver types inferred from paths) feeding per-function
//! *lock summaries* — which classes a function acquires, directly or
//! through the intra-crate calls it makes, to a bounded depth.
//!
//! Resolution is deliberately conservative, in the paper's own
//! "no false negatives on what we claim, bounded false positives"
//! spirit — an edge exists only when the target is unambiguous:
//!
//! * `self.name(…)` resolves within the caller's impl type first;
//! * `Type::name(…)` / `Self::name(…)` resolve within that impl type;
//! * any other call resolves only if exactly one function in the same
//!   crate has that name (cross-crate edges are never followed — the
//!   declared order already encodes the cross-crate layering);
//! * acquisition primitives and ubiquitous names (`clone`, `new`, …)
//!   are never edges.
//!
//! Summaries propagate for [`MAX_DEPTH`] rounds, so a lock acquired
//! four calls deep is still attributed to every caller above it, with
//! the call chain preserved for the diagnostic.

use crate::config::LockOrder;
use crate::context::FileCtx;
use crate::flow::{self, CallForm, ClassRef, Guard, Site};
use crate::lexer::TokKind;
use std::collections::{BTreeMap, HashMap};

/// How many call layers a summary crosses (a helper's helper's helper
/// still counts; deeper nests are out of the declared-order's blast
/// radius in this codebase).
pub const MAX_DEPTH: usize = 4;

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when inside one.
    pub impl_type: Option<String>,
    /// Defining file (workspace-relative).
    pub file: String,
    /// Crate the file belongs to.
    pub krate: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Classified acquisitions made directly in the body.
    pub acquires: Vec<DirectAcquire>,
    /// Call sites in the body, with the guards held at each.
    pub calls: Vec<CallSite>,
}

/// A classified acquisition directly inside a function body.
#[derive(Debug, Clone)]
pub struct DirectAcquire {
    /// The lock class.
    pub class: ClassRef,
    /// Acquisition line.
    pub line: u32,
}

/// One call site with its held-lock context.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// Method receiver path or `::` path prefix, when simple.
    pub qualifier: Option<String>,
    /// Call shape.
    pub form: CallForm,
    /// Position.
    pub line: u32,
    /// Column.
    pub col: u32,
    /// Classified classes held at the call (name → (rank, acquisition line)).
    pub held: Vec<(ClassRef, u32)>,
    /// Whether *any* guard (classified or anonymous) is live.
    pub any_held: bool,
}

/// How a function (transitively) acquires one lock class.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// The class.
    pub class: ClassRef,
    /// File of the ultimate acquisition site.
    pub file: String,
    /// Line of the ultimate acquisition site.
    pub line: u32,
    /// Call chain from this function to the acquiring one (empty for a
    /// direct acquisition): function names, outermost first.
    pub via: Vec<String>,
}

/// The assembled graph: every production function plus name indexes.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, in discovery order.
    pub fns: Vec<FnInfo>,
    /// `(crate, impl_type, name)` → fn index (last definition wins;
    /// duplicate trait-impl methods are ambiguous and map to `None`).
    by_impl: HashMap<(String, String, String), Option<usize>>,
    /// `(crate, name)` → unique fn index, `None` when ambiguous.
    by_name: HashMap<(String, String), Option<usize>>,
}

/// Names that never form call-graph edges: acquisition primitives,
/// ubiquitous std vocabulary, and the blocking ops L7 owns.
fn is_edge_noise(name: &str) -> bool {
    matches!(
        name,
        "lock"
            | "read"
            | "write"
            | "drop"
            | "clone"
            | "new"
            | "default"
            | "from"
            | "into"
            | "len"
            | "is_empty"
            | "get"
            | "insert"
            | "push"
            | "iter"
            | "unwrap"
            | "expect"
            | "map"
            | "ok"
            | "fmt"
            | "to_string"
            | "format"
    )
}

impl CallGraph {
    /// Adds every production function of one file (test files and
    /// test regions are skipped — their lock usage is not load-bearing).
    pub fn add_file(&mut self, ctx: &FileCtx, order: &LockOrder) {
        if ctx.test_file {
            return;
        }
        for (name, impl_type, line, open, close) in file_functions(ctx) {
            if ctx.in_test(line) {
                continue;
            }
            let mut sink = FactSink {
                ctx,
                acquires: Vec::new(),
                calls: Vec::new(),
            };
            flow::walk_body(ctx, order, open, close, &mut sink);
            let idx = self.fns.len();
            self.fns.push(FnInfo {
                name: name.clone(),
                impl_type: impl_type.clone(),
                file: ctx.path.clone(),
                krate: ctx.crate_name.clone(),
                line,
                acquires: sink.acquires,
                calls: sink.calls,
            });
            if let Some(ty) = impl_type {
                self.by_impl
                    .entry((ctx.crate_name.clone(), ty, name.clone()))
                    .and_modify(|e| *e = None)
                    .or_insert(Some(idx));
            }
            self.by_name
                .entry((ctx.crate_name.clone(), name))
                .and_modify(|e| *e = None)
                .or_insert(Some(idx));
        }
    }

    /// Resolves one call site made from `caller` to a function index,
    /// or `None` when the target is ambiguous, cross-crate, or noise.
    pub fn resolve(&self, caller: &FnInfo, call: &CallSite) -> Option<usize> {
        if is_edge_noise(&call.callee) {
            return None;
        }
        let krate = caller.krate.clone();
        match call.form {
            CallForm::Method => {
                // Only `self.helper(…)` resolves: the caller's own impl
                // first, then the unique-name fallback. A method on any
                // other receiver (`file.sync_all()`, `guard.clear()`)
                // is almost always a std or foreign method that merely
                // shares a name with a workspace fn — resolving those
                // by name alone manufactures phantom lock chains.
                if call.qualifier.as_deref() != Some("self") {
                    return None;
                }
                if let Some(ty) = &caller.impl_type {
                    if let Some(&hit) =
                        self.by_impl
                            .get(&(krate.clone(), ty.clone(), call.callee.clone()))
                    {
                        if hit.is_some() {
                            return hit;
                        }
                    }
                }
                self.unique_in_crate(&krate, &call.callee)
            }
            CallForm::Path => {
                let ty = match call.qualifier.as_deref() {
                    Some("Self") => caller.impl_type.clone(),
                    other => other.map(str::to_string),
                };
                if let Some(ty) = ty {
                    if let Some(&hit) = self.by_impl.get(&(krate.clone(), ty, call.callee.clone()))
                    {
                        if hit.is_some() {
                            return hit;
                        }
                    }
                }
                self.unique_in_crate(&krate, &call.callee)
            }
            CallForm::Bare => self.unique_in_crate(&krate, &call.callee),
        }
    }

    fn unique_in_crate(&self, krate: &str, name: &str) -> Option<usize> {
        self.by_name
            .get(&(krate.to_string(), name.to_string()))
            .copied()
            .flatten()
    }

    /// Computes the bounded-depth lock summary of every function:
    /// `summary[i]` maps class name → how fn `i` (transitively)
    /// acquires it. Direct acquisitions seed the map; [`MAX_DEPTH`]
    /// relaxation rounds propagate callee summaries up through every
    /// resolvable edge, extending the recorded chain.
    pub fn summaries(&self) -> Vec<BTreeMap<String, Acquisition>> {
        let mut summary: Vec<BTreeMap<String, Acquisition>> = self
            .fns
            .iter()
            .map(|f| {
                let mut m = BTreeMap::new();
                for a in &f.acquires {
                    m.entry(a.class.name.clone()).or_insert(Acquisition {
                        class: a.class.clone(),
                        file: f.file.clone(),
                        line: a.line,
                        via: Vec::new(),
                    });
                }
                m
            })
            .collect();
        // Pre-resolve the edges once; the graph is static across rounds.
        let edges: Vec<Vec<usize>> = self
            .fns
            .iter()
            .map(|f| {
                let mut targets: Vec<usize> =
                    f.calls.iter().filter_map(|c| self.resolve(f, c)).collect();
                targets.sort_unstable();
                targets.dedup();
                targets
            })
            .collect();
        for _ in 0..MAX_DEPTH {
            let prev = summary.clone();
            for (i, targets) in edges.iter().enumerate() {
                for &t in targets {
                    for (class, acq) in &prev[t] {
                        summary[i].entry(class.clone()).or_insert_with(|| {
                            let mut via = vec![self.fns[t].name.clone()];
                            via.extend(acq.via.iter().cloned());
                            via.truncate(MAX_DEPTH);
                            Acquisition {
                                class: acq.class.clone(),
                                file: acq.file.clone(),
                                line: acq.line,
                                via,
                            }
                        });
                    }
                }
            }
        }
        summary
    }
}

struct FactSink<'a, 's> {
    ctx: &'a FileCtx<'s>,
    acquires: Vec<DirectAcquire>,
    calls: Vec<CallSite>,
}

impl flow::Sink for FactSink<'_, '_> {
    fn acquire(&mut self, site: Site, class: &ClassRef, _path: &str, _held: &[Guard]) {
        if self.ctx.in_test(site.line) {
            return;
        }
        self.acquires.push(DirectAcquire {
            class: class.clone(),
            line: site.line,
        });
    }

    fn call(
        &mut self,
        site: Site,
        name: &str,
        form: CallForm,
        qualifier: Option<&str>,
        held: &[Guard],
    ) {
        if self.ctx.in_test(site.line) {
            return;
        }
        self.calls.push(CallSite {
            callee: name.to_string(),
            qualifier: qualifier.map(str::to_string),
            form,
            line: site.line,
            col: site.col,
            held: held
                .iter()
                .filter_map(|g| g.class.clone().map(|c| (c, g.line)))
                .collect(),
            any_held: !held.is_empty(),
        });
    }
}

/// Extracts `(name, impl_type, line, body_open, body_close)` for every
/// function with a body. Impl types are inferred lexically: the first
/// type identifier after `impl` (generics stripped), or — for trait
/// impls — the first identifier after `for`.
pub fn file_functions(ctx: &FileCtx) -> Vec<(String, Option<String>, u32, usize, usize)> {
    let toks = &ctx.toks;
    let mut out = Vec::new();
    // Impl block ranges: (open_idx, close_idx, type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text(ctx.src) == "impl" {
            if let Some((open, ty)) = impl_header(ctx, i) {
                if let Some(close) = ctx.close_of(open) {
                    impls.push((open, close, ty));
                    i = open + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text(ctx.src) == "fn" {
            let name = match toks.get(i + 1) {
                Some(n) if n.kind == TokKind::Ident => n.text(ctx.src).to_string(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct(b'{') => {
                        body = Some(j);
                        break;
                    }
                    TokKind::Punct(b';') => break,
                    _ => j += 1,
                }
            }
            if let (Some(open), Some(close)) = (body, body.and_then(|b| ctx.close_of(b))) {
                let impl_type = impls
                    .iter()
                    .find(|(o, c, _)| i > *o && i < *c)
                    .map(|(_, _, ty)| ty.clone());
                out.push((name, impl_type, toks[i].line, open, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// From the `impl` keyword at `i`, finds the body `{` and the impl
/// type name: skip generics (`<…>` at angle depth), then take the
/// first identifier — or, if a `for` appears at angle depth 0 (trait
/// impl), the first identifier after it.
fn impl_header(ctx: &FileCtx, i: usize) -> Option<(usize, String)> {
    let toks = &ctx.toks;
    let mut angle = 0i32;
    let mut j = i + 1;
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => angle -= 1,
            TokKind::Punct(b'{') if angle == 0 => {
                let ty = after_for.or(first_ident)?;
                return Some((j, ty));
            }
            TokKind::Punct(b';') => return None,
            TokKind::Ident if angle == 0 => {
                let text = toks[j].text(ctx.src);
                if text == "for" {
                    saw_for = true;
                } else if text == "where" {
                    // The clause may mention many types; what we have
                    // is already the impl type.
                } else if saw_for {
                    if after_for.is_none() && text != "dyn" {
                        after_for = Some(text.to_string());
                    }
                } else if first_ident.is_none() && text != "dyn" {
                    first_ident = Some(text.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockOrder;

    const ORDER: &str = r#"
order = ["walref", "shard", "wal"]

[[class]]
name = "walref"
paths = ["*.wal"]

[[class]]
name = "shard"
paths = ["*.shards[]"]

[[class]]
name = "wal"
paths = ["*.inner"]
"#;

    fn graph(src: &str) -> CallGraph {
        let order = LockOrder::parse(ORDER).unwrap();
        let mut g = CallGraph::default();
        g.add_file(&FileCtx::new("crates/pagestore/src/buffer.rs", src), &order);
        g
    }

    const SRC: &str = r#"
impl Pool {
    fn flush(&self) {
        let mut shard = self.shards[si].lock();
        self.log_one(&mut shard);
    }
    fn log_one(&self, shard: &mut Shard) {
        let wal = self.wal.read();
        Wal::append(&wal, 1);
    }
}
impl Wal {
    fn append(&self, x: u32) {
        let mut inner = self.inner.lock();
    }
}
"#;

    #[test]
    fn symbols_and_impl_types() {
        let g = graph(SRC);
        let names: Vec<_> = g
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("flush", Some("Pool")),
                ("log_one", Some("Pool")),
                ("append", Some("Wal")),
            ]
        );
    }

    #[test]
    fn trait_impl_type_comes_after_for() {
        let src = "impl Drop for Pool {\n fn drop(&mut self) { self.x(); }\n}\n";
        let g = graph(src);
        assert_eq!(g.fns[0].impl_type.as_deref(), Some("Pool"));
    }

    #[test]
    fn summaries_cross_calls_with_chain() {
        let g = graph(SRC);
        let summaries = g.summaries();
        // flush: direct shard, walref via log_one, wal via log_one → append.
        let flush = &summaries[0];
        assert!(flush.contains_key("shard"));
        let walref = flush.get("walref").expect("walref propagated");
        assert_eq!(walref.via, vec!["log_one".to_string()]);
        let wal = flush.get("wal").expect("wal propagated two levels");
        assert_eq!(wal.via, vec!["log_one".to_string(), "append".to_string()]);
    }

    #[test]
    fn call_sites_carry_held_classes() {
        let g = graph(SRC);
        let flush = &g.fns[0];
        let call = flush
            .calls
            .iter()
            .find(|c| c.callee == "log_one")
            .expect("call recorded");
        assert_eq!(call.held.len(), 1);
        assert_eq!(call.held[0].0.name, "shard");
    }

    #[test]
    fn ambiguous_names_do_not_resolve() {
        let src = "\
impl A { fn go(&self) { helper(); } fn helper(&self) {} }
impl B { fn helper(&self) {} }
";
        let g = graph(src);
        let go = &g.fns[0];
        let call = go.calls.iter().find(|c| c.callee == "helper").unwrap();
        assert!(g.resolve(go, call).is_none(), "two `helper`s: ambiguous");
    }

    #[test]
    fn methods_on_other_receivers_do_not_resolve() {
        // `f.sync_all()` is `File::sync_all`, not the workspace's own
        // fn of that name — method calls only resolve through `self`.
        let src = "\
impl A { fn go(&self) { let f = open(); f.sync_all(); } }
impl B { fn sync_all(&self) {} }
";
        let g = graph(src);
        let go = &g.fns[0];
        let call = go.calls.iter().find(|c| c.callee == "sync_all").unwrap();
        assert!(g.resolve(go, call).is_none(), "non-self receiver");
    }

    #[test]
    fn self_calls_resolve_within_impl() {
        let src = "\
impl A { fn go(&self) { self.helper(); } fn helper(&self) {} }
impl B { fn helper(&self) {} }
";
        let g = graph(src);
        let go = &g.fns[0];
        let call = go.calls.iter().find(|c| c.callee == "helper").unwrap();
        let t = g.resolve(go, call).expect("self call resolves in impl");
        assert_eq!(g.fns[t].impl_type.as_deref(), Some("A"));
    }
}
