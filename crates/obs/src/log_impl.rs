//! Leveled logging to stderr, filtered by the `SEGDIFF_LOG` env var.
//!
//! Recognised values: `off`, `error`, `warn`, `info`, `debug`
//! (case-insensitive). Unset or unrecognised values default to `warn`,
//! so normal CLI output stays quiet while real problems surface. The
//! level is read once per process; tests can override it with
//! [`set_level`] before the first log call.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions that don't stop execution.
    Warn = 2,
    /// High-level progress (plan chosen, files opened, ...).
    Info = 3,
    /// Detailed internals.
    Debug = 4,
}

impl Level {
    fn from_env(value: &str) -> Level {
        match value.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" | "trace" => Level::Debug,
            _ => Level::Warn,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// `u8::MAX` means "not yet overridden"; otherwise a forced level.
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);

fn env_level() -> Level {
    static FROM_ENV: OnceLock<Level> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("SEGDIFF_LOG")
            .map(|v| Level::from_env(&v))
            .unwrap_or(Level::Warn)
    })
}

/// The effective log level.
pub fn level() -> Level {
    match OVERRIDE.load(Ordering::Relaxed) {
        u8::MAX => env_level(),
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// Forces the log level, overriding `SEGDIFF_LOG`.
pub fn set_level(level: Level) {
    OVERRIDE.store(level as u8, Ordering::Relaxed);
}

/// Writes one log line to stderr if `at` is enabled. Called by the
/// `obs::info!`-family macros; not intended for direct use.
pub fn emit(at: Level, args: fmt::Arguments<'_>) {
    if at == Level::Off || at > level() {
        return;
    }
    eprintln!("[segdiff {:>5}] {args}", at.label());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_env_values() {
        assert_eq!(Level::from_env("off"), Level::Off);
        assert_eq!(Level::from_env("DEBUG"), Level::Debug);
        assert_eq!(Level::from_env("Info"), Level::Info);
        assert_eq!(Level::from_env("bogus"), Level::Warn);
    }

    #[test]
    fn ordering_gates_emission() {
        assert!(Level::Debug > Level::Info);
        assert!(Level::Error < Level::Warn);
        // emit() with a disabled level must be a no-op (no panic, no output
        // assertion possible here, but exercise the path).
        set_level(Level::Off);
        emit(Level::Error, format_args!("suppressed"));
        set_level(Level::Debug);
        assert_eq!(level(), Level::Debug);
    }
}
