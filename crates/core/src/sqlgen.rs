//! The paper's queries as SQL text.
//!
//! §4.4 reduces a search to "two simple range queries" per boundary —
//! point queries and line queries over the stored corner columns — and §6
//! runs them as "standard SQL queries". This module generates exactly that
//! SQL against the feature tables and executes it through the engine's SQL
//! layer, as an executable specification of the paper's retrieval step.
//! [`SegDiffIndex::query_sql`] must (and, per the test suite, does) return
//! the same result set as the native query path.

use crate::index::SegDiffIndex;
use crate::result::{sort_dedup, SegmentPair};
use crate::tables::table_name;
use featurespace::{QueryRegion, SearchKind};
use pagestore::{ExecOutcome, Result};

/// The point query of §4.4 for corner `j` (1-based) of the
/// `corners`-corner table: *is the stored corner inside the region?*
pub fn point_query_sql(kind: SearchKind, corners: usize, j: usize, region: &QueryRegion) -> String {
    let table = table_name(kind, corners);
    let cmp = match kind {
        SearchKind::Drop => "<=",
        SearchKind::Jump => ">=",
    };
    format!(
        "SELECT td, tc, tb, ta FROM {table} WHERE dt{j} <= {t} AND dv{j} {cmp} {v}",
        t = region.t,
        v = region.v,
    )
}

/// The line query of §4.4 for the edge between corners `j` and `j + 1`:
/// *do both ends lie outside the region while the edge crosses it?* The
/// final conjunct is the paper's interpolation condition, verbatim.
pub fn line_query_sql(kind: SearchKind, corners: usize, j: usize, region: &QueryRegion) -> String {
    let table = table_name(kind, corners);
    let (t, v) = (region.t, region.v);
    let k = j + 1;
    match kind {
        SearchKind::Drop => format!(
            "SELECT td, tc, tb, ta FROM {table} \
             WHERE dt{j} <= {t} AND dv{j} > {v} AND dt{k} > {t} AND dv{k} < {v} \
             AND dv{j} + (dv{k} - dv{j}) / (dt{k} - dt{j}) * ({t} - dt{j}) <= {v}"
        ),
        SearchKind::Jump => format!(
            "SELECT td, tc, tb, ta FROM {table} \
             WHERE dt{j} <= {t} AND dv{j} < {v} AND dt{k} > {t} AND dv{k} > {v} \
             AND dv{j} + (dv{k} - dv{j}) / (dt{k} - dt{j}) * ({t} - dt{j}) >= {v}"
        ),
    }
}

/// Every SQL statement a search issues: per corner-count table, one point
/// query per corner and one line query per edge.
pub fn search_sql(region: &QueryRegion) -> Vec<String> {
    let mut out = Vec::new();
    for corners in 1..=3 {
        for j in 1..=corners {
            out.push(point_query_sql(region.kind, corners, j, region));
        }
        for j in 1..corners {
            out.push(line_query_sql(region.kind, corners, j, region));
        }
    }
    out
}

impl SegDiffIndex {
    /// Runs the search entirely through SQL text (see the module docs),
    /// returning the deduplicated results and the statements executed.
    ///
    /// Functionally identical to `query(region, QueryPlan::SeqScan)` —
    /// the planner may choose index plans per statement if the B+trees
    /// have been built.
    pub fn query_sql(&self, region: &QueryRegion) -> Result<(Vec<SegmentPair>, Vec<String>)> {
        let statements = search_sql(region);
        let mut results = Vec::new();
        for sql in &statements {
            match self.database().execute(sql)? {
                ExecOutcome::Rows { rows, .. } => {
                    for row in rows {
                        results.push(SegmentPair {
                            t_d: row[0],
                            t_c: row[1],
                            t_b: row[2],
                            t_a: row[3],
                        });
                    }
                }
                other => {
                    unreachable!("SELECT returned {other:?}")
                }
            }
        }
        sort_dedup(&mut results);
        Ok((results, statements))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryPlan, SegDiffConfig};
    use sensorgen::{TimeSeries, HOUR};

    fn walk(n: usize, seed: u64) -> TimeSeries {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0.0;
        (0..n)
            .map(|i| {
                v += (rng.random::<f64>() - 0.5) * 2.0;
                (i as f64 * 300.0, v)
            })
            .collect()
    }

    #[test]
    fn sql_text_matches_the_paper() {
        let region = QueryRegion::drop(3600.0, -3.0);
        let sql = point_query_sql(SearchKind::Drop, 2, 1, &region);
        assert_eq!(
            sql,
            "SELECT td, tc, tb, ta FROM drop2 WHERE dt1 <= 3600 AND dv1 <= -3"
        );
        let sql = line_query_sql(SearchKind::Drop, 2, 1, &region);
        assert!(sql.contains("dv1 + (dv2 - dv1) / (dt2 - dt1) * (3600 - dt1) <= -3"));
        // 3 tables: 1+0, 2+1, 3+2 statements = 9 in total.
        assert_eq!(search_sql(&region).len(), 9);
    }

    #[test]
    fn sql_path_equals_native_path() {
        let dir = std::env::temp_dir().join(format!("segdiff-sqlgen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let series = walk(400, 11);
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        for region in [
            QueryRegion::drop(1.0 * HOUR, -1.5),
            QueryRegion::drop(4.0 * HOUR, -3.0),
            QueryRegion::jump(2.0 * HOUR, 1.0),
        ] {
            let (native, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
            let (via_sql, stmts) = idx.query_sql(&region).unwrap();
            assert_eq!(native, via_sql, "SQL and native disagree for {region:?}");
            assert!(!stmts.is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sql_path_uses_indexes_when_available() {
        let dir = std::env::temp_dir().join(format!("segdiff-sqlgen-idx-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let series = walk(300, 4);
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        let region = QueryRegion::drop(1.0 * HOUR, -1.0);
        let (before, _) = idx.query_sql(&region).unwrap();
        idx.build_indexes().unwrap();
        // The point query is now answerable through a covered index plan.
        let sql = point_query_sql(SearchKind::Drop, 1, 1, &region);
        match idx.database().execute(&sql).unwrap() {
            ExecOutcome::Rows { plan, .. } => {
                assert!(
                    matches!(plan, pagestore::Plan::IndexRange { .. }),
                    "expected an index plan, got {plan:?}"
                );
            }
            other => panic!("{other:?}"),
        }
        let (after, _) = idx.query_sql(&region).unwrap();
        assert_eq!(before, after, "plans changed the answer");
        std::fs::remove_dir_all(&dir).ok();
    }
}
