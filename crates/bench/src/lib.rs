//! Experiment harness: everything needed to regenerate every table and
//! figure of the paper's §6 on the synthetic CAD workload.
//!
//! The `reproduce` binary drives the functions in [`experiments`]; the
//! Criterion benches under `benches/` exercise reduced-size versions of the
//! same code paths so `cargo bench` stays fast.

pub mod alertsmoke;
pub mod bigcorpus;
pub mod clustersmoke;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod scaling;
pub mod serving;
pub mod subsmoke;

pub use harness::{
    build_exh, build_segdiff, default_series, time_query_exh, time_query_segdiff, BuiltExh,
    BuiltSegDiff, Scale, TimedQuery,
};
pub use report::Report;
