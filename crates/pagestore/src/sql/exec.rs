//! Planning and execution of parsed statements.

use super::ast::{BinOp, Projection, Statement};
use super::eval::{compile, matches};
use crate::db::{Database, TableSpec};
use crate::error::Result;
use crate::table::Table;
use crate::StoreError;

/// How a SELECT was executed.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Full sequential scan.
    SeqScan,
    /// B+tree range scan on the named index with the given first-column
    /// bounds (residual predicate applied to every candidate).
    IndexRange {
        /// Index used.
        index: String,
        /// Inclusive lower bounds per indexed column.
        lo: Vec<f64>,
        /// Inclusive upper bounds per indexed column.
        hi: Vec<f64>,
        /// Whether the scan was covered by the key columns alone (no heap
        /// fetches for non-matching entries).
        covered: bool,
    },
}

/// Result of [`Database::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// DDL succeeded.
    Created,
    /// Rows inserted.
    Inserted(u64),
    /// SELECT result rows.
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// The rows.
        rows: Vec<Vec<f64>>,
        /// The plan that produced them.
        plan: Plan,
    },
    /// `SELECT COUNT(*)` result.
    Count {
        /// Matching row count.
        count: u64,
        /// The plan that produced it.
        plan: Plan,
    },
}

/// Executes one parsed statement.
pub fn execute(db: &Database, stmt: Statement) -> Result<ExecOutcome> {
    match stmt {
        Statement::CreateTable { name, cols } => {
            let cols: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
            db.create_table(TableSpec::new(&name, &cols))?;
            Ok(ExecOutcome::Created)
        }
        Statement::CreateIndex { name, table, cols } => {
            let cols: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
            db.create_index(&table, &name, &cols)?;
            Ok(ExecOutcome::Created)
        }
        Statement::Insert { table, rows } => {
            let t = db.table(&table)?;
            let n = rows.len() as u64;
            for row in rows {
                if row.len() != t.columns().len() {
                    return Err(StoreError::InvalidArgument(format!(
                        "INSERT arity {} does not match table {} ({} columns)",
                        row.len(),
                        table,
                        t.columns().len()
                    )));
                }
                t.insert(&row)?;
            }
            Ok(ExecOutcome::Inserted(n))
        }
        Statement::Select {
            projection,
            table,
            predicate,
            index_hint,
            limit,
        } => select(db, projection, &table, predicate, index_hint, limit),
    }
}

/// Per-column bounds extracted from top-level conjuncts.
#[derive(Debug, Clone, Copy)]
struct Bounds {
    lo: f64,
    hi: f64,
}

fn column_bounds(predicate: &Option<super::ast::Expr>, cols: &[String]) -> Vec<Option<Bounds>> {
    let mut out = vec![None::<Bounds>; cols.len()];
    let Some(pred) = predicate else { return out };
    for conj in pred.conjuncts() {
        let Some((name, op, lit)) = conj.as_column_bound() else {
            continue;
        };
        let Some(idx) = cols.iter().position(|c| c == name) else {
            continue;
        };
        let b = out[idx].get_or_insert(Bounds {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        });
        match op {
            // Strict bounds are widened to inclusive ones; the residual
            // predicate enforces strictness exactly.
            BinOp::Le | BinOp::Lt => b.hi = b.hi.min(lit),
            BinOp::Ge | BinOp::Gt => b.lo = b.lo.max(lit),
            BinOp::Eq => {
                b.lo = b.lo.max(lit);
                b.hi = b.hi.min(lit);
            }
            _ => {}
        }
    }
    out
}

fn pick_index(
    table: &Table,
    bounds: &[Option<Bounds>],
    hint: Option<String>,
) -> Result<Option<String>> {
    if let Some(name) = hint {
        table.index(&name)?; // existence check; error if missing
        return Ok(Some(name));
    }
    // Choose the index with the most usable leading bounded columns.
    let mut best: Option<(usize, String)> = None;
    for name in table.index_names() {
        let idx = table.index(&name)?;
        let mut usable = 0;
        for &c in idx.cols() {
            let Some(b) = &bounds[c] else { break };
            usable += 1;
            // Only continue past this column if it is pinned exactly.
            if b.lo != b.hi {
                break;
            }
        }
        if usable > 0 && best.as_ref().is_none_or(|(u, _)| usable > *u) {
            best = Some((usable, name));
        }
    }
    Ok(best.map(|(_, name)| name))
}

#[allow(clippy::too_many_arguments)]
fn select(
    db: &Database,
    projection: Projection,
    table_name: &str,
    predicate: Option<super::ast::Expr>,
    index_hint: Option<String>,
    limit: Option<u64>,
) -> Result<ExecOutcome> {
    let table = db.table(table_name)?;
    let cols = table.columns().to_vec();
    let compiled = predicate.as_ref().map(|p| compile(p, &cols)).transpose()?;
    let proj_idx: Vec<usize> = match &projection {
        Projection::All => (0..cols.len()).collect(),
        Projection::Count => Vec::new(),
        Projection::Columns(names) => names
            .iter()
            .map(|n| {
                cols.iter()
                    .position(|c| c == n)
                    .ok_or_else(|| StoreError::NotFound(format!("column {n}")))
            })
            .collect::<Result<_>>()?,
    };
    let out_columns: Vec<String> = match &projection {
        Projection::All => cols.clone(),
        Projection::Count => vec!["count".to_string()],
        Projection::Columns(names) => names.clone(),
    };

    let bounds = column_bounds(&predicate, &cols);
    let chosen = pick_index(&table, &bounds, index_hint)?;

    let max = limit.unwrap_or(u64::MAX);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut count = 0u64;
    let counting = matches!(projection, Projection::Count);
    let mut emit = |row: &[f64]| -> bool {
        count += 1;
        if !counting {
            rows.push(proj_idx.iter().map(|&i| row[i]).collect());
        }
        count < max
    };

    let plan = match chosen {
        None => {
            table.seq_scan(|_, row| {
                if compiled.as_ref().map(|c| matches(c, row)).unwrap_or(true) {
                    return emit(row);
                }
                true
            })?;
            Plan::SeqScan
        }
        Some(index_name) => {
            let idx = table.index(&index_name)?;
            let idx_cols = idx.cols().to_vec();
            // Bounds per indexed column (prefix usable; the residual does
            // the exact filtering).
            let mut lo = vec![f64::NEG_INFINITY; idx_cols.len()];
            let mut hi = vec![f64::INFINITY; idx_cols.len()];
            for (k, &c) in idx_cols.iter().enumerate() {
                if let Some(b) = bounds[c] {
                    lo[k] = b.lo;
                    hi[k] = b.hi;
                    if b.lo != b.hi {
                        break;
                    }
                } else {
                    break;
                }
            }
            // Covered execution: if the predicate and projection only touch
            // indexed columns, evaluate on key bytes and never fetch.
            let key_col_names: Vec<String> = idx_cols.iter().map(|&c| cols[c].clone()).collect();
            let covered_pred = predicate
                .as_ref()
                .and_then(|p| compile(p, &key_col_names).ok());
            let covered_proj: Option<Vec<usize>> = match &projection {
                Projection::Count => Some(Vec::new()),
                Projection::All => None,
                Projection::Columns(names) => names
                    .iter()
                    .map(|n| key_col_names.iter().position(|c| c == n))
                    .collect(),
            };
            let covered = covered_pred.is_some() && covered_proj.is_some();
            if let (Some(cpred), Some(cproj)) = (covered_pred, covered_proj) {
                table.index_scan(&index_name, &lo, &hi, |_rid, key_vals| {
                    if matches(&cpred, key_vals) {
                        count += 1;
                        if !counting {
                            rows.push(cproj.iter().map(|&i| key_vals[i]).collect());
                        }
                        return count < max;
                    }
                    true
                })?;
            } else {
                let mut rowbuf = Vec::new();
                let mut rids = Vec::new();
                table.index_scan(&index_name, &lo, &hi, |rid, _| {
                    rids.push(rid);
                    true
                })?;
                for rid in rids {
                    table.fetch(rid, &mut rowbuf)?;
                    if compiled
                        .as_ref()
                        .map(|c| matches(c, &rowbuf))
                        .unwrap_or(true)
                        && !emit(&rowbuf)
                    {
                        break;
                    }
                }
            }
            Plan::IndexRange {
                index: index_name,
                lo,
                hi,
                covered,
            }
        }
    };

    if counting {
        Ok(ExecOutcome::Count { count, plan })
    } else {
        Ok(ExecOutcome::Rows {
            columns: out_columns,
            rows,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn setup(name: &str) -> (Arc<Database>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("pagestore-sql-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 256).unwrap();
        (db, dir)
    }

    fn fill(db: &Database) {
        db.execute("CREATE TABLE ev (dt, dv, t)").unwrap();
        for i in 0..300 {
            let dt = (i % 30) as f64 * 60.0;
            let dv = -((i % 11) as f64) + 3.0;
            db.execute(&format!("INSERT INTO ev VALUES ({dt}, {dv}, {i})"))
                .unwrap();
        }
    }

    #[test]
    fn ddl_insert_select_roundtrip() {
        let (db, dir) = setup("roundtrip");
        fill(&db);
        let out = db.execute("SELECT COUNT(*) FROM ev").unwrap();
        assert_eq!(
            out,
            ExecOutcome::Count {
                count: 300,
                plan: Plan::SeqScan
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn where_filters_and_projects() {
        let (db, dir) = setup("filter");
        fill(&db);
        let out = db
            .execute("SELECT t FROM ev WHERE dt <= 120 AND dv <= -5")
            .unwrap();
        let ExecOutcome::Rows {
            columns,
            rows,
            plan,
        } = out
        else {
            panic!()
        };
        assert_eq!(columns, vec!["t".to_string()]);
        assert_eq!(plan, Plan::SeqScan);
        // Verify against manual filter.
        let mut expect = 0;
        db.table("ev")
            .unwrap()
            .seq_scan(|_, row| {
                if row[0] <= 120.0 && row[1] <= -5.0 {
                    expect += 1;
                }
                true
            })
            .unwrap();
        assert_eq!(rows.len(), expect);
        assert!(expect > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_plan_picked_and_agrees_with_scan() {
        let (db, dir) = setup("indexed");
        fill(&db);
        db.execute("CREATE INDEX by_dt_dv ON ev (dt, dv)").unwrap();
        let sql = "SELECT t FROM ev WHERE dt <= 300 AND dv <= -4";
        let out = db.execute(sql).unwrap();
        let ExecOutcome::Rows {
            rows: indexed,
            plan,
            ..
        } = out
        else {
            panic!()
        };
        match &plan {
            Plan::IndexRange {
                index, hi, covered, ..
            } => {
                assert_eq!(index, "by_dt_dv");
                assert_eq!(hi[0], 300.0);
                assert!(!covered, "projection of t is not covered");
            }
            other => panic!("expected index plan, got {other:?}"),
        }
        // Force a seq scan by hinting nothing and dropping the bound shape.
        let ExecOutcome::Rows { rows: scanned, .. } = db
            .execute("SELECT t FROM ev WHERE (dt) + 0 <= 300 AND dv <= -4")
            .unwrap()
        else {
            panic!()
        };
        let mut a = indexed.clone();
        let mut b = scanned.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn covered_count_never_fetches() {
        let (db, dir) = setup("covered");
        fill(&db);
        db.execute("CREATE INDEX by_dt_dv ON ev (dt, dv)").unwrap();
        let out = db
            .execute("SELECT COUNT(*) FROM ev WHERE dt <= 600 AND dv <= -3")
            .unwrap();
        let ExecOutcome::Count { count, plan } = out else {
            panic!()
        };
        match plan {
            Plan::IndexRange { covered, .. } => assert!(covered),
            other => panic!("expected covered index plan, got {other:?}"),
        }
        let ExecOutcome::Count { count: want, .. } = db
            .execute("SELECT COUNT(*) FROM ev WHERE dt + 0 <= 600 AND dv <= -3")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(count, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn using_index_hint_is_respected() {
        let (db, dir) = setup("hint");
        fill(&db);
        db.execute("CREATE INDEX by_t ON ev (t)").unwrap();
        let out = db
            .execute("SELECT dv FROM ev WHERE dv <= -4 USING INDEX by_t")
            .unwrap();
        let ExecOutcome::Rows { plan, .. } = out else {
            panic!()
        };
        match plan {
            Plan::IndexRange { index, lo, hi, .. } => {
                assert_eq!(index, "by_t");
                // No bound on t: full-range scan through the index.
                assert_eq!(lo[0], f64::NEG_INFINITY);
                assert_eq!(hi[0], f64::INFINITY);
            }
            other => panic!("{other:?}"),
        }
        assert!(db
            .execute("SELECT * FROM ev WHERE dv <= -4 USING INDEX nope")
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn limit_stops_early() {
        let (db, dir) = setup("limit");
        fill(&db);
        let ExecOutcome::Rows { rows, .. } = db.execute("SELECT * FROM ev LIMIT 7").unwrap() else {
            panic!()
        };
        assert_eq!(rows.len(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn equality_pins_extend_the_prefix() {
        let (db, dir) = setup("eq");
        fill(&db);
        db.execute("CREATE INDEX by_dt_dv ON ev (dt, dv)").unwrap();
        let ExecOutcome::Rows { plan, rows, .. } = db
            .execute("SELECT t FROM ev WHERE dt = 120 AND dv <= -2")
            .unwrap()
        else {
            panic!()
        };
        match plan {
            Plan::IndexRange { lo, hi, .. } => {
                assert_eq!((lo[0], hi[0]), (120.0, 120.0));
                assert_eq!(hi[1], -2.0, "second column usable after equality");
            }
            other => panic!("{other:?}"),
        }
        assert!(!rows.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arity_errors_and_unknown_objects() {
        let (db, dir) = setup("errors");
        db.execute("CREATE TABLE t (a, b)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
        assert!(db.execute("SELECT * FROM nope").is_err());
        assert!(db.execute("SELECT nope FROM t").is_err());
        assert!(db.execute("SELECT * FROM t WHERE nope > 1").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
