//! Rule L3: lock acquisitions respect the partial order declared in
//! `ci/lock-order.toml` — within one function.
//!
//! The pass is lexical, not type-aware; see [`crate::flow`] for the
//! acquisition-site definition and the guard-lifetime model shared
//! with L6/L7. A violation is: acquiring class B while a live guard
//! holds class A with `order(A) > order(B)`, or re-acquiring the same
//! class while a guard of it is live (same receiver path always;
//! different paths unless the class is declared `reentrant = true`).
//!
//! Composed orders — a *callee* acquiring B while the caller holds A —
//! are rule L6's job ([`crate::rules::interlock`]).

use crate::config::LockOrder;
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::flow::{self, ClassRef, Guard, Site};

/// Runs L3 over one file with the given declaration. Diagnostics are
/// unfiltered; the caller applies the suppression index.
pub fn check(ctx: &FileCtx, order: &LockOrder) -> Vec<Diagnostic> {
    if ctx.test_file {
        return Vec::new();
    }
    let mut sink = L3Sink {
        ctx,
        out: Vec::new(),
    };
    flow::walk_file(ctx, order, &mut sink);
    sink.out
}

struct L3Sink<'a, 's> {
    ctx: &'a FileCtx<'s>,
    out: Vec<Diagnostic>,
}

impl flow::Sink for L3Sink<'_, '_> {
    fn acquire(&mut self, site: Site, class: &ClassRef, path: &str, held: &[Guard]) {
        if self.ctx.in_test(site.line) {
            return;
        }
        for g in held {
            let Some(held_class) = &g.class else { continue };
            let bad_order = held_class.rank > class.rank;
            let double = held_class.name == class.name && (g.path == path || !class.reentrant);
            if bad_order || double {
                let what = if bad_order {
                    format!(
                        "acquires `{}` while holding `{}` (declared order: {} before {})",
                        class.name, held_class.name, class.name, held_class.name
                    )
                } else {
                    format!(
                        "re-acquires `{}` (guard from line {} still live) — self-deadlock",
                        class.name, g.line
                    )
                };
                self.out.push(self.ctx.diag(
                    Rule::L3,
                    site.line,
                    site.col,
                    what,
                    "release the earlier guard first, fix ci/lock-order.toml, or justify with `// lint: allow(L3) <reason>`"
                        .into(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockOrder;
    use crate::context::SuppressionIndex;

    const ORDER: &str = r#"
order = ["files", "shard", "file", "wal"]

[[class]]
name = "files"
paths = ["*.files"]

[[class]]
name = "shard"
paths = ["*.shards[]", "s"]

[[class]]
name = "file"
paths = ["files[].file", "*.file"]

[[class]]
name = "wal"
paths = ["*.wal_inner"]
"#;

    fn run(src: &str) -> Vec<Diagnostic> {
        let order = LockOrder::parse(ORDER).unwrap();
        let ctx = FileCtx::new("crates/pagestore/src/buffer.rs", src);
        let mut index = SuppressionIndex::default();
        index.add_file(&ctx);
        index.filter(check(&ctx, &order))
    }

    #[test]
    fn legal_nesting_passes() {
        let src = r#"
fn flush(&self) {
    let files = self.files.read();
    let mut shard = self.shards[si].lock();
    let mut file = files[fid].file.lock();
    file.write_page();
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn inverted_order_flagged() {
        let src = r#"
fn bad(&self) {
    let mut file = files[fid].file.lock();
    let files = self.files.read();
}
"#;
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .message
            .contains("acquires `files` while holding `file`"));
    }

    #[test]
    fn double_lock_flagged() {
        let src = "fn bad(&self) {\n let a = self.shards[i].lock();\n let b = self.shards[j].lock();\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("re-acquires `shard`"));
    }

    #[test]
    fn scope_exit_releases() {
        let src = r#"
fn ok(&self) {
    {
        let mut file = files[fid].file.lock();
    }
    let files = self.files.read();
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases() {
        let src = r#"
fn ok(&self) {
    let mut file = files[fid].file.lock();
    drop(file);
    let files = self.files.read();
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let src = r#"
fn ok(&self) {
    let n = self.files.read().len();
    let pages = files[fid].file.lock().num_pages();
    let files = self.files.read();
}
"#;
        // Each statement's temporary guard dies at its `;`, so the
        // final read() sees nothing held.
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_temporaries_nest_within_statement() {
        // files.read() is still live while file.lock() happens inside
        // one statement — legal order, no diagnostic.
        let src = "fn ok(&self) {\n let p = self.files.read()[fid].file.lock();\n}\n";
        assert!(run(src).is_empty());
        // The inverse nesting inside one statement is flagged.
        let bad = "fn bad(&self) {\n let p = x.file.lock().files.read();\n}\n";
        // receiver of read() is `lock().files` → not a simple path, so
        // it is not classified; construct a real inversion instead:
        let bad2 =
            "fn bad(&self) {\n let w = self.wal_inner.lock().probe(self.shards[i].lock());\n}\n";
        assert!(run(bad).is_empty());
        let d = run(bad2);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("while holding `wal`"));
    }

    #[test]
    fn io_read_write_with_args_ignored() {
        let src = "fn ok(&self) {\n let n = stream.read(&mut buf);\n stream.write(&buf);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn poisoning_adapter_keeps_guard_live() {
        // `.unwrap()` after the acquisition still binds the guard, so
        // the later inverted acquisition is caught.
        let src = "fn bad(&self) {\n let mut file = files[fid].file.lock().unwrap();\n let files = self.files.read();\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn suppression_honored() {
        let src = "fn f(&self) {\n let a = files[fid].file.lock();\n let b = self.files.read(); // lint: allow(L3) startup only, single-threaded\n}\n";
        assert!(run(src).is_empty());
    }
}
