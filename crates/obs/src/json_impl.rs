//! A dependency-free JSON value with a writer and a strict parser.
//!
//! Numbers are kept in their written form: integers that fit `u64`/`i64`
//! stay exact ([`Json::Uint`]/[`Json::Int`]); everything else is
//! [`Json::Float`]. That makes counter values round-trip exactly, which
//! the CLI integration tests rely on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits `u64` (exact).
    Uint(u64),
    /// A negative integer that fits `i64` (exact).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Uint(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Uint(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Uint(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::Uint(v as u64)
        } else {
            Json::Int(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Ensure the token re-parses as a float even when the
                    // value is integral (e.g. "2.0", not "2").
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; the full input must be consumed (trailing
    /// whitespace allowed). Returns a description of the first error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                // lint: allow(L1) slice follows scalar boundaries of a valid &str
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Uint(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact() {
        let j = Json::obj([
            ("a", Json::Uint(1)),
            ("b", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("c", Json::from("x\"y")),
        ]);
        assert_eq!(
            j.to_string_compact(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn round_trips() {
        let j = Json::obj([
            ("count", Json::Uint(u64::MAX)),
            ("neg", Json::Int(-42)),
            ("pi", Json::Float(3.5)),
            ("whole_float", Json::Float(2.0)),
            ("s", Json::from("line\nbreak\tand \\slash\\")),
            ("nested", Json::obj([("empty", Json::Array(vec![]))])),
        ]);
        let text = j.to_string_compact();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, j);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let j = Json::parse(" { \"k\" : [ 1 , -2 , 3.25, \"\\u00e9é\" ] } ").unwrap();
        let arr = j.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::Uint(1));
        assert_eq!(arr[1], Json::Int(-2));
        assert_eq!(arr[2], Json::Float(3.25));
        assert_eq!(arr[3].as_str(), Some("éé"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn exact_u64_round_trip() {
        for v in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let text = Json::Uint(v).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
        }
    }
}
