//! Physical layout of the feature tables.
//!
//! Boundaries with one, two, and three corners go to separate fixed-width
//! tables per search kind (six feature tables in total), so every row is
//! exactly as wide as its corner count requires:
//!
//! | table   | columns                                              |
//! |---------|------------------------------------------------------|
//! | `drop1` | `dt1, dv1, td, tc, tb, ta`                           |
//! | `drop2` | `dt1, dv1, dt2, dv2, td, tc, tb, ta`                 |
//! | `drop3` | `dt1, dv1, dt2, dv2, dt3, dv3, td, tc, tb, ta`       |
//!
//! (`jump1..3` mirror these.) The paper packs rows into `c2 ∈ {5, 6, 7}`
//! columns by recomputing some `Δt`s from three stored time stamps; we
//! store the corner coordinates and all four time stamps explicitly for a
//! simpler scan path and report the paper's `c2` accounting separately
//! (see [`crate::SegDiffStats::paper_feature_bytes`]).

use crate::ingest::FeatureRow;
use crate::result::SegmentPair;
use featurespace::SearchKind;
#[cfg(test)]
use featurespace::{Boundary, FeaturePoint};

/// Names of the drop feature tables by corner count (index 0 = one corner).
pub(crate) const DROP_TABLES: [&str; 3] = ["drop1", "drop2", "drop3"];
/// Names of the jump feature tables by corner count.
pub(crate) const JUMP_TABLES: [&str; 3] = ["jump1", "jump2", "jump3"];
/// Name of the segment catalog table (`t_start, v_start, t_end, v_end`).
pub(crate) const SEGMENTS_TABLE: &str = "segments";

/// Table name for a search kind and corner count (1–3).
pub(crate) fn table_name(kind: SearchKind, corners: usize) -> &'static str {
    match kind {
        SearchKind::Drop => DROP_TABLES[corners - 1],
        SearchKind::Jump => JUMP_TABLES[corners - 1],
    }
}

/// Column names for a feature table with `corners` corner points.
pub(crate) fn table_cols(corners: usize) -> Vec<&'static str> {
    let coord_cols: &[&str] = match corners {
        1 => &["dt1", "dv1"],
        2 => &["dt1", "dv1", "dt2", "dv2"],
        3 => &["dt1", "dv1", "dt2", "dv2", "dt3", "dv3"],
        _ => unreachable!("boundaries have 1-3 corners"),
    };
    let mut cols = coord_cols.to_vec();
    cols.extend(["td", "tc", "tb", "ta"]);
    cols
}

/// Serializes a feature row into the column vector for its table.
pub(crate) fn encode_row(row: &FeatureRow, out: &mut Vec<f64>) {
    out.clear();
    for p in row.boundary.corners() {
        out.push(p.dt);
        out.push(p.dv);
    }
    out.extend([row.t_d, row.t_c, row.t_b, row.t_a]);
}

/// Reconstructs the stored boundary from a row of the `corners`-corner
/// table. Production scans evaluate intersection through the columnar
/// batch kernel instead; this scalar path remains the reference the
/// equivalence tests check against.
#[cfg(test)]
pub(crate) fn boundary_from_row(row: &[f64], corners: usize) -> Boundary {
    let p = |i: usize| FeaturePoint::new(row[2 * i], row[2 * i + 1]);
    match corners {
        1 => Boundary::one(p(0)),
        2 => Boundary::two(p(0), p(1)),
        3 => Boundary::three(p(0), p(1), p(2)),
        _ => unreachable!("boundaries have 1-3 corners"),
    }
}

/// Extracts the result tuple from a row of the `corners`-corner table.
pub(crate) fn pair_from_row(row: &[f64], corners: usize) -> SegmentPair {
    let base = 2 * corners;
    SegmentPair {
        t_d: row[base],
        t_c: row[base + 1],
        t_b: row[base + 2],
        t_a: row[base + 3],
    }
}

/// Index specifications for a feature table with `corners` corners:
/// one point-query index per corner and one line-query index per edge,
/// mirroring the paper's B-trees "on the concatenation of" the involved
/// columns (§4.4).
pub(crate) fn index_specs(corners: usize) -> Vec<(String, Vec<&'static str>)> {
    let coord = ["dt1", "dv1", "dt2", "dv2", "dt3", "dv3"];
    let mut specs = Vec::new();
    for j in 0..corners {
        specs.push((format!("pt{}", j + 1), vec![coord[2 * j], coord[2 * j + 1]]));
    }
    for j in 0..corners.saturating_sub(1) {
        specs.push((
            format!("ln{}", j + 1),
            vec![
                coord[2 * j],
                coord[2 * j + 1],
                coord[2 * j + 2],
                coord[2 * j + 3],
            ],
        ));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row3() -> FeatureRow {
        FeatureRow {
            kind: SearchKind::Drop,
            boundary: Boundary::three(
                FeaturePoint::new(1.0, -1.0),
                FeaturePoint::new(2.0, -2.0),
                FeaturePoint::new(3.0, -3.0),
            ),
            t_d: 10.0,
            t_c: 20.0,
            t_b: 30.0,
            t_a: 40.0,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = row3();
        let mut cols = Vec::new();
        encode_row(&r, &mut cols);
        assert_eq!(cols.len(), 10);
        let b = boundary_from_row(&cols, 3);
        assert_eq!(b, r.boundary);
        let p = pair_from_row(&cols, 3);
        assert_eq!((p.t_d, p.t_c, p.t_b, p.t_a), (10.0, 20.0, 30.0, 40.0));
    }

    #[test]
    fn col_names_match_widths() {
        assert_eq!(table_cols(1).len(), 6);
        assert_eq!(table_cols(2).len(), 8);
        assert_eq!(table_cols(3).len(), 10);
    }

    #[test]
    fn table_names_by_kind() {
        assert_eq!(table_name(SearchKind::Drop, 1), "drop1");
        assert_eq!(table_name(SearchKind::Jump, 3), "jump3");
    }

    #[test]
    fn index_specs_cover_corners_and_edges() {
        let s1 = index_specs(1);
        assert_eq!(s1.len(), 1); // pt1
        let s3 = index_specs(3);
        assert_eq!(s3.len(), 5); // pt1..3, ln1..2
        assert!(s3.iter().any(|(n, _)| n == "ln2"));
        let (_, ln1) = s3.iter().find(|(n, _)| n == "ln1").unwrap();
        assert_eq!(ln1, &vec!["dt1", "dv1", "dt2", "dv2"]);
    }
}
