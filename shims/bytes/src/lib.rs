//! Offline shim for the `bytes` API surface used by this workspace: a
//! growable byte buffer ([`BytesMut`]) and the [`BufMut`] write trait.
//!
//! Only the composite-key encoding in `pagestore` uses these, so the shim
//! is a thin wrapper over `Vec<u8>`.

use std::ops::{Deref, DerefMut};

/// A growable, reusable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Extends the buffer from a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { inner: s.to_vec() }
    }
}

/// Append-style writes into a byte buffer.
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in big-endian byte order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian byte order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        b.put_u64(0xDEAD);
        assert_eq!(b.len(), 11);
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert_eq!(u64::from_be_bytes(b[3..11].try_into().unwrap()), 0xDEAD);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn lexicographic_comparison_via_deref() {
        let mut a = BytesMut::new();
        let mut b = BytesMut::new();
        a.put_slice(&[1, 2]);
        b.put_slice(&[1, 3]);
        assert!(a[..] < b[..]);
        assert!(a < b);
    }
}
