//! Hierarchical zone maps: page / extent / segment min-max summaries.
//!
//! A zone map holds, for every data page of a heap, the minimum and
//! maximum of each column over the rows stored on that page. A sequential
//! scan with a *conservative* predicate (one that returns `true` whenever
//! any row in the summarized range could match) may then skip whole pages
//! without reading them — MacroBase-style pruning adapted to the feature
//! tables' corner columns.
//!
//! The summaries are stacked three levels deep in the same sidecar:
//!
//! * **page** — one entry per data page, as before;
//! * **extent** — one entry per [`EXTENT_PAGES`] consecutive data pages,
//!   so a selective scan over a large heap rejects 64 pages with one
//!   comparison and never touches their page entries;
//! * **segment** — a single whole-heap entry, letting a query plan skip
//!   an entire table (or answer a coarse "did anything in this heap ever
//!   reach the region?" probe) without walking the extent level.
//!
//! Every level is maintained by the same [`ZoneMap::observe`] fold, so the
//! hierarchy is consistent by construction: an upper entry always envelops
//! the entries below it, and pruning with the same predicate at every
//! level is lossless.
//!
//! Zone maps are derived data, like the B+trees: they are persisted to a
//! `<heap>.zones` sidecar (atomic temp + rename) keyed by the heap's row
//! count *and page format*, and a sidecar that disagrees with the heap
//! meta on either — e.g. after WAL recovery truncated the heap, or after
//! the heap was rewritten into the other page format — is discarded and
//! rebuilt from a scan. They are maintained incrementally on insert, so a
//! freshly created heap always carries an up-to-date map.

use crate::error::{Result, StoreError};
use std::path::{Path, PathBuf};

/// Version-2 magic ("SDZH" — zone hierarchy). Version-1 flat sidecars
/// fail this check and are discarded/rebuilt on first open.
const MAGIC: u32 = 0x5344_5A48;

/// Data pages summarized by one extent entry.
pub const EXTENT_PAGES: u32 = 64;

/// Number of levels in the hierarchy (page, extent, segment).
pub const ZONE_LEVELS: u64 = 3;

/// Hierarchical min/max summaries of every column of a heap file.
///
/// Data pages start at 1 (page 0 is the heap meta page); page `p` maps to
/// page entry `p - 1` and extent entry `(p - 1) / EXTENT_PAGES`. Entries
/// are stored page-major: `mins[(p-1)*ncols + c]` is the minimum of
/// column `c` on page `p`.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    ncols: usize,
    /// Rows observed; must equal the heap's row count to be valid.
    nrows: u64,
    /// Heap page format the map was built over; a sidecar built for the
    /// other format is as stale as a wrong row count.
    format: u16,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    ext_mins: Vec<f64>,
    ext_maxs: Vec<f64>,
    seg_mins: Vec<f64>,
    seg_maxs: Vec<f64>,
}

impl ZoneMap {
    /// An empty zone map for rows of `ncols` columns stored in heap page
    /// format `format` (see `heap`: 0 = raw rows, 1 = columnar).
    pub fn new(ncols: usize, format: u16) -> Self {
        assert!(ncols > 0, "zone map needs at least one column");
        Self {
            ncols,
            nrows: 0,
            format,
            mins: Vec::new(),
            maxs: Vec::new(),
            ext_mins: Vec::new(),
            ext_maxs: Vec::new(),
            seg_mins: Vec::new(),
            seg_maxs: Vec::new(),
        }
    }

    /// Number of data pages covered.
    pub fn pages(&self) -> u32 {
        (self.mins.len() / self.ncols) as u32
    }

    /// Number of extent entries covering those pages.
    pub fn extents(&self) -> u32 {
        (self.ext_mins.len() / self.ncols) as u32
    }

    /// Rows observed so far.
    pub fn num_rows(&self) -> u64 {
        self.nrows
    }

    /// The heap page format this map was built over.
    pub fn format(&self) -> u16 {
        self.format
    }

    /// The extent entry index covering data page `page`.
    pub fn extent_of(page: u32) -> u32 {
        debug_assert!(page > 0, "data pages start at 1");
        (page - 1) / EXTENT_PAGES
    }

    /// The data pages covered by extent entry `ext` (intersect with the
    /// heap's actual page range before use).
    pub fn extent_pages(ext: u32) -> std::ops::Range<u32> {
        1 + ext * EXTENT_PAGES..1 + (ext + 1) * EXTENT_PAGES
    }

    /// Folds one row stored on data page `page` into all three levels.
    ///
    /// # Panics
    ///
    /// Panics if `page == 0` (the meta page holds no rows) or the row
    /// arity differs from the map's.
    pub fn observe(&mut self, page: u32, row: &[f64]) {
        assert!(page > 0, "data pages start at 1");
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        let want = page as usize * self.ncols;
        if self.mins.len() < want {
            self.mins.resize(want, f64::INFINITY);
            self.maxs.resize(want, f64::NEG_INFINITY);
        }
        let ext = Self::extent_of(page);
        let ext_want = (ext as usize + 1) * self.ncols;
        if self.ext_mins.len() < ext_want {
            self.ext_mins.resize(ext_want, f64::INFINITY);
            self.ext_maxs.resize(ext_want, f64::NEG_INFINITY);
        }
        if self.seg_mins.is_empty() {
            self.seg_mins.resize(self.ncols, f64::INFINITY);
            self.seg_maxs.resize(self.ncols, f64::NEG_INFINITY);
        }
        let base = (page as usize - 1) * self.ncols;
        let ebase = ext as usize * self.ncols;
        for (c, &v) in row.iter().enumerate() {
            let m = &mut self.mins[base + c];
            *m = m.min(v);
            let m = &mut self.maxs[base + c];
            *m = m.max(v);
            let m = &mut self.ext_mins[ebase + c];
            *m = m.min(v);
            let m = &mut self.ext_maxs[ebase + c];
            *m = m.max(v);
            let m = &mut self.seg_mins[c];
            *m = m.min(v);
            let m = &mut self.seg_maxs[c];
            *m = m.max(v);
        }
        self.nrows += 1;
    }

    /// The `(mins, maxs)` column summaries of data page `page`, or `None`
    /// when the page is not covered (no rows observed there).
    pub fn page_bounds(&self, page: u32) -> Option<(&[f64], &[f64])> {
        if page == 0 || page > self.pages() {
            return None;
        }
        let base = (page as usize - 1) * self.ncols;
        Some((
            &self.mins[base..base + self.ncols],
            &self.maxs[base..base + self.ncols],
        ))
    }

    /// The `(mins, maxs)` summaries of extent entry `ext`, or `None` when
    /// no observed page falls in that extent.
    pub fn extent_bounds(&self, ext: u32) -> Option<(&[f64], &[f64])> {
        if ext >= self.extents() {
            return None;
        }
        let base = ext as usize * self.ncols;
        Some((
            &self.ext_mins[base..base + self.ncols],
            &self.ext_maxs[base..base + self.ncols],
        ))
    }

    /// The whole-heap `(mins, maxs)` summary, or `None` for an empty map.
    pub fn segment_bounds(&self) -> Option<(&[f64], &[f64])> {
        if self.seg_mins.is_empty() {
            return None;
        }
        Some((&self.seg_mins[..], &self.seg_maxs[..]))
    }

    /// The sidecar path for a heap stored at `heap_path`.
    pub fn sidecar_path(heap_path: &Path) -> PathBuf {
        let mut os = heap_path.as_os_str().to_os_string();
        os.push(".zones");
        PathBuf::from(os)
    }

    /// Serializes the map (little-endian, fixed layout).
    fn to_bytes(&self) -> Vec<u8> {
        let npages = self.pages();
        let next = self.extents();
        let seg = if self.seg_mins.is_empty() { 0u32 } else { 1 };
        let mut out = Vec::with_capacity(
            32 + (self.mins.len() + self.ext_mins.len() + self.seg_mins.len()) * 16,
        );
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.ncols as u32).to_le_bytes());
        out.extend_from_slice(&self.nrows.to_le_bytes());
        out.extend_from_slice(&npages.to_le_bytes());
        out.extend_from_slice(&self.format.to_le_bytes());
        out.extend_from_slice(&(EXTENT_PAGES as u16).to_le_bytes());
        out.extend_from_slice(&next.to_le_bytes());
        out.extend_from_slice(&seg.to_le_bytes());
        let mut dump = |vals: &[f64]| {
            for v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        dump(&self.mins);
        dump(&self.maxs);
        dump(&self.ext_mins);
        dump(&self.ext_maxs);
        dump(&self.seg_mins);
        dump(&self.seg_maxs);
        out
    }

    /// Writes the sidecar for `heap_path` atomically (temp + rename).
    pub fn save(&self, heap_path: &Path) -> Result<()> {
        let path = Self::sidecar_path(heap_path);
        let tmp = path.with_extension("zones.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Loads the sidecar for `heap_path`, returning `None` when it is
    /// missing, malformed, or stale (`ncols`/`nrows`/page `format`
    /// disagree with the heap meta). A stale map is deleted so it cannot
    /// be mistaken for current later.
    pub fn load(heap_path: &Path, ncols: usize, nrows: u64, format: u16) -> Option<ZoneMap> {
        let path = Self::sidecar_path(heap_path);
        let bytes = std::fs::read(&path).ok()?;
        let map = Self::from_bytes(&bytes).ok();
        let valid = map
            .as_ref()
            .is_some_and(|m| m.ncols == ncols && m.nrows == nrows && m.format == format);
        if !valid {
            std::fs::remove_file(&path).ok();
            return None;
        }
        map
    }

    fn from_bytes(b: &[u8]) -> Result<ZoneMap> {
        let corrupt = || StoreError::Corrupt("zone-map sidecar malformed".into());
        if b.len() < 32 {
            return Err(corrupt());
        }
        if u32::from_le_bytes(crate::page::arr(b, 0)) != MAGIC {
            return Err(corrupt());
        }
        let ncols = u32::from_le_bytes(crate::page::arr(b, 4)) as usize;
        let nrows = u64::from_le_bytes(crate::page::arr(b, 8));
        let npages = u32::from_le_bytes(crate::page::arr(b, 16)) as usize;
        let format = u16::from_le_bytes(crate::page::arr(b, 20));
        let ext_pages = u16::from_le_bytes(crate::page::arr(b, 22)) as u32;
        let next = u32::from_le_bytes(crate::page::arr(b, 24)) as usize;
        let seg = u32::from_le_bytes(crate::page::arr(b, 28)) as usize;
        let expected_ext = (npages as u32).div_ceil(EXTENT_PAGES) as usize;
        if ncols == 0 || ext_pages != EXTENT_PAGES || next != expected_ext || seg > 1 {
            return Err(corrupt());
        }
        let n = (npages + next + seg) * ncols;
        if b.len() != 32 + n * 16 {
            return Err(corrupt());
        }
        let read_f64s = |start: usize, count: usize| -> Vec<f64> {
            b[start..start + count * 8]
                .chunks_exact(8)
                .map(|c| {
                    let mut a = [0u8; 8];
                    a.copy_from_slice(c);
                    f64::from_le_bytes(a)
                })
                .collect()
        };
        let pn = npages * ncols;
        let en = next * ncols;
        let sn = seg * ncols;
        let mut at = 32;
        let mut take = |count: usize| {
            let v = read_f64s(at, count);
            at += count * 8;
            v
        };
        Ok(ZoneMap {
            ncols,
            nrows,
            format,
            mins: take(pn),
            maxs: take(pn),
            ext_mins: take(en),
            ext_maxs: take(en),
            seg_mins: take(sn),
            seg_maxs: take(sn),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_tracks_min_max_per_page() {
        let mut z = ZoneMap::new(2, 0);
        z.observe(1, &[1.0, -5.0]);
        z.observe(1, &[3.0, -1.0]);
        z.observe(2, &[10.0, 0.0]);
        assert_eq!(z.pages(), 2);
        assert_eq!(z.num_rows(), 3);
        let (mins, maxs) = z.page_bounds(1).unwrap();
        assert_eq!(mins, &[1.0, -5.0]);
        assert_eq!(maxs, &[3.0, -1.0]);
        let (mins, maxs) = z.page_bounds(2).unwrap();
        assert_eq!(mins, &[10.0, 0.0]);
        assert_eq!(maxs, &[10.0, 0.0]);
        assert!(z.page_bounds(0).is_none());
        assert!(z.page_bounds(3).is_none());
    }

    #[test]
    fn upper_levels_envelop_lower_levels() {
        let mut z = ZoneMap::new(1, 0);
        // Pages 1 and 64 fall in extent 0; page 65 starts extent 1.
        z.observe(1, &[5.0]);
        z.observe(64, &[-2.0]);
        z.observe(65, &[100.0]);
        assert_eq!(z.extents(), 2);
        assert_eq!(ZoneMap::extent_of(64), 0);
        assert_eq!(ZoneMap::extent_of(65), 1);
        assert_eq!(ZoneMap::extent_pages(1), 65..129);
        let (emin, emax) = z.extent_bounds(0).unwrap();
        assert_eq!((emin[0], emax[0]), (-2.0, 5.0));
        let (emin, emax) = z.extent_bounds(1).unwrap();
        assert_eq!((emin[0], emax[0]), (100.0, 100.0));
        let (smin, smax) = z.segment_bounds().unwrap();
        assert_eq!((smin[0], smax[0]), (-2.0, 100.0));
        // Every page entry is enveloped by its extent and the segment.
        for p in [1u32, 64, 65] {
            let (pmin, pmax) = z.page_bounds(p).unwrap();
            let (emin, emax) = z.extent_bounds(ZoneMap::extent_of(p)).unwrap();
            assert!(emin[0] <= pmin[0] && emax[0] >= pmax[0]);
            assert!(smin[0] <= pmin[0] && smax[0] >= pmax[0]);
        }
        assert!(z.extent_bounds(2).is_none());
        assert!(ZoneMap::new(1, 0).segment_bounds().is_none());
    }

    #[test]
    fn sidecar_roundtrip_and_staleness() {
        let dir = std::env::temp_dir().join(format!("segdiff-zones-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let heap = dir.join("t.tbl");
        let mut z = ZoneMap::new(3, 0);
        z.observe(1, &[1.0, 2.0, 3.0]);
        z.observe(2, &[-1.0, 0.0, 9.0]);
        z.observe(70, &[5.0, 5.0, 5.0]);
        z.save(&heap).unwrap();
        let loaded = ZoneMap::load(&heap, 3, 3, 0).expect("valid sidecar loads");
        assert_eq!(loaded.page_bounds(2), z.page_bounds(2));
        assert_eq!(loaded.extent_bounds(1), z.extent_bounds(1));
        assert_eq!(loaded.segment_bounds(), z.segment_bounds());
        assert_eq!(loaded.format(), 0);
        // Row-count mismatch (e.g. recovery truncation): discarded + deleted.
        assert!(ZoneMap::load(&heap, 3, 1, 0).is_none());
        assert!(
            !ZoneMap::sidecar_path(&heap).exists(),
            "stale sidecar must be deleted"
        );
        // Malformed bytes: rejected.
        std::fs::write(ZoneMap::sidecar_path(&heap), b"junk").unwrap();
        assert!(ZoneMap::load(&heap, 3, 2, 0).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_mismatch_discards_sidecar() {
        // The satellite regression: a sidecar built over one page format
        // must be treated exactly like a row-count mismatch when the heap
        // has been rewritten in the other format.
        let dir = std::env::temp_dir().join(format!("segdiff-zones-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let heap = dir.join("t.tbl");
        let mut z = ZoneMap::new(2, 0);
        z.observe(1, &[1.0, 2.0]);
        z.save(&heap).unwrap();
        assert!(ZoneMap::load(&heap, 2, 1, 1).is_none(), "format 0 != 1");
        assert!(
            !ZoneMap::sidecar_path(&heap).exists(),
            "stale-format sidecar must be deleted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_flat_sidecars_are_rejected() {
        let dir = std::env::temp_dir().join(format!("segdiff-zones-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let heap = dir.join("t.tbl");
        // A well-formed version-1 sidecar (old magic "SDZM", flat layout).
        let mut v1 = Vec::new();
        v1.extend_from_slice(&0x5344_5A4Du32.to_le_bytes());
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&1u64.to_le_bytes());
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&[0u8; 4]);
        v1.extend_from_slice(&1.0f64.to_le_bytes());
        v1.extend_from_slice(&1.0f64.to_le_bytes());
        std::fs::write(ZoneMap::sidecar_path(&heap), &v1).unwrap();
        assert!(ZoneMap::load(&heap, 1, 1, 0).is_none(), "v1 must not load");
        assert!(!ZoneMap::sidecar_path(&heap).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_sidecar_is_none() {
        let heap = std::env::temp_dir().join("segdiff-zones-missing.tbl");
        assert!(ZoneMap::load(&heap, 2, 0, 0).is_none());
    }
}
