//! Online feature extraction — Algorithm 1 of the paper.

use featurespace::{extract_boundary, extract_self_boundary, Boundary, SearchKind};
use segmentation::Segment;
use std::collections::VecDeque;

/// One extracted feature row, ready for storage: the ε-shifted boundary
/// corners plus the four absolute time stamps identifying the segment pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureRow {
    /// Drop or jump feature.
    pub kind: SearchKind,
    /// The 1–3 corner boundary (already ε-shifted).
    pub boundary: Boundary,
    /// Start of the earlier segment (truncated to the window if needed).
    pub t_d: f64,
    /// End of the earlier segment.
    pub t_c: f64,
    /// Start of the later segment.
    pub t_b: f64,
    /// End of the later segment.
    pub t_a: f64,
}

/// The online feature extractor (Algorithm 1).
///
/// Fed one data segment at a time (in temporal order, segments contiguous),
/// it pairs the new segment `AB` with every earlier segment `CD` whose
/// extent intersects the window `[t_B - w, t_A]` — truncating `CD` at the
/// window start when it protrudes — plus the degenerate *self pair* that
/// summarizes events inside `AB` itself. For every pair and both search
/// kinds, the case analysis of §4.3.1 yields at most one boundary row.
///
/// Both the segmentation process and this extractor are online: features
/// can be extracted as data is collected, so new data is searchable with
/// no delay (paper §4.3.2).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    epsilon: f64,
    window: f64,
    prev: VecDeque<Segment>,
    pairs_emitted: u64,
}

impl FeatureExtractor {
    /// Creates an extractor with tolerance `epsilon` and window `w` seconds.
    pub fn new(epsilon: f64, window: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive"
        );
        Self {
            epsilon,
            window,
            prev: VecDeque::new(),
            pairs_emitted: 0,
        }
    }

    /// Number of segment pairs considered so far (including self pairs).
    pub fn pairs_emitted(&self) -> u64 {
        self.pairs_emitted
    }

    /// Number of earlier segments currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.prev.len()
    }

    /// Re-installs an already-processed segment into the window *without*
    /// emitting feature rows. Used when resuming an index from disk: the
    /// stored segments whose extent can still pair with future segments are
    /// primed back in, so ingestion continues exactly where it left off.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of temporal order.
    pub fn prime_segment(&mut self, seg: Segment) {
        if let Some(last) = self.prev.back() {
            assert!(
                seg.t_start >= last.t_end,
                "segments must arrive in temporal order"
            );
        }
        self.prev.push_back(seg);
    }

    /// Processes the next data segment, appending feature rows to `out`.
    ///
    /// # Panics
    ///
    /// Panics if `ab` does not start at or after the end of the previous
    /// segment (the segmentation process emits contiguous segments).
    pub fn push_segment(&mut self, ab: Segment, out: &mut Vec<FeatureRow>) {
        if let Some(last) = self.prev.back() {
            assert!(
                ab.t_start >= last.t_end,
                "segments must arrive in temporal order"
            );
        }
        let win_start = ab.t_start - self.window;
        // Evict segments that no longer intersect the window.
        while let Some(front) = self.prev.front() {
            if front.t_end <= win_start {
                self.prev.pop_front();
            } else {
                break;
            }
        }
        // Cross pairs with every retained segment (truncated if needed).
        for cd in &self.prev {
            let cd_eff = match cd.truncate_left(win_start) {
                Some(s) => s,
                None => continue, // zero overlap after truncation
            };
            self.pairs_emitted += 1;
            for kind in [SearchKind::Drop, SearchKind::Jump] {
                if let Some(boundary) = extract_boundary(&cd_eff, &ab, self.epsilon, kind) {
                    out.push(FeatureRow {
                        kind,
                        boundary,
                        t_d: cd_eff.t_start,
                        t_c: cd_eff.t_end,
                        t_b: ab.t_start,
                        t_a: ab.t_end,
                    });
                }
            }
        }
        // The self pair: events inside `ab` itself.
        self.pairs_emitted += 1;
        for kind in [SearchKind::Drop, SearchKind::Jump] {
            if let Some(boundary) = extract_self_boundary(&ab, self.epsilon, kind) {
                out.push(FeatureRow {
                    kind,
                    boundary,
                    t_d: ab.t_start,
                    t_c: ab.t_end,
                    t_b: ab.t_start,
                    t_a: ab.t_end,
                });
            }
        }
        self.prev.push_back(ab);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_segments() -> impl Strategy<Value = Vec<Segment>> {
        // Contiguous random segments (shared endpoints).
        (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
            use rand::{rngs::StdRng, RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = 0.0;
            let mut v = 0.0;
            let mut segs = Vec::with_capacity(n);
            for _ in 0..n {
                let t2 = t + 1.0 + rng.random::<f64>() * 5000.0;
                let v2 = v + (rng.random::<f64>() - 0.5) * 10.0;
                segs.push(Segment::new(t, v, t2, v2));
                t = t2;
                v = v2;
            }
            segs
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Window invariants: every retained segment intersects the current
        /// window; every emitted row's pair lies inside it; corner dt never
        /// exceeds w plus the two segment lengths.
        #[test]
        fn window_invariants(segs in arb_segments(), w in 100.0f64..20_000.0, eps in 0.0f64..1.0) {
            let mut ex = FeatureExtractor::new(eps, w);
            let mut rows = Vec::new();
            for &s in &segs {
                rows.clear();
                ex.push_segment(s, &mut rows);
                let win_start = s.t_start - w;
                for r in &rows {
                    prop_assert!(r.t_d >= win_start - 1e-9, "pair start before window");
                    prop_assert!(r.t_a <= s.t_end + 1e-9);
                    prop_assert!(r.t_d <= r.t_c && r.t_c <= r.t_b || (r.t_d, r.t_c) == (r.t_b, r.t_a));
                    for p in r.boundary.corners() {
                        prop_assert!(p.dt >= 0.0);
                        prop_assert!(p.dt <= w + s.duration() + 1e-6, "dt {} beyond window", p.dt);
                    }
                }
            }
            // Retention: all buffered segments still intersect the last window.
            let last = segs.last().unwrap();
            prop_assert!(ex.window_len() >= 1);
            prop_assert!(ex.pairs_emitted() >= segs.len() as u64, "self pairs counted");
            let _ = last;
        }

        /// Rows are deterministic: extracting twice gives identical rows.
        #[test]
        fn extraction_is_deterministic(segs in arb_segments(), w in 100.0f64..20_000.0) {
            let run = || {
                let mut ex = FeatureExtractor::new(0.3, w);
                let mut all = Vec::new();
                for &s in &segs {
                    ex.push_segment(s, &mut all);
                }
                all
            };
            prop_assert_eq!(run(), run());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use featurespace::QueryRegion;

    fn extract_all(segments: &[Segment], eps: f64, w: f64) -> Vec<FeatureRow> {
        let mut ex = FeatureExtractor::new(eps, w);
        let mut out = Vec::new();
        for &s in segments {
            ex.push_segment(s, &mut out);
        }
        out
    }

    #[test]
    fn pairs_all_segments_within_window() {
        // Three 10-second contiguous segments, window easily spans all.
        let segs = [
            Segment::new(0.0, 0.0, 10.0, 5.0),
            Segment::new(10.0, 5.0, 20.0, 2.0),
            Segment::new(20.0, 2.0, 30.0, 4.0),
        ];
        let mut ex = FeatureExtractor::new(0.0, 100.0);
        let mut out = Vec::new();
        for &s in &segs {
            ex.push_segment(s, &mut out);
        }
        // Pairs: (s0 self), (s0,s1), (s1 self), (s0,s2), (s1,s2), (s2 self).
        assert_eq!(ex.pairs_emitted(), 6);
        assert_eq!(ex.window_len(), 3);
    }

    #[test]
    fn window_eviction_and_truncation() {
        let segs = [
            Segment::new(0.0, 0.0, 10.0, 1.0),
            Segment::new(10.0, 1.0, 20.0, 0.0),
            Segment::new(20.0, 0.0, 100.0, 3.0),
        ];
        // Window of 15 s: when the third segment (t_b = 20) arrives,
        // win_start = 5; the first segment (ends at 10) is retained but
        // truncated, the second fully retained.
        let rows = extract_all(&segs, 0.0, 15.0);
        let truncated: Vec<&FeatureRow> = rows
            .iter()
            .filter(|r| r.t_b == 20.0 && r.t_c == 10.0)
            .collect();
        assert!(!truncated.is_empty(), "pair with first segment exists");
        for r in truncated {
            assert_eq!(r.t_d, 5.0, "first segment truncated at win start");
        }
        // Now a fourth segment far in the future evicts everything.
        let mut ex = FeatureExtractor::new(0.0, 15.0);
        let mut out = Vec::new();
        for &s in &segs {
            ex.push_segment(s, &mut out);
        }
        ex.push_segment(Segment::new(1000.0, 0.0, 1010.0, 1.0), &mut out);
        assert_eq!(ex.window_len(), 1, "only the new segment remains");
    }

    #[test]
    fn self_rows_mark_same_segment() {
        let segs = [Segment::new(0.0, 10.0, 3600.0, 5.0)];
        let rows = extract_all(&segs, 0.0, 7200.0);
        // A falling segment yields a drop self row (and no jump row at eps 0).
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.kind, SearchKind::Drop);
        assert_eq!((r.t_d, r.t_c), (r.t_b, r.t_a));
        assert!(r.boundary.intersects(&QueryRegion::drop(3600.0, -3.0)));
    }

    #[test]
    fn epsilon_zero_prunes_aggressively() {
        // Monotone rise: the only drop rows that survive at eps = 0 are the
        // degenerate adjacent-pair corners at (0, 0) — the paper's prune is
        // `Δv - ε <= 0` — and none of them can match any real drop region.
        let segs = [
            Segment::new(0.0, 0.0, 10.0, 1.0),
            Segment::new(10.0, 1.0, 20.0, 3.0),
            Segment::new(20.0, 3.0, 30.0, 7.0),
        ];
        let rows = extract_all(&segs, 0.0, 100.0);
        assert!(rows.iter().any(|r| r.kind == SearchKind::Jump));
        let region = QueryRegion::drop(100.0, -0.5);
        for r in rows.iter().filter(|r| r.kind == SearchKind::Drop) {
            assert!(
                !r.boundary.intersects(&region),
                "a monotone rise produced a matchable drop row: {r:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "temporal order")]
    fn rejects_out_of_order_segments() {
        let mut ex = FeatureExtractor::new(0.0, 100.0);
        let mut out = Vec::new();
        ex.push_segment(Segment::new(10.0, 0.0, 20.0, 1.0), &mut out);
        ex.push_segment(Segment::new(5.0, 0.0, 9.0, 1.0), &mut out);
    }

    #[test]
    fn rows_carry_shifted_corners() {
        let segs = [
            Segment::new(0.0, 5.0, 10.0, 6.0),
            Segment::new(10.0, 6.0, 20.0, 2.0),
        ];
        let eps = 0.5;
        let rows = extract_all(&segs, eps, 100.0);
        let with_eps: Vec<_> = rows.iter().filter(|r| r.kind == SearchKind::Drop).collect();
        let plain = extract_all(&segs, 0.0, 100.0);
        let without: Vec<_> = plain
            .iter()
            .filter(|r| r.kind == SearchKind::Drop)
            .collect();
        // Any drop row present at eps 0 must exist shifted down at eps 0.5
        // for the same pair.
        for w in &without {
            let m = with_eps
                .iter()
                .find(|r| (r.t_b, r.t_c) == (w.t_b, w.t_c))
                .expect("pair survived");
            for (a, b) in m.boundary.corners().iter().zip(w.boundary.corners()) {
                assert!((a.dv - (b.dv - eps)).abs() < 1e-12);
            }
        }
    }
}
