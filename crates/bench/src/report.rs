//! Markdown report assembly for the `reproduce` binary.

use std::fmt::Write as _;
use std::path::Path;

/// Accumulates experiment output as markdown and mirrors it to stdout.
#[derive(Debug, Default)]
pub struct Report {
    buf: String,
}

impl Report {
    /// A fresh, empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section heading.
    pub fn heading(&mut self, text: &str) {
        println!("\n## {text}\n");
        let _ = writeln!(self.buf, "\n## {text}\n");
    }

    /// Appends a paragraph.
    pub fn para(&mut self, text: &str) {
        println!("{text}");
        let _ = writeln!(self.buf, "{text}");
    }

    /// Appends a markdown table: a header row and data rows.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                let _ = write!(line, " {c:>w$} |");
            }
            line
        };
        let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        for line in std::iter::once(fmt_row(&head))
            .chain(std::iter::once(fmt_row(&sep)))
            .chain(rows.iter().map(|r| fmt_row(r)))
        {
            println!("{line}");
            let _ = writeln!(self.buf, "{line}");
        }
    }

    /// Appends a telemetry section: counter deltas and span latency
    /// summaries collected while an experiment ran (see
    /// [`crate::harness::with_registry_delta`]).
    pub fn metrics(&mut self, title: &str, delta: &obs::MetricsSnapshot) {
        self.heading(title);
        if delta.counters.is_empty() && delta.histograms.is_empty() {
            self.para("(no metrics recorded)");
            return;
        }
        if !delta.counters.is_empty() {
            let rows: Vec<Vec<String>> = delta
                .counters
                .iter()
                .map(|(k, v)| vec![k.clone(), v.to_string()])
                .collect();
            self.table(&["counter", "delta"], &rows);
        }
        if !delta.histograms.is_empty() {
            self.para("");
            let rows: Vec<Vec<String>> = delta
                .histograms
                .iter()
                .map(|(k, h)| {
                    vec![
                        k.clone(),
                        h.count.to_string(),
                        ms(h.p50 as f64 / 1e9),
                        ms(h.p90 as f64 / 1e9),
                        ms(h.p99 as f64 / 1e9),
                        ms(h.max as f64 / 1e9),
                    ]
                })
                .collect();
            self.table(
                &["span", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"],
                &rows,
            );
        }
    }

    /// The accumulated markdown.
    pub fn markdown(&self) -> &str {
        &self.buf
    }

    /// Writes the accumulated markdown to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.buf)
    }
}

/// Formats a byte count as mebibytes with two decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Formats a ratio with two decimals.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut r = Report::new();
        r.heading("Demo");
        r.table(
            &["eps", "r"],
            &[
                vec!["0.1".into(), "4.73".into()],
                vec!["1.0".into(), "18.55".into()],
            ],
        );
        let md = r.markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 0.1 |"));
        assert!(md.contains("18.55"));
    }

    #[test]
    fn metrics_section_renders_counters_and_spans() {
        let reg = obs::MetricsRegistry::new();
        reg.counter("pool.hits").add(7);
        reg.histogram("span.query").record(2_000_000);
        let delta = reg.snapshot().delta(&obs::MetricsSnapshot::default());
        let mut r = Report::new();
        r.metrics("Telemetry", &delta);
        let md = r.markdown();
        assert!(md.contains("## Telemetry"));
        assert!(
            md.lines()
                .any(|l| l.contains("pool.hits") && l.contains('7')),
            "{md}"
        );
        assert!(md.contains("span.query"));

        let mut empty = Report::new();
        empty.metrics("Telemetry", &obs::MetricsSnapshot::default());
        assert!(empty.markdown().contains("(no metrics recorded)"));
    }

    #[test]
    fn formatters() {
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(ms(0.00123), "1.23");
        assert_eq!(ratio(10.0, 4.0), "2.50");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
