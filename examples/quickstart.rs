//! Quickstart: index a week of sensor data and search for drops.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use segdiff_repro::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("segdiff-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. Get data: a week of synthetic canyon temperatures (5-minute
    //    sampling), smoothed with robust weights like the paper's
    //    preprocessing step.
    let cfg = CadTransectConfig::default().with_days(7);
    let raw = generate_sensor(&cfg, 12, 42);
    let series = RobustSmoother::default().smooth(&raw);
    println!(
        "series: {} observations over {:.1} days, {:.1}..{:.1} degC",
        series.len(),
        (series.end_time().unwrap() - series.start_time().unwrap()) / DAY,
        series.min_value().unwrap(),
        series.max_value().unwrap()
    );

    // 2. Build the SegDiff index: epsilon = 0.2 degC, window w = 8 h.
    let mut index = SegDiffIndex::create(&dir, SegDiffConfig::default()).expect("create index");
    index.ingest_series(&series).expect("ingest");
    index.finish().expect("finish");
    let stats = index.stats();
    println!(
        "index: {} segments (compression r = {:.2}), {} feature rows, {} KiB features",
        stats.n_segments,
        stats.compression_rate(),
        stats.n_rows,
        stats.feature_payload_bytes / 1024
    );

    // 3. Search: the paper's canonical query — a drop of at least 3 degrees
    //    Celsius within one hour (a Cold Air Drainage event).
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let (results, qstats) = index.query(&region, QueryPlan::SeqScan).expect("query");
    println!(
        "query [drop >= 3 degC within 1 h]: {} periods in {:.1} ms ({} rows examined)",
        results.len(),
        qstats.wall_seconds * 1e3,
        qstats.rows_considered
    );
    for (i, p) in results.iter().take(10).enumerate() {
        println!(
            "  #{i}: drop starts in [{:5.1} h, {:5.1} h], ends in [{:5.1} h, {:5.1} h]{}",
            p.t_d / HOUR,
            p.t_c / HOUR,
            p.t_b / HOUR,
            p.t_a / HOUR,
            if p.is_self_pair() {
                "  (within one segment)"
            } else {
                ""
            }
        );
    }
    if results.len() > 10 {
        println!("  ... and {} more", results.len() - 10);
    }

    // 4. The guarantee: no true event is missed; every result contains an
    //    event within 2*epsilon of the threshold. Verify against brute force.
    let events = oracle::true_events(&series, &region);
    let missed = oracle::find_missed_event(&events, &results);
    println!(
        "oracle: {} true events among sampled pairs; missed by SegDiff: {:?}",
        events.len(),
        missed
    );
    assert!(missed.is_none(), "Theorem 1 violated!");

    std::fs::remove_dir_all(&dir).ok();
}
