//! Search results.

/// One search result: the time extents of the two data segments involved in
/// at least one matching event.
///
/// This is the paper's result tuple `((t_D, t_C), (t_B, t_A))`: the drop
/// (jump) *starts* somewhere in `[t_d, t_c]` and *ends* somewhere in
/// `[t_b, t_a]`. When the event lies within a single segment the two
/// intervals coincide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentPair {
    /// Start of the earlier segment (possibly truncated to the window).
    pub t_d: f64,
    /// End of the earlier segment.
    pub t_c: f64,
    /// Start of the later segment.
    pub t_b: f64,
    /// End of the later segment.
    pub t_a: f64,
}

impl SegmentPair {
    /// Whether the event pair `(t1, t2)` is covered by this result:
    /// `t1 ∈ [t_d, t_c]` and `t2 ∈ [t_b, t_a]`.
    pub fn covers(&self, t1: f64, t2: f64) -> bool {
        self.t_d <= t1 && t1 <= self.t_c && self.t_b <= t2 && t2 <= self.t_a
    }

    /// Whether this result refers to a single segment (a within-segment
    /// event).
    pub fn is_self_pair(&self) -> bool {
        self.t_d == self.t_b && self.t_c == self.t_a
    }

    /// A stable key for deduplication and sorting.
    pub(crate) fn key(&self) -> (u64, u64, u64, u64) {
        (
            self.t_d.to_bits(),
            self.t_c.to_bits(),
            self.t_b.to_bits(),
            self.t_a.to_bits(),
        )
    }
}

/// Per-sensor result lists keyed by global sensor id — the shape
/// shards produce and [`merge_sharded`] consumes.
pub type ShardResults = Vec<(u32, Vec<SegmentPair>)>;

/// Sorts by time and removes duplicates in place.
///
/// Public because this is the determinism contract distributed execution
/// relies on: every per-sensor result list is in this canonical order, so
/// a shard union only has to concatenate lists in sensor order to be
/// byte-identical to single-process execution ([`merge_sharded`]).
pub fn sort_dedup(results: &mut Vec<SegmentPair>) {
    results.sort_by(|a, b| {
        a.t_d
            .total_cmp(&b.t_d)
            .then(a.t_c.total_cmp(&b.t_c))
            .then(a.t_b.total_cmp(&b.t_b))
            .then(a.t_a.total_cmp(&b.t_a))
    });
    results.dedup_by_key(|p| p.key());
}

/// Merges per-sensor result lists gathered from shards into the exact
/// flat list a single process produces.
///
/// Each element is `(global sensor id, that sensor's results)` where the
/// per-sensor list is already in [`sort_dedup`] order (queries always
/// return it that way). The single-process transect fan-out flattens
/// per-sensor lists in ascending sensor order, so the distributed union
/// is lossless and deterministic: sort the parts by sensor id and
/// concatenate. Duplicate sensor ids are a routing bug; the later part
/// wins deterministically (stable sort, last occurrence kept) rather
/// than double-counting.
pub fn merge_sharded(mut parts: ShardResults) -> Vec<SegmentPair> {
    parts.sort_by_key(|(id, _)| *id);
    parts.dedup_by(|later, earlier| {
        if later.0 == earlier.0 {
            earlier.1 = std::mem::take(&mut later.1);
            true
        } else {
            false
        }
    });
    let total = parts.iter().map(|(_, r)| r.len()).sum();
    let mut merged = Vec::with_capacity(total);
    for (_, mut results) in parts {
        merged.append(&mut results);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(t: f64) -> SegmentPair {
        SegmentPair {
            t_d: t,
            t_c: t + 1.0,
            t_b: t + 2.0,
            t_a: t + 3.0,
        }
    }

    #[test]
    fn covers_inclusive() {
        let p = SegmentPair {
            t_d: 0.0,
            t_c: 10.0,
            t_b: 20.0,
            t_a: 30.0,
        };
        assert!(p.covers(0.0, 30.0));
        assert!(p.covers(10.0, 20.0));
        assert!(!p.covers(11.0, 25.0));
        assert!(!p.covers(5.0, 31.0));
    }

    #[test]
    fn self_pair_detection() {
        let s = SegmentPair {
            t_d: 5.0,
            t_c: 9.0,
            t_b: 5.0,
            t_a: 9.0,
        };
        assert!(s.is_self_pair());
        let c = SegmentPair {
            t_d: 0.0,
            t_c: 5.0,
            t_b: 5.0,
            t_a: 9.0,
        };
        assert!(!c.is_self_pair());
    }

    #[test]
    fn merge_sharded_orders_by_sensor_id() {
        // Parts arrive in arbitrary shard order; the merge is the
        // sensor-ascending concatenation.
        let parts = vec![
            (7u32, vec![pair(70.0)]),
            (0u32, vec![pair(0.0), pair(1.0)]),
            (3u32, vec![]),
            (4u32, vec![pair(40.0)]),
        ];
        let merged = merge_sharded(parts);
        assert_eq!(merged, vec![pair(0.0), pair(1.0), pair(40.0), pair(70.0)]);
    }

    #[test]
    fn merge_sharded_drops_duplicate_sensors() {
        let parts = vec![
            (2u32, vec![pair(1.0)]),
            (2u32, vec![pair(9.0)]),
            (5u32, vec![pair(5.0)]),
        ];
        let merged = merge_sharded(parts);
        assert_eq!(merged, vec![pair(9.0), pair(5.0)]);
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let a = SegmentPair {
            t_d: 0.0,
            t_c: 1.0,
            t_b: 2.0,
            t_a: 3.0,
        };
        let b = SegmentPair {
            t_d: 0.0,
            t_c: 1.0,
            t_b: 4.0,
            t_a: 5.0,
        };
        let mut v = vec![b, a, a, b, a];
        sort_dedup(&mut v);
        assert_eq!(v, vec![a, b]);
    }
}
