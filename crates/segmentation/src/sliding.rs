//! The paper's online sliding-window segmenter.

use crate::{PiecewiseLinear, Segment};
use sensorgen::TimeSeries;

/// Online sliding-window segmentation with linear interpolation
/// (paper §4.1; Keogh et al. 2001, §2.1).
///
/// Observations are pushed one at a time. The segmenter keeps the current
/// window of observations starting at an *anchor* and tries to extend the
/// chord from the anchor to the newest observation. As soon as some interior
/// observation deviates from the chord by more than `ε/2`, the segment
/// ending at the *previous* observation is emitted and the previous
/// observation becomes the new anchor — so consecutive segments share an
/// endpoint and the resulting approximation is continuous and exact at
/// segment boundaries.
///
/// ```
/// use segmentation::SlidingWindowSegmenter;
///
/// let mut seg = SlidingWindowSegmenter::new(0.5);
/// let mut out = Vec::new();
/// for (i, v) in [0.0, 1.0, 2.0, 1.0, 0.0, 0.0].iter().enumerate() {
///     out.extend(seg.push(i as f64, *v));
/// }
/// out.extend(seg.finish());
/// assert!(out.len() >= 2); // the ramp up and the ramp down
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowSegmenter {
    max_error: f64,
    // Window of buffered observations; index 0 is the anchor.
    buf_t: Vec<f64>,
    buf_v: Vec<f64>,
    emitted: u64,
}

impl SlidingWindowSegmenter {
    /// Creates a segmenter for the user error tolerance `ε >= 0`
    /// (Definition 2). The internal chord-fitting bound is `ε/2`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        Self {
            max_error: epsilon / 2.0,
            buf_t: Vec::with_capacity(64),
            buf_v: Vec::with_capacity(64),
            emitted: 0,
        }
    }

    /// The segment-fitting bound `ε/2`.
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// Number of segments emitted so far (not counting [`Self::finish`]).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Pushes the next observation; returns a completed segment when the
    /// window had to be closed.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not strictly increase.
    pub fn push(&mut self, t: f64, v: f64) -> Option<Segment> {
        assert!(t.is_finite() && v.is_finite(), "observation must be finite");
        if let Some(&last) = self.buf_t.last() {
            assert!(t > last, "time stamps must be strictly increasing");
        }
        if self.buf_t.len() < 2 {
            // The anchor alone, or anchor plus one point: a chord over two
            // points has no interior, so it always fits.
            self.buf_t.push(t);
            self.buf_v.push(v);
            return None;
        }
        if self.chord_fits(t, v) {
            self.buf_t.push(t);
            self.buf_v.push(v);
            return None;
        }
        // Close the segment at the previous observation, restart there.
        let n = self.buf_t.len();
        let seg = Segment::new(
            self.buf_t[0],
            self.buf_v[0],
            self.buf_t[n - 1],
            self.buf_v[n - 1],
        );
        let (at, av) = (self.buf_t[n - 1], self.buf_v[n - 1]);
        self.buf_t.clear();
        self.buf_v.clear();
        self.buf_t.extend([at, t]);
        self.buf_v.extend([av, v]);
        self.emitted += 1;
        Some(seg)
    }

    /// Flushes the final segment covering any buffered observations.
    ///
    /// After `finish` the segmenter is reset and can be reused.
    pub fn finish(&mut self) -> Option<Segment> {
        let n = self.buf_t.len();
        let seg = if n >= 2 {
            Some(Segment::new(
                self.buf_t[0],
                self.buf_v[0],
                self.buf_t[n - 1],
                self.buf_v[n - 1],
            ))
        } else {
            None
        };
        self.buf_t.clear();
        self.buf_v.clear();
        seg
    }

    /// Would the chord from the anchor to `(t, v)` keep all interior
    /// observations within `ε/2`?
    fn chord_fits(&self, t: f64, v: f64) -> bool {
        let (t0, v0) = (self.buf_t[0], self.buf_v[0]);
        let slope = (v - v0) / (t - t0);
        for i in 1..self.buf_t.len() {
            let fitted = v0 + slope * (self.buf_t[i] - t0);
            if (fitted - self.buf_v[i]).abs() > self.max_error {
                return false;
            }
        }
        true
    }
}

/// Segments a whole series at once, returning the continuous approximation.
///
/// Convenience wrapper over [`SlidingWindowSegmenter`] for offline use.
pub fn segment_series(series: &TimeSeries, epsilon: f64) -> PiecewiseLinear {
    let mut seg = SlidingWindowSegmenter::new(epsilon);
    let mut out = Vec::new();
    for (t, v) in series.iter() {
        out.extend(seg.push(t, v));
    }
    out.extend(seg.finish());
    PiecewiseLinear::from_segments(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_is_one_segment() {
        let series: TimeSeries = (0..1000)
            .map(|i| (i as f64, 3.0 + 0.25 * i as f64))
            .collect();
        let pla = segment_series(&series, 0.1);
        assert_eq!(pla.num_segments(), 1);
        assert_eq!(pla.max_abs_error(&series), 0.0);
    }

    #[test]
    fn error_bound_respected_on_noisy_data() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for &eps in &[0.1, 0.2, 0.4, 0.8, 1.0] {
            let series: TimeSeries = (0..2000)
                .map(|i| {
                    let t = i as f64 * 300.0;
                    (t, (t / 20_000.0).sin() * 6.0 + rng.random::<f64>() * 0.3)
                })
                .collect();
            let pla = segment_series(&series, eps);
            let err = pla.max_abs_error(&series);
            assert!(err <= eps / 2.0 + 1e-9, "eps {eps}: error {err}");
        }
    }

    #[test]
    fn segments_are_contiguous_and_cover_series() {
        let series: TimeSeries = (0..500)
            .map(|i| (i as f64 * 10.0, ((i as f64) / 7.0).sin() * 4.0))
            .collect();
        let pla = segment_series(&series, 0.2);
        let (start, end) = pla.time_extent().unwrap();
        assert_eq!(start, series.start_time().unwrap());
        assert_eq!(end, series.end_time().unwrap());
        for w in pla.segments().windows(2) {
            assert_eq!(w[0].t_end, w[1].t_start);
            assert_eq!(w[0].v_end, w[1].v_start);
        }
    }

    #[test]
    fn larger_epsilon_fewer_segments() {
        let series: TimeSeries = (0..3000)
            .map(|i| {
                (
                    i as f64,
                    ((i as f64) / 15.0).sin() * 5.0 + ((i as f64) / 111.0).cos(),
                )
            })
            .collect();
        let tight = segment_series(&series, 0.1).num_segments();
        let loose = segment_series(&series, 1.0).num_segments();
        assert!(loose < tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn online_matches_offline() {
        let series: TimeSeries = (0..800)
            .map(|i| (i as f64 * 5.0, ((i as f64) / 9.0).sin()))
            .collect();
        let offline = segment_series(&series, 0.3);
        let mut seg = SlidingWindowSegmenter::new(0.3);
        let mut online = Vec::new();
        for (t, v) in series.iter() {
            online.extend(seg.push(t, v));
        }
        online.extend(seg.finish());
        assert_eq!(offline.segments(), online.as_slice());
    }

    #[test]
    fn finish_resets_state() {
        let mut seg = SlidingWindowSegmenter::new(0.5);
        seg.push(0.0, 0.0);
        seg.push(1.0, 1.0);
        assert!(seg.finish().is_some());
        assert!(seg.finish().is_none());
        // Reusable afterwards, including time going "backwards" vs before.
        assert!(seg.push(0.0, 0.0).is_none());
    }

    #[test]
    fn single_point_yields_nothing() {
        let mut seg = SlidingWindowSegmenter::new(0.5);
        assert!(seg.push(0.0, 1.0).is_none());
        assert!(seg.finish().is_none());
    }

    #[test]
    fn zero_epsilon_connects_every_bend() {
        let series = TimeSeries::from_parts(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0, 1.0]);
        let pla = segment_series(&series, 0.0);
        assert_eq!(pla.num_segments(), 3);
        assert_eq!(pla.max_abs_error(&series), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_time() {
        let mut seg = SlidingWindowSegmenter::new(0.5);
        seg.push(1.0, 0.0);
        seg.push(1.0, 0.0);
    }

    #[test]
    fn emitted_counter_tracks_segments() {
        let series =
            TimeSeries::from_parts(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 5.0, 0.0, 5.0, 0.0]);
        let mut seg = SlidingWindowSegmenter::new(0.1);
        let mut count = 0;
        for (t, v) in series.iter() {
            if seg.push(t, v).is_some() {
                count += 1;
            }
        }
        assert_eq!(seg.emitted(), count);
        assert!(count >= 3);
    }
}
