#![warn(missing_docs)]

//! Piecewise-linear approximation (PLA) of time series.
//!
//! SegDiff (paper §4.1) builds on "the generic online sliding window
//! algorithm ... and linear interpolation is used for approximation"
//! (Keogh, Chu, Hart & Pazzani, ICDM 2001). This crate provides:
//!
//! * [`Segment`] — a line segment between two observations, the unit every
//!   other crate works with;
//! * [`PiecewiseLinear`] — a continuous chain of segments with evaluation
//!   and error metrics;
//! * [`SlidingWindowSegmenter`] — the paper's online segmenter: it consumes
//!   observations one at a time and emits a segment as soon as the error
//!   bound `ε/2` (Definition 2) would be violated;
//! * [`BottomUpSegmenter`] and [`SwabSegmenter`] — the classic offline and
//!   hybrid alternatives from the same survey, used for ablation studies.
//!
//! All segmenters guarantee **Lemma 1**: the emitted approximation `f`
//! satisfies `|f(t_i) - v_i| <= ε/2` at every sampled observation, and by
//! the lemma's argument at every point of the data generating model G.
//!
//! # Example
//!
//! ```
//! use segmentation::segment_series;
//! use sensorgen::TimeSeries;
//!
//! let series: TimeSeries = (0..100)
//!     .map(|i| (i as f64, (i as f64 / 10.0).sin()))
//!     .collect();
//! let pla = segment_series(&series, 0.2);
//! assert!(pla.max_abs_error(&series) <= 0.1); // epsilon / 2
//! assert!(pla.num_segments() < series.len());
//! ```

mod bottom_up;
mod pla;
mod segment;
mod sliding;
mod swab;
mod traits;

pub use bottom_up::BottomUpSegmenter;
pub use pla::PiecewiseLinear;
pub use segment::Segment;
pub use sliding::{segment_series, SlidingWindowSegmenter};
pub use swab::SwabSegmenter;
pub use traits::Segmenter;

// Property tests sample thousands of cases; under Miri's interpreter
// that is hours, not seconds, so they run natively only.
#[cfg(all(test, not(miri)))]
mod proptests {
    use crate::{segment_series, Segmenter};
    use proptest::prelude::*;
    use sensorgen::TimeSeries;

    fn arb_series() -> impl Strategy<Value = TimeSeries> {
        // Random walks with variable step sizes and irregular sampling.
        (2usize..200, any::<u64>()).prop_map(|(n, seed)| {
            use rand::{rngs::StdRng, RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = 0.0;
            let mut v = 0.0;
            let mut s = TimeSeries::with_capacity(n);
            for _ in 0..n {
                t += 1.0 + rng.random::<f64>() * 600.0;
                v += (rng.random::<f64>() - 0.5) * 4.0;
                s.push(t, v);
            }
            s
        })
    }

    proptest! {
        /// Lemma 1: the approximation never deviates more than eps/2 at any
        /// sampled observation, for any algorithm and tolerance.
        #[test]
        fn lemma1_holds(series in arb_series(), eps in 0.0f64..2.0) {
            for alg in Segmenter::all() {
                let pla = alg.segment(&series, eps);
                prop_assert!(pla.max_abs_error(&series) <= eps / 2.0 + 1e-9);
            }
        }

        /// The approximation is exact at every segment boundary, so the PLA
        /// passes through sampled observations at the knots.
        #[test]
        fn knots_are_samples(series in arb_series(), eps in 0.0f64..2.0) {
            let pla = segment_series(&series, eps);
            for seg in pla.segments() {
                let i = series.times().partition_point(|&t| t < seg.t_start);
                prop_assert_eq!(series.get(i), (seg.t_start, seg.v_start));
            }
        }

        /// Segment count never exceeds n-1 and the chain covers the extent.
        #[test]
        fn structure_invariants(series in arb_series(), eps in 0.0f64..2.0) {
            let pla = segment_series(&series, eps);
            prop_assert!(pla.num_segments() < series.len());
            prop_assert_eq!(
                pla.time_extent(),
                Some((series.start_time().unwrap(), series.end_time().unwrap()))
            );
        }
    }
}
