//! The individual lint rules. Each rule is a pure function over a
//! [`crate::context::FileCtx`] (plus shared config for L3/L4), so the
//! unit tests feed them fixture snippets directly.

pub mod discard;
pub mod locks;
pub mod names;
pub mod panics;
pub mod safety;
