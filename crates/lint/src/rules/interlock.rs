//! Rule L6: the partial order of `ci/lock-order.toml` holds across
//! intra-crate calls.
//!
//! L3 proves each function's *own* acquisitions are ordered; L6 closes
//! the composition gap: a helper that acquires `pool.shard` is fine in
//! isolation and its caller holding `wal` is fine in isolation, but the
//! composed path acquires `pool.shard` *under* `wal` — an inversion no
//! single-function pass can see. The check consumes the bounded-depth
//! summaries of [`crate::callgraph`]: at every call site where the
//! caller holds classified guards, every class the (resolved) callee
//! transitively acquires must rank at or above every held class, and a
//! non-reentrant held class must not be re-acquired at all.
//!
//! The diagnostic carries the whole chain — caller site, the call path
//! (`via a → b`), and the ultimate acquisition site — so the report
//! reads like a deadlock backtrace rather than a single line number.

use crate::callgraph::{Acquisition, CallGraph};
use crate::diag::{Diagnostic, Rule};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Runs L6 over the assembled graph. Diagnostics are unfiltered; the
/// caller applies the suppression index.
pub fn check(graph: &CallGraph) -> Vec<Diagnostic> {
    let summaries = graph.summaries();
    let mut out = Vec::new();
    // (file, line, held class, acquired class) — one report per
    // composed pair even when several guards or rounds repeat it.
    let mut seen: BTreeSet<(String, u32, String, String)> = BTreeSet::new();
    for f in &graph.fns {
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(target) = graph.resolve(f, call) else {
                continue;
            };
            let callee = &graph.fns[target];
            let summary: &BTreeMap<String, Acquisition> = &summaries[target];
            for (held_class, held_line) in &call.held {
                for acq in summary.values() {
                    let bad_order = held_class.rank > acq.class.rank;
                    let double = held_class.name == acq.class.name && !acq.class.reentrant;
                    if !(bad_order || double) {
                        continue;
                    }
                    let key = (
                        f.file.clone(),
                        call.line,
                        held_class.name.clone(),
                        acq.class.name.clone(),
                    );
                    if !seen.insert(key) {
                        continue;
                    }
                    let mut chain = vec![callee.name.clone()];
                    chain.extend(acq.via.iter().cloned());
                    let what = if bad_order {
                        format!(
                            "call to `{}` acquires `{}` (at {}:{}, via {}) while holding `{}` (acquired line {}) — declared order: {} before {}",
                            callee.name,
                            acq.class.name,
                            acq.file,
                            acq.line,
                            chain.join(" -> "),
                            held_class.name,
                            held_line,
                            acq.class.name,
                            held_class.name,
                        )
                    } else {
                        format!(
                            "call to `{}` re-acquires `{}` (at {}:{}, via {}) already held since line {} — composed self-deadlock",
                            callee.name,
                            acq.class.name,
                            acq.file,
                            acq.line,
                            chain.join(" -> "),
                            held_line,
                        )
                    };
                    out.push(Diagnostic {
                        rule: Rule::L6,
                        file: f.file.clone(),
                        line: call.line,
                        col: call.col,
                        message: what,
                        help: "hoist the inner acquisition above the caller's guard, pass the \
                               needed data in, or justify with `// lint: allow(L6) <reason>`"
                            .to_string(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::config::LockOrder;
    use crate::context::{FileCtx, SuppressionIndex};

    const ORDER: &str = r#"
order = ["shard", "wal"]

[[class]]
name = "shard"
paths = ["*.shards[]"]

[[class]]
name = "wal"
paths = ["*.inner"]
"#;

    fn run(src: &str) -> Vec<Diagnostic> {
        let order = LockOrder::parse(ORDER).unwrap();
        let ctx = FileCtx::new("crates/pagestore/src/buffer.rs", src);
        let mut graph = CallGraph::default();
        graph.add_file(&ctx, &order);
        let mut index = SuppressionIndex::default();
        index.add_file(&ctx);
        index.filter(check(&graph))
    }

    // The ISSUE's mandated shape: the helper acquires `shard` while its
    // caller already holds `wal` — neither function is wrong alone.
    const INVERTED: &str = r#"
impl Pool {
    fn commit(&self) {
        let mut wal = self.inner.lock();
        self.flush_dirty(&mut wal);
    }
    fn flush_dirty(&self, wal: &mut WalInner) {
        let mut shard = self.shards[si].lock();
        shard.clear();
    }
}
"#;

    #[test]
    fn helper_composed_inversion_fires_with_chain() {
        let d = run(INVERTED);
        assert_eq!(d.len(), 1);
        let m = &d[0].message;
        assert!(m.contains("call to `flush_dirty` acquires `shard`"), "{m}");
        assert!(m.contains("while holding `wal`"), "{m}");
        assert!(
            m.contains("crates/pagestore/src/buffer.rs:8"),
            "acquisition site in chain: {m}"
        );
        assert!(m.contains("via flush_dirty"), "{m}");
        assert_eq!(d[0].line, 5, "reported at the caller's call site");
    }

    #[test]
    fn two_level_chain_is_spelled_out() {
        let src = r#"
impl Pool {
    fn commit(&self) {
        let mut wal = self.inner.lock();
        self.outer_helper();
    }
    fn outer_helper(&self) {
        self.inner_helper();
    }
    fn inner_helper(&self) {
        let mut shard = self.shards[si].lock();
    }
}
"#;
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message.contains("via outer_helper -> inner_helper"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn legal_composition_passes() {
        // Caller holds shard (rank 0), helper acquires wal (rank 1):
        // that is the declared order.
        let src = r#"
impl Pool {
    fn flush(&self) {
        let mut shard = self.shards[si].lock();
        self.log(&mut shard);
    }
    fn log(&self, s: &mut Shard) {
        let mut wal = self.inner.lock();
    }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn composed_double_lock_fires() {
        let src = r#"
impl Pool {
    fn flush(&self) {
        let mut wal = self.inner.lock();
        self.sync_tail();
    }
    fn sync_tail(&self) {
        let mut wal = self.inner.lock();
    }
}
"#;
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message.contains("composed self-deadlock"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn unresolvable_call_is_silent() {
        // Two impls define `helper`: ambiguous, no edge, no finding.
        let src = r#"
impl Pool {
    fn commit(&self) {
        let mut wal = self.inner.lock();
        helper();
    }
}
impl A { fn helper(&self) { let s = self.shards[i].lock(); } }
impl B { fn helper(&self) {} }
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn suppression_honored_at_call_site() {
        let src = r#"
impl Pool {
    fn commit(&self) {
        let mut wal = self.inner.lock();
        self.flush_dirty(&mut wal); // lint: allow(L6) startup path, single-threaded
    }
    fn flush_dirty(&self, wal: &mut WalInner) {
        let mut shard = self.shards[si].lock();
    }
}
"#;
        assert!(run(src).is_empty());
    }
}
