//! A bounded multi-producer multi-consumer queue (`Mutex` + `Condvar`).
//!
//! The accept loop pushes connections with [`BoundedQueue::try_push`]
//! (never blocking: a full queue means the server is saturated, and the
//! caller sheds load with `503` instead of queueing unboundedly). Worker
//! threads block in [`BoundedQueue::pop`]. Closing the queue wakes every
//! worker; queued items are still drained before `pop` returns `None`,
//! which is exactly the graceful-shutdown semantics the server wants.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused; the item is handed back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue was closed.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between the acceptor and the workers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded to `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; refuses when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained. Items queued before `close` are still delivered.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue and wakes every blocked consumer.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        // The queued item is still delivered before the end-of-stream.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let q = Arc::new(BoundedQueue::new(64));
        let total = 4 * 500;
        let consumed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let mut item = t * 1000 + i;
                        // Spin on Full: the consumers below guarantee progress.
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(x)) => {
                                    item = x;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                });
            }
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            // Let producers finish, then close to release the consumers.
            while consumed.load(std::sync::atomic::Ordering::Relaxed) + q.len() < total {
                std::thread::yield_now();
            }
            q.close();
        });
        assert_eq!(consumed.load(std::sync::atomic::Ordering::Relaxed), total);
    }
}
