//! Shard health tracking and the primary→replica failover state.
//!
//! Per shard the board holds a tiny state machine:
//!
//! ```text
//!            probe ok                    probe fails, replica answers
//! Primary ◄──────────── (any state) ────────────────────────► Replica
//!    │                                                            │
//!    │ probe fails, no replica / replica fails                    │
//!    ▼                                                            ▼
//!  Down ◄─────────────────────────────────────────────────────────┘
//! ```
//!
//! A background thread re-probes every shard each interval, always
//! preferring the primary — so a recovered primary takes reads back
//! within one interval, and a killed primary degrades to its warm
//! replica within one interval. Request-time transport errors feed the
//! same transitions immediately via [`HealthBoard::report_failure`], so
//! failover does not wait out the probe interval.
//!
//! The board also caches what each shard last reported on `/healthz`
//! (sensor ids, epoch, WAL positions): the router uses the sensor sets
//! to answer "which sensors does a full-fanout query touch" and to name
//! `unavailable_sensors` in a structured 503.

use obs::json::Json;
use segdiff_server::loadgen::fetch;
use std::sync::Mutex;

/// One shard's endpoints as configured at router start.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The primary's `host:port`.
    pub primary: String,
    /// Optional warm replica `host:port`.
    pub replica: Option<String>,
}

/// Which endpoint currently serves a shard's reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The primary answers health checks.
    Primary,
    /// The primary is down; the warm replica serves reads.
    Replica,
    /// Neither endpoint answers; the shard's sensors are unavailable.
    Down,
}

impl ShardState {
    /// Stable label for `/healthz` and logs.
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Primary => "primary",
            ShardState::Replica => "replica",
            ShardState::Down => "down",
        }
    }
}

/// Mutable per-shard view the probe thread and request path share.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    pub state: ShardState,
    /// Sensor ids the shard last reported (kept across outages so a
    /// down shard's sensors can still be named in a 503).
    pub sensors: Vec<u32>,
    /// Store epoch from the last successful probe.
    pub epoch: u64,
    /// Primary durability high-water mark from the last probe.
    pub last_durable_lsn: u64,
    /// Replica apply high-water mark (0 when reads go to the primary).
    pub applied_lsn: u64,
}

/// What one successful `/healthz` probe yields. The reported `role`
/// string is surfaced by `/healthz` consumers but never trusted for
/// routing, so it is not carried here.
struct Probe {
    sensors: Vec<u32>,
    epoch: u64,
    last_durable_lsn: u64,
    applied_lsn: u64,
}

/// The shared health board.
pub struct HealthBoard {
    specs: Vec<ShardSpec>,
    states: Mutex<Vec<ShardHealth>>,
    probes: std::sync::Arc<obs::Counter>,
    failovers: std::sync::Arc<obs::Counter>,
}

impl HealthBoard {
    /// A board with every shard optimistically `Down` until the first
    /// probe round (run one synchronously before serving).
    pub fn new(specs: Vec<ShardSpec>) -> HealthBoard {
        let states = specs
            .iter()
            .map(|_| ShardHealth {
                state: ShardState::Down,
                sensors: Vec::new(),
                epoch: 0,
                last_durable_lsn: 0,
                applied_lsn: 0,
            })
            .collect();
        let registry = obs::global();
        HealthBoard {
            specs,
            states: Mutex::new(states),
            probes: registry.counter("router.health_probes"),
            failovers: registry.counter("router.failovers"),
        }
    }

    /// The configured shard endpoints.
    pub fn specs(&self) -> &[ShardSpec] {
        &self.specs
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.specs.len()
    }

    /// Current per-shard health, cloned out (the lock is never held
    /// across network I/O).
    pub fn snapshot(&self) -> Vec<ShardHealth> {
        match self.states.lock() {
            Ok(s) => s.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// The address reads for `shard` should go to right now, with the
    /// state that chose it; `None` while the shard is down.
    pub fn endpoint(&self, shard: usize) -> Option<(String, ShardState)> {
        let state = self.snapshot().get(shard)?.state;
        match state {
            ShardState::Primary => Some((self.specs[shard].primary.clone(), state)),
            ShardState::Replica => self.specs[shard].replica.clone().map(|r| (r, state)),
            ShardState::Down => None,
        }
    }

    /// Union of every shard's last-known sensors, sorted ascending.
    pub fn known_sensors(&self) -> Vec<u32> {
        let mut all: Vec<u32> = self
            .snapshot()
            .iter()
            .flat_map(|h| h.sensors.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Last-known sensors of one shard, sorted ascending.
    pub fn shard_sensors(&self, shard: usize) -> Vec<u32> {
        let mut sensors = self
            .snapshot()
            .get(shard)
            .map(|h| h.sensors.clone())
            .unwrap_or_default();
        sensors.sort_unstable();
        sensors
    }

    /// One probe round over every shard: primary first, replica as the
    /// fallback. Called by the health thread each interval and once
    /// synchronously before the router starts serving.
    pub fn probe_all(&self) {
        for shard in 0..self.specs.len() {
            self.probe_shard(shard);
        }
    }

    /// Probes one shard and applies the state transition.
    pub fn probe_shard(&self, shard: usize) {
        self.probes.inc();
        let spec = &self.specs[shard];
        let next = match probe(&spec.primary) {
            Some(p) => Some((ShardState::Primary, p)),
            None => spec
                .replica
                .as_deref()
                .and_then(probe)
                .map(|p| (ShardState::Replica, p)),
        };
        let mut states = match self.states.lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let health = &mut states[shard];
        match next {
            Some((state, p)) => {
                if health.state == ShardState::Primary && state == ShardState::Replica {
                    self.failovers.inc();
                    obs::warn!(
                        "shard {shard}: primary {} unreachable, failing over to replica",
                        spec.primary
                    );
                }
                if health.state == ShardState::Down {
                    obs::info!("shard {shard}: now serving from the {}", state.name());
                }
                health.state = state;
                health.sensors = p.sensors;
                health.epoch = p.epoch;
                health.last_durable_lsn = p.last_durable_lsn;
                health.applied_lsn = p.applied_lsn;
            }
            None => {
                if health.state != ShardState::Down {
                    obs::warn!("shard {shard}: no endpoint answers health checks");
                }
                health.state = ShardState::Down;
            }
        }
    }

    /// Request-path feedback: `endpoint` of `shard` failed a query just
    /// now. Re-probes immediately so failover happens at request speed
    /// rather than probe-interval speed; returns the new endpoint if
    /// one is available.
    pub fn report_failure(&self, shard: usize, endpoint: &str) -> Option<(String, ShardState)> {
        // Only demote if the failed endpoint is still the selected one;
        // a racing probe may already have moved the shard.
        let current = self.endpoint(shard);
        if current.as_ref().map(|(addr, _)| addr.as_str()) == Some(endpoint) {
            self.probe_shard(shard);
        }
        let next = self.endpoint(shard);
        if next.as_ref().map(|(addr, _)| addr.as_str()) == Some(endpoint) {
            // The probe still prefers the endpoint that just failed us
            // (e.g. it answers /healthz but resets queries); don't
            // retry in a loop.
            return None;
        }
        next
    }
}

/// One `GET /healthz` against `addr`; `None` on any transport, status,
/// or parse failure.
fn probe(addr: &str) -> Option<Probe> {
    let (status, body) = fetch(addr, "GET", "/healthz", None).ok()?;
    if status != 200 {
        return None;
    }
    let doc = Json::parse(&body).ok()?;
    let sensors = match doc.get("sensor_ids") {
        Some(Json::Array(items)) => items
            .iter()
            .filter_map(Json::as_u64)
            .filter(|&n| n <= u64::from(u32::MAX))
            .map(|n| n as u32)
            .collect(),
        _ => Vec::new(),
    };
    Some(Probe {
        sensors,
        epoch: doc.get("epoch").and_then(Json::as_u64).unwrap_or(0),
        last_durable_lsn: doc
            .get("last_durable_lsn")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        applied_lsn: doc.get("applied_lsn").and_then(Json::as_u64).unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ShardSpec> {
        vec![
            ShardSpec {
                // Unroutable per RFC 5737; probes fail fast or not at all
                // in tests, which never call probe_all.
                primary: "192.0.2.1:9".to_string(),
                replica: Some("192.0.2.2:9".to_string()),
            },
            ShardSpec {
                primary: "192.0.2.3:9".to_string(),
                replica: None,
            },
        ]
    }

    #[test]
    fn starts_down_until_probed() {
        let board = HealthBoard::new(specs());
        assert_eq!(board.num_shards(), 2);
        assert!(board.endpoint(0).is_none());
        assert!(board.known_sensors().is_empty());
        for h in board.snapshot() {
            assert_eq!(h.state, ShardState::Down);
        }
    }

    #[test]
    fn endpoint_follows_state() {
        let board = HealthBoard::new(specs());
        {
            let mut states = board.states.lock().expect("lock");
            states[0].state = ShardState::Primary;
            states[0].sensors = vec![3, 1];
            states[1].state = ShardState::Replica; // no replica configured
        }
        let (addr, state) = board.endpoint(0).expect("primary up");
        assert_eq!(addr, "192.0.2.1:9");
        assert_eq!(state, ShardState::Primary);
        // Replica state without a replica endpoint is effectively down.
        assert!(board.endpoint(1).is_none());
        assert_eq!(board.shard_sensors(0), vec![1, 3]);
        assert_eq!(board.known_sensors(), vec![1, 3]);

        let mut states = board.states.lock().expect("lock");
        states[0].state = ShardState::Replica;
        drop(states);
        let (addr, state) = board.endpoint(0).expect("replica up");
        assert_eq!(addr, "192.0.2.2:9");
        assert_eq!(state, ShardState::Replica);
    }
}
