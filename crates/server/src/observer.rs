//! Self-observation: the server watching its own telemetry.
//!
//! [`Observability`] bundles the three stores the observability routes
//! serve from: the metric time-series ring ([`SeriesStore`]), the
//! standing drop/jump alert engine ([`AlertEngine`]), and the
//! tail-sampling request-trace ring ([`TraceStore`]). [`Observer`] is
//! the background thread that animates the first two: every sampling
//! period it scrapes the global metrics registry into the series store
//! (counters become rates, histograms become interval quantiles,
//! gauges pass through) and then feeds the fresh points through the
//! paper's own segmentation + feature-extraction pipeline, so a latency
//! jump or throughput drop in the server is detected by exactly the
//! machinery the server exists to serve.

use obs::series::{SamplerState, SeriesStore, DEFAULT_SERIES_CAPACITY};
use obs::tracering::TraceStore;
use segdiff::alerts::{AlertEngine, AlertRuleSet, DEFAULT_ALERT_LOG_CAPACITY};
use segdiff::SubscriptionRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many finished requests the recent-trace ring retains.
pub const TRACE_RECENT_CAPACITY: usize = 256;

/// How many slow-or-erroring requests the tail-sampled ring retains.
/// Separate from the recent ring so a burst of fast requests cannot
/// evict the evidence of the slow ones.
pub const TRACE_SLOW_CAPACITY: usize = 64;

/// The shared observability state behind `GET /series`, `GET /alerts`
/// and `GET /debug/traces`. Cheap to clone handles out of; all three
/// stores are internally synchronized.
pub struct Observability {
    /// Sampled metric time series (`server.queries.rate`, `*.p50`, ...).
    pub series: Arc<SeriesStore>,
    /// Standing drop/jump rules evaluated over the series.
    pub alerts: Arc<AlertEngine>,
    /// Tail-sampling ring of recently finished requests.
    pub traces: Arc<TraceStore>,
    /// Standing-query registry behind `POST /subscribe` and
    /// `GET /notifications`; the observer thread publishes any staged
    /// notifications every tick as a fallback to the ingest-path flush.
    pub subs: Arc<SubscriptionRegistry>,
}

impl Observability {
    /// Builds the three stores with explicit capacities and rules.
    pub fn new(series_capacity: usize, rules: AlertRuleSet, slow_trace: Duration) -> Self {
        Observability {
            series: Arc::new(SeriesStore::new(series_capacity)),
            alerts: Arc::new(AlertEngine::new(rules, DEFAULT_ALERT_LOG_CAPACITY)),
            traces: Arc::new(TraceStore::new(
                TRACE_RECENT_CAPACITY,
                TRACE_SLOW_CAPACITY,
                slow_trace,
            )),
            subs: Arc::new(SubscriptionRegistry::default()),
        }
    }
}

impl Default for Observability {
    /// Default capacities with the built-in alert rules (mirrors
    /// `ci/alert-rules.toml`).
    fn default() -> Self {
        Observability::new(
            DEFAULT_SERIES_CAPACITY,
            AlertRuleSet::defaults(),
            Duration::from_millis(25),
        )
    }
}

/// The background sampler + alert-evaluation thread. One thread does
/// both jobs in lockstep: scrape the registry into the series store,
/// then run every standing rule over the points that arrived since the
/// last tick — so an alert fires at most one sampling period after the
/// offending samples land.
pub struct Observer {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Observer {
    /// Spawns the observer thread ticking every `period`.
    pub fn start(obsv: &Observability, period: Duration) -> Observer {
        let stop = Arc::new(AtomicBool::new(false));
        let series = Arc::clone(&obsv.series);
        let alerts = Arc::clone(&obsv.alerts);
        let subs = Arc::clone(&obsv.subs);
        let stop_flag = Arc::clone(&stop);
        let period = period.max(Duration::from_millis(10));
        let join = std::thread::Builder::new()
            .name("segdiff-observer".to_string())
            .spawn(move || {
                let mut sampler = SamplerState::new();
                while !stop_flag.load(Ordering::Acquire) {
                    let now = obs::unix_ms();
                    sampler.tick(obs::global(), &series, now);
                    // Publish any notifications staged since the last
                    // ingest-path flush, so a stalled ingest cannot hold
                    // matched features out of the cursors indefinitely.
                    subs.flush();
                    let fired = alerts.tick(&series, now);
                    for a in &fired {
                        obs::warn!(
                            "alert {}: {} {} at t={:.0}s (dv={:.2})",
                            a.rule,
                            a.metric,
                            a.kind.name(),
                            a.t_b,
                            a.dv
                        );
                    }
                    // Sleep in slices so stop() returns promptly even
                    // with a long sampling period.
                    let mut slept = Duration::ZERO;
                    while slept < period && !stop_flag.load(Ordering::Acquire) {
                        let slice = (period - slept).min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .ok();
        Observer { stop, join }
    }

    /// Stops the thread and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            j.join().unwrap_or_else(|_| {
                obs::warn!("observer thread panicked");
            });
        }
    }
}

impl Drop for Observer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            j.join().unwrap_or_else(|_| {
                obs::warn!("observer thread panicked");
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_samples_the_global_registry() {
        let obsv = Observability::default();
        obs::global().counter("server.queries").add(0); // ensure it exists
        let observer = Observer::start(&obsv, Duration::from_millis(20));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if obsv
                .series
                .names()
                .iter()
                .any(|n| n == "server.queries.rate")
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never scraped server.queries; names={:?}",
                obsv.series.names()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        observer.stop();
    }

    #[test]
    fn default_observability_carries_default_rules() {
        let obsv = Observability::default();
        let rules = obsv.alerts.rules();
        assert!(!rules.is_empty());
        assert!(rules.iter().any(|r| r.name == "query-latency-jump"));
        assert!(rules.iter().any(|r| r.name == "query-rate-drop"));
        assert!(obsv.alerts.alerts().is_empty());
    }
}
