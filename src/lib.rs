#![warn(missing_docs)]

//! # segdiff-repro
//!
//! A full reproduction of *"On the brink: Searching for drops in sensor
//! data"* (Chen, Cho & Hansen, EDBT 2008) as a Rust workspace. This facade
//! crate re-exports the public API of every member crate so examples and
//! downstream users can depend on a single package:
//!
//! * [`sensorgen`] — synthetic Cold-Air-Drainage transect workloads, the
//!   data generating model G, robust smoothing;
//! * [`segmentation`] — piecewise-linear approximation (online sliding
//!   window, bottom-up, SWAB);
//! * [`featurespace`] — parallelogram feature geometry, slope-case corner
//!   analysis, query regions;
//! * [`pagestore`] — the embedded page/B+tree storage engine;
//! * [`segdiff`] — the SegDiff framework and the exhaustive baseline;
//! * [`obs`] — metrics, span traces, and logging (zero dependencies).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-versus-measured record.

pub use featurespace;
pub use obs;
pub use pagestore;
pub use segdiff;
pub use segmentation;
pub use sensorgen;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use featurespace::{QueryRegion, SearchKind};
    pub use segdiff::{exh::ExhIndex, oracle, QueryPlan, SegDiffConfig, SegDiffIndex, SegmentPair};
    pub use segmentation::{segment_series, PiecewiseLinear, Segment, Segmenter};
    pub use sensorgen::{
        generate_sensor, generate_transect, smooth::RobustSmoother, CadTransectConfig, TimeSeries,
        DAY, HOUR, MINUTE, SAMPLE_PERIOD,
    };
}
