//! SWAB: Sliding Window And Bottom-up (Keogh et al. 2001, §4).

use crate::{BottomUpSegmenter, PiecewiseLinear, Segment};
use sensorgen::TimeSeries;

/// The SWAB hybrid: keeps a small buffer of recent observations, runs
/// bottom-up segmentation inside the buffer, emits the leftmost segment, and
/// slides on. Semi-online (latency bounded by the buffer length) with
/// near-bottom-up quality.
#[derive(Debug, Clone, Copy)]
pub struct SwabSegmenter {
    /// Number of observations kept in the working buffer.
    pub buffer_len: usize,
}

impl Default for SwabSegmenter {
    fn default() -> Self {
        Self { buffer_len: 128 }
    }
}

impl SwabSegmenter {
    /// Creates a SWAB segmenter with the given buffer length (min 8).
    pub fn new(buffer_len: usize) -> Self {
        Self {
            buffer_len: buffer_len.max(8),
        }
    }

    /// Segments `series` with user tolerance `ε` (chord bound `ε/2`).
    pub fn segment(&self, series: &TimeSeries, epsilon: f64) -> PiecewiseLinear {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        let n = series.len();
        if n < 2 {
            return PiecewiseLinear::default();
        }
        let ts = series.times();
        let vs = series.values();
        let cap = self.buffer_len.max(8);

        let mut out: Vec<Segment> = Vec::new();
        // `lo` is the index of the first buffered observation; the buffer is
        // ts[lo..hi]. Invariant: segments emitted so far cover ts[0..=lo].
        let mut lo = 0usize;
        loop {
            let hi = (lo + cap).min(n);
            let window = TimeSeries::from_parts(ts[lo..hi].to_vec(), vs[lo..hi].to_vec());
            let pla = BottomUpSegmenter.segment(&window, epsilon);
            if pla.is_empty() {
                break;
            }
            if hi == n {
                // Final window: flush everything.
                out.extend_from_slice(pla.segments());
                break;
            }
            // Emit only the leftmost segment, then restart the buffer at its
            // end point (classic SWAB).
            let first = pla.segments()[0];
            out.push(first);
            // Advance lo to the index of first.t_end within the full series.
            let step = window
                .times()
                .iter()
                .position(|&t| t == first.t_end)
                .expect("segment endpoint is a sample");
            debug_assert!(step > 0);
            lo += step;
        }
        PiecewiseLinear::from_segments(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_series(n: usize, seed: u64) -> TimeSeries {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let t = i as f64 * 300.0;
                (t, (t / 9000.0).sin() * 5.0 + rng.random::<f64>() * 0.4)
            })
            .collect()
    }

    #[test]
    fn respects_error_bound() {
        let s = noisy_series(1200, 31);
        for &eps in &[0.2, 0.8] {
            let pla = SwabSegmenter::default().segment(&s, eps);
            assert!(pla.max_abs_error(&s) <= eps / 2.0 + 1e-9);
        }
    }

    #[test]
    fn covers_extent_contiguously() {
        let s = noisy_series(999, 32);
        let pla = SwabSegmenter::new(64).segment(&s, 0.3);
        assert_eq!(
            pla.time_extent(),
            Some((s.start_time().unwrap(), s.end_time().unwrap()))
        );
        for w in pla.segments().windows(2) {
            assert_eq!(w[0].t_end, w[1].t_start);
        }
    }

    #[test]
    fn buffer_len_is_floored() {
        assert_eq!(SwabSegmenter::new(1).buffer_len, 8);
    }

    #[test]
    fn tiny_inputs() {
        let one: TimeSeries = [(0.0, 1.0)].into_iter().collect();
        assert!(SwabSegmenter::default().segment(&one, 0.2).is_empty());
    }

    #[test]
    fn comparable_to_bottom_up() {
        let s = noisy_series(2000, 33);
        let swab = SwabSegmenter::default().segment(&s, 0.4).num_segments();
        let bu = BottomUpSegmenter.segment(&s, 0.4).num_segments();
        assert!(
            (swab as f64) < 1.5 * bu as f64,
            "swab {swab} vs bottom-up {bu}"
        );
    }
}
