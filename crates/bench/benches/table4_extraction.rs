//! Table 4 counterpart: feature-extraction throughput (Algorithm 1 plus
//! the six-case corner analysis) across error tolerances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segdiff::FeatureExtractor;
use segdiff_bench::default_series;
use sensorgen::HOUR;
use std::hint::black_box;
use std::time::Duration;

fn bench_extraction(c: &mut Criterion) {
    let series = default_series(10, 1);
    let mut group = c.benchmark_group("table4/extract");
    group.sample_size(15);
    for eps in [0.1, 0.2, 0.4, 0.8, 1.0] {
        let pla = segmentation::segment_series(&series, eps);
        let segments = pla.segments().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                let mut ex = FeatureExtractor::new(eps, 8.0 * HOUR);
                let mut rows = Vec::new();
                for &s in &segments {
                    ex.push_segment(s, &mut rows);
                }
                black_box(rows.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_extraction
}
criterion_main!(benches);
