//! A lightweight Rust lexer: just enough token structure for the lint
//! rules, with exact line/column positions.
//!
//! Comments are kept as tokens (rules L0/L2 and the suppression parser
//! read them); string/char literals are single tokens so rule passes
//! never match keywords inside text; everything else is an identifier,
//! number, lifetime, or one-byte punctuation token. The lexer is
//! lossless enough that walking the token stream visits every
//! non-whitespace byte of the file exactly once.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// `ident`, keywords included; also `_`.
    Ident,
    /// Integer/float literal (suffixes included, loosely scanned).
    Num,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'a'`, `b'\n'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// `// …` (incl. `///`, `//!`), text up to but excluding newline.
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// Any other single byte (`.`, `(`, `{`, `!`, …).
    Punct(u8),
}

/// One token with its source span and position.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start`.
    pub col: u32,
}

impl Tok {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// For [`TokKind::Str`] tokens: the literal's content with simple
    /// escapes (`\\`, `\"`, `\n`, `\t`, `\r`, `\0`, `\'`) resolved.
    /// Unknown escapes are kept verbatim — good enough for comparing
    /// metric names, which never use exotic escapes.
    pub fn str_value(&self, src: &str) -> String {
        let t = self.text(src);
        // The prefix (b/r/br/rb + hashes) and suffix hashes contain no
        // quote, so the content is exactly between the outermost quotes.
        let (Some(open), Some(close)) = (t.find('"'), t.rfind('"')) else {
            return String::new();
        };
        let inner = if close > open {
            &t[open + 1..close]
        } else {
            ""
        };
        if t.starts_with('r') || t.starts_with("br") || t.starts_with("rb") {
            return inner.to_string();
        }
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some(e @ ('\\' | '"' | '\'')) => out.push(e),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes `src`. Never fails: unterminated literals run to EOF.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line/col.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.scan_one();
            out.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        out
    }

    /// Scans one token starting at the current position.
    fn scan_one(&mut self) -> TokKind {
        let b = self.peek(0);
        match b {
            b'/' if self.peek(1) == b'/' => {
                while self.pos < self.src.len() && self.peek(0) != b'\n' {
                    self.bump();
                }
                TokKind::LineComment
            }
            b'/' if self.peek(1) == b'*' => {
                self.bump_n(2);
                let mut depth = 1usize;
                while self.pos < self.src.len() && depth > 0 {
                    if self.peek(0) == b'/' && self.peek(1) == b'*' {
                        depth += 1;
                        self.bump_n(2);
                    } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                        depth -= 1;
                        self.bump_n(2);
                    } else {
                        self.bump();
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                self.scan_cooked_string();
                TokKind::Str
            }
            b'\'' => self.scan_quote(),
            b'0'..=b'9' => {
                self.scan_number();
                TokKind::Num
            }
            _ if is_ident_start(b) => self.scan_ident_or_prefixed(),
            other => {
                self.bump();
                TokKind::Punct(other)
            }
        }
    }

    /// `"…"` with backslash escapes.
    fn scan_cooked_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `r"…"`, `r#"…"#`, with any hash count.
    fn scan_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        debug_assert_eq!(self.peek(0), b'"');
        self.bump();
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let closed = (1..=hashes).all(|i| self.peek(i) == b'#');
                self.bump();
                if closed {
                    self.bump_n(hashes);
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// Char literal vs lifetime disambiguation after a `'`.
    fn scan_quote(&mut self) -> TokKind {
        // 'x' or '\…' is a char; 'ident (no closing quote) a lifetime.
        if self.peek(1) == b'\\' {
            self.bump_n(2); // ' and backslash
            self.bump(); // escaped byte (covers \' and \\)
                         // consume to closing quote (handles \u{…})
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            return TokKind::Char;
        }
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '
            while is_ident_cont(self.peek(0)) {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        // simple char like 'a' or punctuation char like '(' — scan to
        // the closing quote.
        self.bump();
        while self.pos < self.src.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        self.bump();
        TokKind::Char
    }

    /// Numbers, loosely: `0x1F`, `1_000`, `1.5e-3`, `42u64`, `1.0f32`.
    fn scan_number(&mut self) {
        while is_ident_cont(self.peek(0)) {
            self.bump();
        }
        // Fractional part — but not the `..` range operator.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while is_ident_cont(self.peek(0)) {
                self.bump();
            }
        }
        // Exponent sign (`1e-3` stops ident scan at `-`).
        if matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(0), b'+' | b'-')
            && self.peek(1).is_ascii_digit()
        {
            self.bump();
            while is_ident_cont(self.peek(0)) {
                self.bump();
            }
        }
    }

    /// Identifiers, including raw-string/byte-string prefixes and raw
    /// identifiers (`r#ident`).
    fn scan_ident_or_prefixed(&mut self) -> TokKind {
        let start = self.pos;
        while is_ident_cont(self.peek(0)) {
            self.bump();
        }
        let ident = &self.src[start..self.pos];
        match self.peek(0) {
            b'"' if matches!(ident, b"r" | b"b" | b"br" | b"rb") => {
                if ident.ends_with(b"r") || ident == b"rb" {
                    self.scan_raw_string();
                } else {
                    self.scan_cooked_string();
                }
                TokKind::Str
            }
            b'#' if matches!(ident, b"r" | b"br") && {
                // r#"…"# raw string vs r#ident raw identifier.
                let mut i = 1;
                while self.peek(i) == b'#' {
                    i += 1;
                }
                self.peek(i) == b'"'
            } =>
            {
                self.scan_raw_string();
                TokKind::Str
            }
            b'#' if ident == b"r" && is_ident_start(self.peek(1)) => {
                self.bump(); // #
                while is_ident_cont(self.peek(0)) {
                    self.bump();
                }
                TokKind::Ident
            }
            b'\'' if ident == b"b" => {
                self.scan_quote();
                TokKind::Char
            }
            _ => TokKind::Ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_stream() {
        let src = r#"fn main() { let x = 1.5; }"#;
        let toks = lex(src);
        assert_eq!(toks[0].text(src), "fn");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert!(toks.iter().any(|t| t.kind == TokKind::Num));
    }

    #[test]
    fn strings_hide_keywords() {
        let src = r#"let s = "panic! .unwrap() // not a comment";"#;
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "one string token"
        );
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "unwrap"));
        assert!(!toks.iter().any(|t| t.kind == TokKind::LineComment));
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = r##"let a = r#"with "quotes" and \ backslash"#; let b = b"bytes";"##;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].str_value(src), r#"with "quotes" and \ backslash"#);
    }

    #[test]
    fn str_value_resolves_escapes() {
        let src = r#""a\"b\\c\nd""#;
        let t = lex(src)[0];
        assert_eq!(t.kind, TokKind::Str);
        assert_eq!(t.str_value(src), "a\"b\\c\nd");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }";
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still outer */ fn";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[1].kind, TokKind::Ident);
    }

    #[test]
    fn line_comments_stop_at_newline() {
        let src = "// SAFETY: fine\nunsafe";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].text(src), "// SAFETY: fine");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("0..10"),
            vec![
                TokKind::Num,
                TokKind::Punct(b'.'),
                TokKind::Punct(b'.'),
                TokKind::Num
            ]
        );
        assert_eq!(kinds("1.5e-3f64"), vec![TokKind::Num]);
        assert_eq!(kinds("0xFF_u8"), vec![TokKind::Num]);
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = 1;";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokKind::Ident);
        assert_eq!(toks[1].text(src), "r#type");
    }

    #[test]
    fn format_string_token() {
        let src = r#"r.counter(&format!("{prefix}.hits"))"#;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.str_value(src), "{prefix}.hits");
    }
}
