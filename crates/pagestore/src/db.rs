//! The database facade: a directory of tables and indexes with a shared
//! buffer pool and a persistent catalog.

use crate::btree::BTree;
use crate::buffer::{BufferPool, PoolStats};
use crate::colpage::ColPageBuilder;
use crate::error::Result;
use crate::heap::{HeapFile, PageFormat, MAGIC as HEAP_MAGIC, PAGE_HDR};
use crate::page::{self, PageBuf};
use crate::pagefile::{FileId, PageFile};
use crate::recovery::{self, RecoveryReport};
use crate::table::Table;
use crate::wal::{sync_dir, CommitState, Wal, WAL_FILE};
use crate::StoreError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CATALOG: &str = "catalog.txt";

/// Reads the `SEGDIFF_SYNC` escape hatch: `0`/`false`/`off` disables
/// fsync discipline process-wide (tests and benches on throwaway data).
pub fn sync_from_env() -> bool {
    !matches!(
        std::env::var("SEGDIFF_SYNC").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// Durability configuration of a [`Database`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Write-ahead logging + commit points. Off by default so plain
    /// [`Database::create`] keeps its historical behaviour; the SegDiff
    /// index layer turns it on.
    pub wal: bool,
    /// Fsync discipline: when false, flushes stop at draining userspace
    /// buffers (crash-unsafe, but fast for tests/benches). Defaults to
    /// the `SEGDIFF_SYNC` environment hatch (on unless set to `0`).
    pub sync: bool,
    /// Group commit: dirty page images and one commit record are
    /// appended to the log (and fsynced, in sync mode) on every Nth
    /// [`Database::commit`]; the intermediate commits cost no I/O and
    /// are folded into the next batch, flush, or checkpoint. `1` makes
    /// every commit point immediately recoverable.
    pub group_commit: u64,
    /// Auto-checkpoint once the log outgrows this many bytes.
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            wal: false,
            sync: sync_from_env(),
            group_commit: 32,
            checkpoint_wal_bytes: 16 << 20,
        }
    }
}

impl DurabilityOptions {
    /// The fully durable configuration: WAL on, defaults elsewhere.
    pub fn durable() -> Self {
        Self {
            wal: true,
            ..Self::default()
        }
    }
}

/// Declares a table to be created: name plus column names.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (also the file stem on disk).
    pub name: String,
    /// Column names.
    pub cols: Vec<String>,
    /// Data-page format of the heap (raw fixed-width rows by default;
    /// the format is recorded in the heap meta page, not the catalog).
    pub format: PageFormat,
}

impl TableSpec {
    /// Builds a spec from string slices.
    pub fn new(name: &str, cols: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            cols: cols.iter().map(|c| c.to_string()).collect(),
            format: PageFormat::Raw,
        }
    }

    /// Stores the heap in compressed columnar pages.
    pub fn columnar(mut self) -> Self {
        self.format = PageFormat::Columnar;
        self
    }
}

/// A directory-backed database: catalog + shared buffer pool, with an
/// optional write-ahead log providing crash recovery to commit points.
pub struct Database {
    dir: PathBuf,
    pool: Arc<BufferPool>,
    tables: Mutex<HashMap<String, Arc<Table>>>,
    /// Catalog lines for persistence, in creation order.
    catalog: Mutex<Vec<String>>,
    opts: DurabilityOptions,
    wal: Option<Arc<Wal>>,
    /// The application blob of the last commit (re-logged by checkpoints).
    last_blob: Mutex<Vec<u8>>,
    /// Commits deferred since the last appended commit record (group
    /// commit batches both the page images and the record itself).
    pending_commits: Mutex<u64>,
    /// What recovery did when this handle was opened (None for `create`).
    recovery: Option<RecoveryReport>,
}

impl Database {
    /// Creates a fresh database in `dir` (created if missing; an existing
    /// catalog there is an error) with a pool of `pool_pages` pages and
    /// default durability (no WAL, fsync on flush).
    pub fn create(dir: &Path, pool_pages: usize) -> Result<Arc<Self>> {
        Self::create_with(dir, pool_pages, DurabilityOptions::default())
    }

    /// Creates a fresh database with explicit durability options. With
    /// `opts.wal`, the directory immediately holds a log whose initial
    /// checkpoint makes even the empty database recoverable.
    pub fn create_with(
        dir: &Path,
        pool_pages: usize,
        opts: DurabilityOptions,
    ) -> Result<Arc<Self>> {
        fs::create_dir_all(dir)?;
        let cat = dir.join(CATALOG);
        if cat.exists() {
            return Err(StoreError::AlreadyExists(format!(
                "database at {}",
                dir.display()
            )));
        }
        fs::write(&cat, "")?;
        let pool = Arc::new(BufferPool::new(pool_pages));
        pool.set_sync(opts.sync);
        let wal = if opts.wal {
            // Cadence 1: group commit batches at the Database level (see
            // [`Database::commit`]), so every appended record is already
            // a whole group.
            let wal = Arc::new(Wal::create(dir, &CommitState::default(), opts.sync, 1)?);
            pool.attach_wal(Arc::clone(&wal));
            Some(wal)
        } else {
            None
        };
        if opts.sync {
            sync_dir(dir)?;
        }
        Ok(Arc::new(Self {
            dir: dir.to_path_buf(),
            pool,
            tables: Mutex::new(HashMap::new()),
            catalog: Mutex::new(Vec::new()),
            opts,
            wal,
            last_blob: Mutex::new(Vec::new()),
            pending_commits: Mutex::new(0),
            recovery: None,
        }))
    }

    /// Opens an existing database with default durability options.
    ///
    /// If the directory holds a `wal.log`, crash recovery runs first and
    /// WAL mode stays on regardless of the options — a logged database
    /// cannot silently degrade to an unlogged one.
    pub fn open(dir: &Path, pool_pages: usize) -> Result<Arc<Self>> {
        Self::open_with(dir, pool_pages, DurabilityOptions::default())
    }

    /// Opens an existing database with explicit durability options; see
    /// [`Database::open`] for the recovery behaviour.
    pub fn open_with(dir: &Path, pool_pages: usize, opts: DurabilityOptions) -> Result<Arc<Self>> {
        let wal_exists = dir.join(WAL_FILE).exists();
        let report = if wal_exists {
            Some(recovery::recover(dir)?)
        } else {
            None
        };
        let wal_mode = wal_exists || opts.wal;

        let cat_path = dir.join(CATALOG);
        let text = fs::read_to_string(&cat_path)
            .map_err(|_| StoreError::NotFound(format!("database at {}", dir.display())))?;
        let mut db = Self {
            dir: dir.to_path_buf(),
            pool: Arc::new(BufferPool::new(pool_pages)),
            tables: Mutex::new(HashMap::new()),
            catalog: Mutex::new(Vec::new()),
            opts,
            wal: None,
            last_blob: Mutex::new(
                report
                    .as_ref()
                    .map(|r| r.committed.blob.clone())
                    .unwrap_or_default(),
            ),
            pending_commits: Mutex::new(0),
            recovery: report,
        };
        db.pool.set_sync(db.opts.sync);
        let mut rebuilt_indexes = false;
        for line in text.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["table", name, cols] => {
                    let cols: Vec<String> = cols.split(',').map(|s| s.to_string()).collect();
                    let path = db.table_path(name);
                    let wal_name = wal_mode.then(|| format!("{name}.tbl"));
                    let fid = db
                        .pool
                        .register_file_named(PageFile::open(&path)?, wal_name);
                    let heap = HeapFile::open(db.pool.clone(), fid)?;
                    if heap.ncols() != cols.len() {
                        return Err(StoreError::Corrupt(format!(
                            "table {name}: catalog says {} columns, heap has {}",
                            cols.len(),
                            heap.ncols()
                        )));
                    }
                    let table = Arc::new(Table::new(name.to_string(), cols, heap));
                    db.tables.lock().insert(name.to_string(), table);
                }
                ["index", tname, iname, cols] => {
                    let cols: Vec<usize> = cols
                        .split(',')
                        .map(|s| {
                            s.parse().map_err(|_| {
                                StoreError::Corrupt(format!("bad catalog column index: {line}"))
                            })
                        })
                        .collect::<Result<_>>()?;
                    let table = db.table(tname)?;
                    let path = db.index_path(tname, iname);
                    let tree = if BTree::file_is_valid(&path) {
                        let fid = db.pool.register_file(PageFile::open(&path)?);
                        BTree::open(db.pool.clone(), fid)?
                    } else {
                        // The file is missing (recovery dropped the
                        // unlogged B+tree) or torn (a crash caught the
                        // build before its pages were flushed); rebuild
                        // it from the recovered heap with the same
                        // deterministic bulk load that created it.
                        let fid = db.pool.register_file(PageFile::create(&path)?);
                        rebuilt_indexes = true;
                        db.bulk_build_tree(&table, fid, &cols)?
                    };
                    table.attach_index(iname.to_string(), cols, tree);
                }
                [] => {}
                _ => {
                    return Err(StoreError::Corrupt(format!("bad catalog line: {line}")));
                }
            }
            db.catalog.lock().push(line.to_string());
        }

        if wal_mode {
            // Cadence 1: group commit batches at the Database level, so
            // every record the log does see is already a whole group and
            // must be fsynced.
            let wal = if dir.join(WAL_FILE).exists() {
                Wal::open(dir, db.opts.sync, 1)?
            } else {
                // A legacy (unlogged) database upgraded in place: start
                // the log with a checkpoint of the current row counts.
                Wal::create(dir, &db.current_state(), db.opts.sync, 1)?
            };
            let wal = Arc::new(wal);
            db.pool.attach_wal(Arc::clone(&wal));
            db.wal = Some(wal);
        }

        let db = Arc::new(db);
        // After an unclean recovery (or an index rebuild), checkpoint:
        // the recovered state becomes durable in the data files and the
        // replayed log truncates back to a single checkpoint record.
        let unclean = db.recovery.as_ref().is_some_and(|r| !r.clean);
        if unclean || rebuilt_indexes {
            db.checkpoint()?;
        }
        Ok(db)
    }

    fn table_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.tbl"))
    }

    fn index_path(&self, table: &str, index: &str) -> PathBuf {
        self.dir.join(format!("{table}.{index}.idx"))
    }

    /// Atomic catalog rewrite: temp file + rename + directory fsync, so
    /// a crash mid-write leaves the old or the new catalog, never a mix.
    fn persist_catalog(&self) -> Result<()> {
        let text = self.catalog.lock().join("\n");
        let tmp = self.dir.join("catalog.txt.tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.dir.join(CATALOG))?;
        if self.opts.sync {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Creates a table; errors if it already exists.
    pub fn create_table(&self, spec: TableSpec) -> Result<Arc<Table>> {
        let mut tables = self.tables.lock();
        if tables.contains_key(&spec.name) {
            return Err(StoreError::AlreadyExists(format!("table {}", spec.name)));
        }
        let path = self.table_path(&spec.name);
        let wal_name = self.wal.is_some().then(|| format!("{}.tbl", spec.name));
        let fid = self
            .pool
            .register_file_named(PageFile::create(&path)?, wal_name);
        if self.opts.sync {
            sync_dir(&self.dir)?;
        }
        let heap = HeapFile::create(self.pool.clone(), fid, spec.cols.len(), spec.format)?;
        let table = Arc::new(Table::new(spec.name.clone(), spec.cols.clone(), heap));
        tables.insert(spec.name.clone(), table.clone());
        drop(tables);
        self.catalog
            .lock()
            .push(format!("table {} {}", spec.name, spec.cols.join(",")));
        self.persist_catalog()?;
        Ok(table)
    }

    /// Creates a B+tree index over the named columns, backfilling existing
    /// rows.
    pub fn create_index(&self, table_name: &str, index_name: &str, cols: &[&str]) -> Result<()> {
        let table = self.table(table_name)?;
        if table.index(index_name).is_ok() {
            return Err(StoreError::AlreadyExists(format!(
                "index {index_name} on {table_name}"
            )));
        }
        let col_idx: Vec<usize> = cols
            .iter()
            .map(|c| table.column_index(c))
            .collect::<Result<_>>()?;
        let path = self.index_path(table_name, index_name);
        let fid = self.pool.register_file(PageFile::create(&path)?);
        if self.opts.sync {
            sync_dir(&self.dir)?;
        }
        let tree = self.bulk_build_tree(&table, fid, &col_idx)?;
        // The tree's pages must reach disk before the catalog names it:
        // B+trees are unlogged, so a crash between the two would leave a
        // cataloged index whose file is still unwritten zeros.
        self.pool.flush_file(fid)?;
        table.attach_index(index_name.to_string(), col_idx.clone(), tree);
        let cols_text: Vec<String> = col_idx.iter().map(|c| c.to_string()).collect();
        self.catalog.lock().push(format!(
            "index {table_name} {index_name} {}",
            cols_text.join(",")
        ));
        self.persist_catalog()?;
        Ok(())
    }

    /// Rewrites a table's heap in the other data-page format, in place
    /// and crash-safely. Row *contents* are preserved bit-exactly; row
    /// ids change (columnar pages hold a variable number of rows), so
    /// every index is rebuilt, as is the zone-map sidecar.
    ///
    /// The protocol leans on machinery that already exists for crashes:
    ///
    /// 1. checkpoint, so no WAL image of the old pages can replay onto
    ///    the rewritten file;
    /// 2. stream the rows into `<name>.tbl.tmp` *outside* the buffer
    ///    pool, building the new hierarchical zone map along the way;
    /// 3. delete the index files — a missing/torn `.idx` is rebuilt by
    ///    [`Database::open`] from the heap, so a crash anywhere past
    ///    this point self-repairs;
    /// 4. rename the temp file over the heap and swap the pool's file
    ///    handle ([`BufferPool::swap_file`] discards the stale frames);
    /// 5. install the new zone map (a crash between 4 and here leaves
    ///    the *old-format* sidecar behind, which the next open discards
    ///    exactly like a row-count mismatch) and rebuild the indexes.
    pub fn rewrite_table_format(&self, name: &str, format: PageFormat) -> Result<()> {
        let table = self.table(name)?;
        if table.format() == format {
            return Ok(());
        }
        self.flush()?; // checkpoint in WAL mode: the log ends here

        // Stream every row into the temp file, meta page first.
        let path = self.table_path(name);
        let tmp = self.dir.join(format!("{name}.tbl.tmp"));
        let ncols = table.columns().len();
        let mut out = PageFile::create(&tmp)?;
        out.allocate()?; // meta page 0, filled in below
        let mut zones = crate::zonemap::ZoneMap::new(ncols, format.tag());
        let mut io_err: Option<StoreError> = None;
        let mut next_pid: u32 = 1;
        let mut pagebuf = PageBuf::zeroed();
        match format {
            PageFormat::Columnar => {
                let mut builder = ColPageBuilder::new(ncols);
                let mut seal =
                    |out: &mut PageFile, builder: &ColPageBuilder, pid: u32| -> Result<()> {
                        let got = out.allocate()?;
                        debug_assert_eq!(got, pid);
                        builder.seal_into(pagebuf.bytes_mut());
                        out.write_page(pid, pagebuf.bytes())?;
                        obs::global().counter("colpage.pages_written").inc();
                        Ok(())
                    };
                table.seq_scan(|_rid, row| {
                    if !builder.try_push(row) {
                        if let Err(e) = seal(&mut out, &builder, next_pid) {
                            io_err = Some(e);
                            return false;
                        }
                        next_pid += 1;
                        builder.clear();
                        assert!(builder.try_push(row), "a row must fit an empty page");
                    }
                    zones.observe(next_pid, row);
                    true
                })?;
                if io_err.is_none() && !builder.is_empty() {
                    io_err = seal(&mut out, &builder, next_pid).err();
                }
            }
            PageFormat::Raw => {
                let rows_per_page = (crate::PAGE_SIZE - PAGE_HDR) / (ncols * 8);
                let mut slot = 0usize;
                let flush =
                    |out: &mut PageFile, b: &mut PageBuf, pid: u32, n: usize| -> Result<()> {
                        let got = out.allocate()?;
                        debug_assert_eq!(got, pid);
                        page::put_u16(b.bytes_mut(), 0, n as u16);
                        out.write_page(pid, b.bytes())?;
                        *b = PageBuf::zeroed();
                        Ok(())
                    };
                table.seq_scan(|_rid, row| {
                    let off = PAGE_HDR + slot * ncols * 8;
                    for (i, &v) in row.iter().enumerate() {
                        page::put_f64(pagebuf.bytes_mut(), off + i * 8, v);
                    }
                    zones.observe(next_pid, row);
                    slot += 1;
                    if slot == rows_per_page {
                        if let Err(e) = flush(&mut out, &mut pagebuf, next_pid, slot) {
                            io_err = Some(e);
                            return false;
                        }
                        next_pid += 1;
                        slot = 0;
                    }
                    true
                })?;
                if io_err.is_none() && slot > 0 {
                    io_err = flush(&mut out, &mut pagebuf, next_pid, slot).err();
                }
            }
        }
        if let Some(e) = io_err {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        let nrows = zones.num_rows();
        debug_assert_eq!(nrows, table.num_rows());
        let mut meta = PageBuf::zeroed();
        page::put_u32(meta.bytes_mut(), 0, HEAP_MAGIC);
        page::put_u16(meta.bytes_mut(), 4, ncols as u16);
        page::put_u64(meta.bytes_mut(), 8, nrows);
        page::put_u16(meta.bytes_mut(), 16, format.tag());
        out.write_page(0, meta.bytes())?;
        if self.opts.sync {
            out.sync_all()?;
        }
        drop(out);

        // Point of no return: drop derived files, then the heap itself.
        for iname in table.index_names() {
            std::fs::remove_file(self.index_path(name, &iname)).ok();
        }
        fs::rename(&tmp, &path)?;
        if self.opts.sync {
            sync_dir(&self.dir)?;
        }
        let fid = table.heap_fid();
        self.pool.swap_file(fid, PageFile::open(&path)?);
        let mut heap = HeapFile::open(self.pool.clone(), fid)?;
        heap.install_zones(zones);
        heap.sync_meta()?; // persists the new-format sidecar
        table.replace_heap(heap);
        for idx in table.indexes() {
            let ipath = self.index_path(name, idx.name());
            let ifid = idx.tree_fid();
            self.pool.swap_file(ifid, PageFile::create(&ipath)?);
            let tree = self.bulk_build_tree(&table, ifid, idx.cols())?;
            self.pool.flush_file(ifid)?;
            idx.replace_tree(tree);
        }
        self.flush()?; // the rewritten state becomes the recovery point
        Ok(())
    }

    /// Bulk-loads a B+tree over `col_idx` from the table's current rows
    /// (sorted once, leaves written left to right). Deterministic for a
    /// given heap, which is what makes post-recovery index rebuilds
    /// byte-equivalent to the trees they replace.
    fn bulk_build_tree(&self, table: &Arc<Table>, fid: FileId, col_idx: &[usize]) -> Result<BTree> {
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::with_capacity(table.num_rows() as usize);
        {
            let mut key = crate::encode::KeyBuf::new();
            let mut colbuf = Vec::new();
            table.seq_scan(|rid, row| {
                colbuf.clear();
                colbuf.extend(col_idx.iter().map(|&c| row[c]));
                crate::encode::encode_key(&colbuf, rid, &mut key);
                entries.push((key.to_vec(), rid));
                true
            })?;
        }
        entries.sort();
        BTree::bulk_load(
            self.pool.clone(),
            fid,
            col_idx.len() * 8 + 8,
            entries.iter().map(|(k, v)| (k.as_slice(), *v)),
        )
    }

    /// The current per-table row counts plus the last commit blob — the
    /// state a commit or checkpoint record pins down. Tables are sorted
    /// by name so record bytes are deterministic.
    fn current_state(&self) -> CommitState {
        let mut tables: Vec<(String, u64)> = self
            .tables
            .lock()
            .values()
            .map(|t| (t.name().to_string(), t.num_rows()))
            .collect();
        tables.sort();
        CommitState {
            tables,
            blob: self.last_blob.lock().clone(),
        }
    }

    /// Commits: declares the current state (per-table row counts plus
    /// `blob`, opaque application metadata returned by recovery) an
    /// application-consistent point. On every `group_commit`-th call the
    /// dirty pages of logged files are appended to the WAL followed by
    /// one commit record, and the log is fsynced (in sync mode);
    /// intermediate commits cost no I/O and become recoverable at the
    /// next batch, flush, or checkpoint. An oversized log
    /// auto-checkpoints.
    ///
    /// Without a WAL this only retains `blob` in memory — durability
    /// then comes from [`Database::flush`] alone.
    pub fn commit(&self, blob: &[u8]) -> Result<()> {
        *self.last_blob.lock() = blob.to_vec();
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        {
            let mut pending = self.pending_commits.lock();
            *pending += 1;
            if *pending < self.opts.group_commit {
                return Ok(());
            }
            *pending = 0;
        }
        self.pool.log_dirty_pages()?;
        wal.append_commit(&self.current_state())?;
        if wal.size_bytes() > self.opts.checkpoint_wal_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Fuzzy checkpoint: flushes and fsyncs all data files, then
    /// atomically truncates the log to a single checkpoint record of the
    /// current state (which subsumes any commits still deferred by group
    /// commit). Replay after a crash restarts from here.
    pub fn checkpoint(&self) -> Result<()> {
        for t in self.tables.lock().values() {
            t.sync_meta()?;
        }
        self.pool.flush_all()?;
        if let Some(wal) = &self.wal {
            wal.checkpoint(&self.current_state())?;
        }
        *self.pending_commits.lock() = 0;
        Ok(())
    }

    /// The directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The write-ahead log, when this database runs with one.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// What recovery did when this handle was opened (None when opened
    /// without a log, or freshly created).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The durability options this database runs with.
    pub fn durability(&self) -> &DurabilityOptions {
        &self.opts
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.lock().keys().cloned().collect()
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Writes all metadata and dirty pages to disk, ending in `fsync`
    /// (unless the sync escape hatch is off). With a WAL this is a full
    /// checkpoint, so a clean shutdown leaves a checkpoint-only log.
    pub fn flush(&self) -> Result<()> {
        if self.wal.is_some() {
            return self.checkpoint();
        }
        for t in self.tables.lock().values() {
            t.sync_meta()?;
        }
        self.pool.flush_all()
    }

    /// Flushes and then empties the buffer pool — the next query starts
    /// cold, like the paper's "operating system cache is flushed before
    /// every query" runs.
    pub fn clear_cache(&self) -> Result<()> {
        for t in self.tables.lock().values() {
            t.sync_meta()?;
        }
        self.pool.clear_cache()
    }

    /// Buffer-pool counters.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Total bytes on disk across all heaps and indexes.
    pub fn total_size_bytes(&self) -> u64 {
        self.tables
            .lock()
            .values()
            .map(|t| t.heap_bytes() + t.index_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagestore-db-{}-{name}", std::process::id()))
    }

    #[test]
    fn create_insert_query() {
        let dir = tmpdir("basic");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 128).unwrap();
        let t = db
            .create_table(TableSpec::new("ev", &["dt", "dv"]))
            .unwrap();
        for i in 0..100 {
            t.insert(&[i as f64, -(i as f64)]).unwrap();
        }
        db.create_index("ev", "by_dt", &["dt"]).unwrap();
        let mut hits = 0;
        t.index_scan("by_dt", &[10.0], &[19.0], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_full_database() {
        let dir = tmpdir("reopen");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create(&dir, 128).unwrap();
            let t = db
                .create_table(TableSpec::new("ev", &["a", "b", "c"]))
                .unwrap();
            db.create_index("ev", "by_ab", &["a", "b"]).unwrap();
            for i in 0..1000 {
                t.insert(&[(i % 10) as f64, i as f64, 3.0]).unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open(&dir, 128).unwrap();
        let t = db.table("ev").unwrap();
        assert_eq!(t.num_rows(), 1000);
        let mut hits = 0;
        t.index_scan(
            "by_ab",
            &[3.0, f64::NEG_INFINITY],
            &[3.0, f64::INFINITY],
            |_, cols| {
                assert_eq!(cols[0], 3.0);
                hits += 1;
                true
            },
        )
        .unwrap();
        assert_eq!(hits, 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_objects_rejected() {
        let dir = tmpdir("dup");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 64).unwrap();
        db.create_table(TableSpec::new("t", &["x"])).unwrap();
        assert!(db.create_table(TableSpec::new("t", &["x"])).is_err());
        db.create_index("t", "i", &["x"]).unwrap();
        assert!(db.create_index("t", "i", &["x"]).is_err());
        assert!(db.create_index("nope", "i", &["x"]).is_err());
        assert!(Database::create(&dir, 64).is_err(), "existing catalog");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_cache_counts_physical_reads() {
        let dir = tmpdir("cold");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 256).unwrap();
        let t = db.create_table(TableSpec::new("big", &["x", "y"])).unwrap();
        for i in 0..50_000 {
            t.insert(&[i as f64, 2.0 * i as f64]).unwrap();
        }
        // Warm scan.
        let before = db.stats();
        let mut n = 0u64;
        t.seq_scan(|_, _| {
            n += 1;
            true
        })
        .unwrap();
        let warm = db.stats().since(&before);
        assert_eq!(n, 50_000);
        // Cold scan.
        db.clear_cache().unwrap();
        let before = db.stats();
        t.seq_scan(|_, _| true).unwrap();
        let cold = db.stats().since(&before);
        assert!(cold.physical_reads > 0);
        assert!(
            cold.physical_reads > warm.physical_reads,
            "cold {} vs warm {}",
            cold.physical_reads,
            warm.physical_reads
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// WAL on, every commit point immediately recoverable (no group
    /// commit deferral) — what the per-commit recovery tests need.
    fn durable_every_commit() -> DurabilityOptions {
        DurabilityOptions {
            group_commit: 1,
            ..DurabilityOptions::durable()
        }
    }

    #[test]
    fn wal_recovers_to_last_commit() {
        let dir = tmpdir("walcommit");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create_with(&dir, 128, durable_every_commit()).unwrap();
            let t = db.create_table(TableSpec::new("ev", &["a", "b"])).unwrap();
            for i in 0..1000 {
                t.insert(&[i as f64, -(i as f64)]).unwrap();
            }
            db.commit(b"state-at-1000").unwrap();
            // Uncommitted tail: must vanish on recovery.
            for i in 1000..1400 {
                t.insert(&[i as f64, 0.0]).unwrap();
            }
            // Dropped without flush: a simulated crash.
        }
        let db = Database::open(&dir, 128).unwrap();
        let report = db.recovery_report().expect("recovery ran").clone();
        assert!(!report.clean, "crash must be detected");
        assert_eq!(report.committed.blob, b"state-at-1000");
        let t = db.table("ev").unwrap();
        assert_eq!(t.num_rows(), 1000, "uncommitted rows truncated");
        let mut n = 0u64;
        t.seq_scan(|_, row| {
            assert_eq!(row[1], -row[0]);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 1000);
        // The post-recovery checkpoint leaves a clean log.
        drop(db);
        let db = Database::open(&dir, 128).unwrap();
        assert!(db.recovery_report().unwrap().clean);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_rebuilds_dropped_btrees() {
        let dir = tmpdir("walidx");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create_with(&dir, 128, durable_every_commit()).unwrap();
            let t = db.create_table(TableSpec::new("ev", &["x"])).unwrap();
            for i in 0..500 {
                t.insert(&[i as f64]).unwrap();
            }
            db.create_index("ev", "by_x", &["x"]).unwrap();
            db.commit(&[]).unwrap();
            db.flush().unwrap();
            // More rows after the checkpoint, committed but not flushed.
            for i in 500..800 {
                t.insert(&[i as f64]).unwrap();
            }
            db.commit(&[]).unwrap();
        }
        let db = Database::open(&dir, 128).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(!report.clean);
        assert!(report.dropped_indexes >= 1, "stale B+tree dropped");
        let t = db.table("ev").unwrap();
        assert_eq!(t.num_rows(), 800);
        let mut hits = 0;
        t.index_scan("by_x", &[600.0], &[699.0], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 100, "rebuilt index sees recovered rows");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_index_file_is_rebuilt_on_open() {
        let dir = tmpdir("tornidx");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create(&dir, 128).unwrap();
            let t = db.create_table(TableSpec::new("ev", &["x"])).unwrap();
            for i in 0..300 {
                t.insert(&[i as f64]).unwrap();
            }
            db.create_index("ev", "by_x", &["x"]).unwrap();
            db.commit(&[]).unwrap();
            db.flush().unwrap();
        }
        // Simulate a SIGKILL that caught `create_index` after the catalog
        // named the tree but before its cached pages were flushed: the
        // file exists at full size but holds only the zeros `allocate`
        // wrote. The log is clean, so WAL recovery won't repair this —
        // open itself has to notice and rebuild.
        let idx = dir.join("ev.by_x.idx");
        let len = std::fs::metadata(&idx).unwrap().len();
        std::fs::write(&idx, vec![0u8; len as usize]).unwrap();
        let db = Database::open(&dir, 128).unwrap();
        let t = db.table("ev").unwrap();
        let mut hits = 0;
        t.index_scan("by_x", &[100.0], &[199.0], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 100, "torn index rebuilt from the heap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_table_is_pruned_on_recovery() {
        let dir = tmpdir("walprune");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create_with(&dir, 128, durable_every_commit()).unwrap();
            let t = db.create_table(TableSpec::new("keep", &["x"])).unwrap();
            t.insert(&[1.0]).unwrap();
            db.commit(&[]).unwrap();
            let t2 = db.create_table(TableSpec::new("gone", &["y"])).unwrap();
            t2.insert(&[2.0]).unwrap();
            // Crash before the next commit.
        }
        let db = Database::open(&dir, 128).unwrap();
        assert!(db.table("keep").is_ok());
        assert!(db.table("gone").is_err(), "uncommitted table pruned");
        assert_eq!(
            db.recovery_report().unwrap().pruned_tables,
            vec!["gone".to_string()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_shutdown_leaves_checkpoint_only_log() {
        let dir = tmpdir("walclean");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create_with(&dir, 128, DurabilityOptions::durable()).unwrap();
            let t = db.create_table(TableSpec::new("t", &["x"])).unwrap();
            for i in 0..100 {
                t.insert(&[i as f64]).unwrap();
            }
            db.commit(b"blob").unwrap();
            db.flush().unwrap();
        }
        let db = Database::open(&dir, 128).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(report.clean);
        assert_eq!(report.replayed_pages, 0);
        assert_eq!(report.committed.blob, b"blob");
        assert_eq!(db.table("t").unwrap().num_rows(), 100);
        assert!(db.wal().is_some(), "wal mode persists across reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_wal_appends() {
        let dir = tmpdir("walgroup");
        std::fs::remove_dir_all(&dir).ok();
        {
            let opts = DurabilityOptions {
                group_commit: 4,
                ..DurabilityOptions::durable()
            };
            let db = Database::create_with(&dir, 128, opts).unwrap();
            let t = db.create_table(TableSpec::new("t", &["x"])).unwrap();
            // flush() checkpoints, so the created table itself is durable
            // and the deferral counter starts at zero.
            db.commit(b"c0").unwrap();
            db.flush().unwrap();
            // Three deferred commits, then the fourth forces the batch.
            for (i, blob) in [b"c1", b"c2", b"c3", b"c4"].iter().enumerate() {
                t.insert(&[i as f64]).unwrap();
                db.commit(*blob).unwrap();
            }
            // A deferred tail past the batch boundary: lost on crash.
            t.insert(&[9.0]).unwrap();
            db.commit(b"c5").unwrap();
            // Crash: dropped without flush.
        }
        let db = Database::open(&dir, 128).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(!report.clean);
        assert_eq!(
            report.committed.blob, b"c4",
            "recovery lands on the last appended batch, not the deferred tail"
        );
        assert_eq!(db.table("t").unwrap().num_rows(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_format_preserves_rows_and_indexes() {
        let dir = tmpdir("rewrite");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create_with(&dir, 128, durable_every_commit()).unwrap();
        let t = db
            .create_table(TableSpec::new("ev", &["dt", "dv", "t"]))
            .unwrap();
        for i in 0..3000 {
            // Timestamp-like columns compress; dv carries full precision.
            t.insert(&[
                300.0 * (i % 50) as f64,
                -(i as f64) * 1e-3,
                300.0 * i as f64,
            ])
            .unwrap();
        }
        db.create_index("ev", "by_dt", &["dt"]).unwrap();
        db.commit(b"pre-rewrite").unwrap();
        let mut before: Vec<Vec<f64>> = Vec::new();
        t.seq_scan(|_, row| {
            before.push(row.to_vec());
            true
        })
        .unwrap();
        let heap_before = t.heap_bytes();

        db.rewrite_table_format("ev", PageFormat::Columnar).unwrap();
        assert_eq!(t.format(), PageFormat::Columnar);
        assert!(t.has_zones(), "rewrite installs a fresh zone map");
        assert!(
            t.heap_bytes() < heap_before,
            "columnar heap must shrink ({} -> {})",
            heap_before,
            t.heap_bytes()
        );
        let mut after: Vec<Vec<f64>> = Vec::new();
        t.seq_scan(|_, row| {
            after.push(row.to_vec());
            true
        })
        .unwrap();
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            for (x, y) in b.iter().zip(a) {
                assert_eq!(x.to_bits(), y.to_bits(), "rows must be bit-identical");
            }
        }
        // The rebuilt index answers the same query, and fetches resolve
        // against the new row ids.
        let mut hits = 0;
        let mut row = Vec::new();
        t.index_scan("by_dt", &[3000.0], &[3000.0], |rid, cols| {
            t.fetch(rid, &mut row).unwrap();
            assert_eq!(row[0], cols[0]);
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 60);
        // Inserts keep working after the swap, and the whole thing
        // survives a clean reopen.
        t.insert(&[0.0, 0.0, 1e9]).unwrap();
        db.commit(b"post-rewrite").unwrap();
        db.flush().unwrap();
        drop((t, db));
        let db = Database::open(&dir, 128).unwrap();
        let t = db.table("ev").unwrap();
        assert_eq!(t.format(), PageFormat::Columnar);
        assert_eq!(t.num_rows(), 3001);
        assert!(t.has_zones(), "sidecar valid across reopen");
        // Round-trip back to raw: same rows again.
        db.rewrite_table_format("ev", PageFormat::Raw).unwrap();
        assert_eq!(t.format(), PageFormat::Raw);
        assert_eq!(t.num_rows(), 3001);
        let mut n = 0;
        t.seq_scan(|_, row| {
            if n < before.len() {
                assert_eq!(row[1].to_bits(), before[n][1].to_bits());
            }
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 3001);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_format_sidecar_is_discarded_after_crashed_rewrite() {
        // Satellite regression, end to end: a crash between the heap
        // rename and the sidecar save leaves the *old-format* sidecar
        // next to the rewritten heap. Reopening must discard it like a
        // row-count mismatch and rebuild on ensure_zones.
        let dir = tmpdir("stalefmt");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create(&dir, 128).unwrap();
            let t = db.create_table(TableSpec::new("ev", &["a", "b"])).unwrap();
            // Enough rows that even the compressed heap spans many pages
            // (columnar pages hold thousands of these dense rows each).
            for i in 0..20_000 {
                t.insert(&[i as f64, 300.0 * i as f64]).unwrap();
            }
            db.flush().unwrap();
            let sidecar = dir.join("ev.tbl.zones");
            let old = std::fs::read(&sidecar).unwrap();
            db.rewrite_table_format("ev", PageFormat::Columnar).unwrap();
            // Simulate the crash window: old sidecar back in place.
            std::fs::write(&sidecar, old).unwrap();
        }
        let db = Database::open(&dir, 128).unwrap();
        let t = db.table("ev").unwrap();
        assert_eq!(t.format(), PageFormat::Columnar);
        assert!(
            !t.has_zones(),
            "old-format sidecar must be discarded on open"
        );
        assert!(
            !dir.join("ev.tbl.zones").exists(),
            "stale sidecar deleted from disk"
        );
        t.ensure_zones().unwrap();
        assert!(t.has_zones());
        // Pruned scan over the rebuilt hierarchy matches ground truth.
        let mut pruned = 0u64;
        let stats = t
            .scan_blocks(
                |mins, _| mins[0] < 100.0,
                |block, n| {
                    for r in 0..n {
                        if block[r * 2] < 100.0 {
                            pruned += 1;
                        }
                    }
                    true
                },
            )
            .unwrap();
        assert_eq!(pruned, 100);
        assert!(stats.pages_pruned > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn columnar_table_recovers_to_last_commit() {
        // WAL recovery's logical truncation must handle variable
        // rows-per-page heaps: crash with uncommitted tail rows.
        let dir = tmpdir("colwal");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create_with(&dir, 128, durable_every_commit()).unwrap();
            let t = db
                .create_table(TableSpec::new("ev", &["x", "y"]).columnar())
                .unwrap();
            for i in 0..1500 {
                t.insert(&[300.0 * i as f64, (i % 9) as f64]).unwrap();
            }
            db.commit(b"at-1500").unwrap();
            for i in 1500..1900 {
                t.insert(&[300.0 * i as f64, 0.0]).unwrap();
            }
            // Crash: dropped without flush.
        }
        let db = Database::open(&dir, 128).unwrap();
        let report = db.recovery_report().expect("recovery ran");
        assert!(!report.clean);
        let t = db.table("ev").unwrap();
        assert_eq!(t.format(), PageFormat::Columnar);
        assert_eq!(t.num_rows(), 1500, "uncommitted tail truncated");
        let mut n = 0u64;
        t.seq_scan(|_, row| {
            assert_eq!(row[0], 300.0 * n as f64);
            assert_eq!(row[1], (n % 9) as f64);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 1500);
        // And appending continues cleanly after recovery.
        t.insert(&[300.0 * 1500.0, 6.0]).unwrap();
        assert_eq!(t.num_rows(), 1501);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn total_size_accounts_heap_and_index() {
        let dir = tmpdir("sizes");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 64).unwrap();
        let t = db.create_table(TableSpec::new("t", &["x"])).unwrap();
        for i in 0..1000 {
            t.insert(&[i as f64]).unwrap();
        }
        let heap_only = db.total_size_bytes();
        db.create_index("t", "i", &["x"]).unwrap();
        assert!(db.total_size_bytes() > heap_only);
        std::fs::remove_dir_all(&dir).ok();
    }
}
