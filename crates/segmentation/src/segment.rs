//! The [`Segment`] type: one piece of a piecewise-linear approximation.

/// A line segment between two observations `(t_start, v_start)` and
/// `(t_end, v_end)` with `t_start < t_end`.
///
/// In the paper's notation a *data segment* `ES` is defined by
/// `((t_s, v_s), (t_e, v_e))`. Segments produced by a segmenter are
/// contiguous: the end point of each segment is the start point of the next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start time.
    pub t_start: f64,
    /// Value at the start time.
    pub v_start: f64,
    /// End time (strictly greater than `t_start`).
    pub t_end: f64,
    /// Value at the end time.
    pub v_end: f64,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if `t_start >= t_end` or any coordinate is not finite.
    pub fn new(t_start: f64, v_start: f64, t_end: f64, v_end: f64) -> Self {
        assert!(
            t_start.is_finite() && v_start.is_finite() && t_end.is_finite() && v_end.is_finite(),
            "segment coordinates must be finite"
        );
        assert!(t_start < t_end, "segment must have positive duration");
        Self {
            t_start,
            v_start,
            t_end,
            v_end,
        }
    }

    /// The segment's slope `(v_end - v_start) / (t_end - t_start)`.
    pub fn slope(&self) -> f64 {
        (self.v_end - self.v_start) / (self.t_end - self.t_start)
    }

    /// Duration `t_end - t_start` (always positive).
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }

    /// Total value change `v_end - v_start`.
    pub fn delta_v(&self) -> f64 {
        self.v_end - self.v_start
    }

    /// The segment's value at time `t`. Extrapolates linearly outside
    /// `[t_start, t_end]`; use [`Segment::contains_time`] to check first.
    pub fn value_at(&self, t: f64) -> f64 {
        self.v_start + self.slope() * (t - self.t_start)
    }

    /// Whether `t` lies within the segment's closed time extent.
    pub fn contains_time(&self, t: f64) -> bool {
        self.t_start <= t && t <= self.t_end
    }

    /// The segment restricted to `t >= t0` (Algorithm 1, line 4: a previous
    /// data segment whose start falls before the window is truncated at the
    /// window start). Returns `None` when the truncation would consume the
    /// whole segment.
    pub fn truncate_left(&self, t0: f64) -> Option<Segment> {
        if t0 <= self.t_start {
            return Some(*self);
        }
        if t0 >= self.t_end {
            return None;
        }
        Some(Segment {
            t_start: t0,
            v_start: self.value_at(t0),
            t_end: self.t_end,
            v_end: self.v_end,
        })
    }

    /// Smallest value attained on the segment.
    pub fn min_value(&self) -> f64 {
        self.v_start.min(self.v_end)
    }

    /// Largest value attained on the segment.
    pub fn max_value(&self) -> f64 {
        self.v_start.max(self.v_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment::new(10.0, 5.0, 20.0, 1.0)
    }

    #[test]
    fn slope_and_delta() {
        let s = seg();
        assert_eq!(s.slope(), -0.4);
        assert_eq!(s.delta_v(), -4.0);
        assert_eq!(s.duration(), 10.0);
    }

    #[test]
    fn value_at_interpolates() {
        let s = seg();
        assert_eq!(s.value_at(10.0), 5.0);
        assert_eq!(s.value_at(20.0), 1.0);
        assert_eq!(s.value_at(15.0), 3.0);
    }

    #[test]
    fn contains_time_closed_interval() {
        let s = seg();
        assert!(s.contains_time(10.0));
        assert!(s.contains_time(20.0));
        assert!(!s.contains_time(9.999));
        assert!(!s.contains_time(20.001));
    }

    #[test]
    fn truncate_left_midpoint() {
        let s = seg();
        let t = s.truncate_left(15.0).unwrap();
        assert_eq!(t.t_start, 15.0);
        assert_eq!(t.v_start, 3.0);
        assert_eq!(t.t_end, 20.0);
        assert_eq!(t.v_end, 1.0);
        // Slope is preserved by truncation.
        assert!((t.slope() - s.slope()).abs() < 1e-12);
    }

    #[test]
    fn truncate_left_noop_and_consume() {
        let s = seg();
        assert_eq!(s.truncate_left(5.0), Some(s));
        assert_eq!(s.truncate_left(10.0), Some(s));
        assert_eq!(s.truncate_left(20.0), None);
        assert_eq!(s.truncate_left(25.0), None);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_rejected() {
        Segment::new(1.0, 0.0, 1.0, 0.0);
    }

    #[test]
    fn min_max_value() {
        let s = seg();
        assert_eq!(s.min_value(), 1.0);
        assert_eq!(s.max_value(), 5.0);
    }
}
