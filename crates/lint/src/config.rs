//! Lint configuration: rule scopes (which crates each rule covers) and
//! the lock-order declaration loaded from `ci/lock-order.toml`.

use crate::toml;

/// Crates whose production code must be panic-free (rule L1): the
/// serving and storage path. The math kernels (`segmentation`,
/// `featurespace`, `sensorgen`) assert paper invariants with panics and
/// are deliberately out of scope until they move onto the hot path.
pub const L1_CRATES: &[&str] = &[
    "pagestore",
    "server",
    "router",
    "core",
    "cli",
    "obs",
    "lint",
];

/// Crates where `let _ =` result discards are forbidden (rule L5).
pub const L5_CRATES: &[&str] = &["pagestore", "core"];

/// Workspace-relative path of the lock-order declaration.
pub const LOCK_ORDER_PATH: &str = "ci/lock-order.toml";

/// Workspace-relative path of the metric registry source.
pub const NAMES_RS_PATH: &str = "crates/obs/src/names.rs";

/// Workspace-relative path of the HTTP route registry source (rule L8).
pub const ROUTES_RS_PATH: &str = "crates/server/src/routes.rs";

/// Workspace-relative path of the HTTP dispatch site (rule L8).
pub const SERVICE_RS_PATH: &str = "crates/server/src/service.rs";

/// Workspace-relative path of the CLI argument parser (rule L8).
pub const ARGS_RS_PATH: &str = "crates/cli/src/args.rs";

/// README markers delimiting the generated metrics table.
pub const METRICS_TABLE_BEGIN: &str = "<!-- metrics-table:begin -->";
/// Closing marker.
pub const METRICS_TABLE_END: &str = "<!-- metrics-table:end -->";

/// README markers delimiting the generated HTTP routes table.
pub const ROUTES_TABLE_BEGIN: &str = "<!-- routes-table:begin -->";
/// Closing marker.
pub const ROUTES_TABLE_END: &str = "<!-- routes-table:end -->";

/// One lock class: a name, its rank in the global order, and the
/// receiver-path patterns that identify its acquisition sites.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Class name as declared in `order`.
    pub name: String,
    /// Position in the declared order (lower acquires first).
    pub rank: usize,
    /// Receiver-path globs (e.g. `*.shards[]`, `files[].file`).
    pub paths: Vec<String>,
    /// Path glob limiting which files the mapping applies to
    /// (empty = everywhere).
    pub scope: String,
    /// Whether two *different* instances of this class may nest
    /// (same-path double acquisition is always a violation).
    pub reentrant: bool,
}

/// One `[[allow_blocking]]` entry: a blessed blocking-under-lock site
/// (rule L7). WAL appends and buffer-pool page I/O *must* happen under
/// their guards — that is the design — so they are allowlisted here,
/// with a reason, instead of suppressed inline at every call site.
#[derive(Debug, Clone)]
pub struct AllowBlocking {
    /// File glob the entry covers (e.g. `crates/pagestore/src/wal.rs`).
    pub file: String,
    /// Operation names allowed under a guard in that file.
    pub ops: Vec<String>,
    /// Why this is sound (empty reason is an L0 violation).
    pub reason: String,
    /// Line of the entry in `ci/lock-order.toml` (for L0 reporting).
    pub line: u32,
}

/// The parsed `ci/lock-order.toml`.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// All classes, resolvable by pattern.
    pub classes: Vec<LockClass>,
    /// Blocking-op allowlist for rule L7.
    pub allow_blocking: Vec<AllowBlocking>,
}

impl LockOrder {
    /// Parses the declaration. Every `[[class]]` must appear in
    /// `order`, and vice versa.
    pub fn parse(src: &str) -> Result<LockOrder, String> {
        let doc = toml::parse(src).map_err(|e| e.to_string())?;
        let order: Vec<String> = doc
            .root
            .get("order")
            .and_then(|v| v.as_array())
            .ok_or("missing top-level `order = [...]`")?
            .to_vec();
        let mut classes = Vec::new();
        for entry in doc.arrays.get("class").map(|v| v.as_slice()).unwrap_or(&[]) {
            let name = entry
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or("[[class]] missing `name`")?
                .to_string();
            let rank = order
                .iter()
                .position(|o| *o == name)
                .ok_or_else(|| format!("class `{name}` not listed in `order`"))?;
            let paths = entry
                .get("paths")
                .and_then(|v| v.as_array())
                .ok_or_else(|| format!("class `{name}` missing `paths`"))?
                .to_vec();
            let scope = entry
                .get("scope")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string();
            let reentrant = matches!(entry.get("reentrant"), Some(toml::Value::Bool(true)));
            classes.push(LockClass {
                name,
                rank,
                paths,
                scope,
                reentrant,
            });
        }
        for o in &order {
            if !classes.iter().any(|c| c.name == *o) {
                return Err(format!("order lists `{o}` but no [[class]] defines it"));
            }
        }
        // The toml Doc keeps array-of-table order but not line numbers;
        // the nth [[allow_blocking]] table is the nth header line.
        let mut header_lines = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.trim() == "[[allow_blocking]]")
            .map(|(i, _)| (i + 1) as u32);
        let mut allow_blocking = Vec::new();
        for entry in doc
            .arrays
            .get("allow_blocking")
            .map(|v| v.as_slice())
            .unwrap_or(&[])
        {
            let line = header_lines.next().unwrap_or(0);
            let file = entry
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or("[[allow_blocking]] missing `file`")?
                .to_string();
            let ops = entry
                .get("ops")
                .and_then(|v| v.as_array())
                .ok_or("[[allow_blocking]] missing `ops`")?
                .to_vec();
            let reason = entry
                .get("reason")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string();
            allow_blocking.push(AllowBlocking {
                file,
                ops,
                reason,
                line,
            });
        }
        Ok(LockOrder {
            classes,
            allow_blocking,
        })
    }

    /// The index of the `[[allow_blocking]]` entry covering a blocking
    /// op `op` in `file`, if any (entries with an empty reason do not
    /// count — they are L0 violations, like reason-less suppressions).
    pub fn blocking_allowed(&self, file: &str, op: &str) -> Option<usize> {
        self.allow_blocking.iter().position(|a| {
            !a.reason.is_empty() && glob_match(&a.file, file) && a.ops.iter().any(|o| o == op)
        })
    }

    /// Classifies an acquisition: the first class whose scope covers
    /// `file` and whose patterns match the receiver `path`.
    pub fn classify(&self, file: &str, path: &str) -> Option<&LockClass> {
        self.classes.iter().find(|c| {
            (c.scope.is_empty() || glob_match(&c.scope, file))
                && c.paths.iter().any(|p| glob_match(p, path))
        })
    }
}

/// Wildcard matching: `*` matches any (possibly empty) run of
/// characters. Case-sensitive; no character classes.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some((b'*', rest)) => (0..=t.len()).any(|skip| inner(rest, &t[skip..])),
            Some((&c, rest)) => t
                .split_first()
                .is_some_and(|(&tc, tr)| tc == c && inner(rest, tr)),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
order = ["pool.files", "pool.shard", "pool.file"]

[[class]]
name = "pool.files"
paths = ["*.files"]
scope = "crates/pagestore/*"

[[class]]
name = "pool.shard"
paths = ["*.shards[]", "s"]
scope = "crates/pagestore/src/buffer.rs"

[[class]]
name = "pool.file"
paths = ["files[].file", "*.file"]
reentrant = false
"#;

    #[test]
    fn parse_and_classify() {
        let lo = LockOrder::parse(SAMPLE).unwrap();
        assert_eq!(lo.classes.len(), 3);
        let c = lo
            .classify("crates/pagestore/src/buffer.rs", "self.shards[]")
            .unwrap();
        assert_eq!(c.name, "pool.shard");
        assert_eq!(c.rank, 1);
        // Scope excludes other files.
        assert!(lo.classify("crates/server/src/queue.rs", "s").is_none());
        // Unscoped class applies everywhere.
        assert!(lo
            .classify("crates/core/src/index.rs", "files[].file")
            .is_some());
    }

    #[test]
    fn order_and_classes_must_agree() {
        assert!(LockOrder::parse("order = [\"a\"]").is_err());
        let missing_order = "order = []\n[[class]]\nname = \"x\"\npaths = [\"x\"]\n";
        assert!(LockOrder::parse(missing_order).is_err());
    }

    #[test]
    fn allow_blocking_entries() {
        let src = r#"
order = ["wal"]

[[class]]
name = "wal"
paths = ["*.inner"]

[[allow_blocking]]
file = "crates/pagestore/src/wal.rs"
ops = ["write_all", "sync_data"]
reason = "WAL durability requires fsync under the writer lock"

[[allow_blocking]]
file = "crates/pagestore/src/buffer.rs"
ops = ["write_page"]
reason = ""
"#;
        let lo = LockOrder::parse(src).unwrap();
        assert_eq!(lo.allow_blocking.len(), 2);
        assert_eq!(lo.allow_blocking[0].line, 8);
        assert_eq!(
            lo.blocking_allowed("crates/pagestore/src/wal.rs", "sync_data"),
            Some(0)
        );
        assert_eq!(
            lo.blocking_allowed("crates/pagestore/src/wal.rs", "sleep"),
            None
        );
        // Reason-less entries never allow anything.
        assert_eq!(
            lo.blocking_allowed("crates/pagestore/src/buffer.rs", "write_page"),
            None
        );
    }

    #[test]
    fn globbing() {
        assert!(glob_match("*.files", "self.files"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("files[].file", "files[].file"));
        assert!(!glob_match("*.files", "self.file"));
        assert!(glob_match(
            "crates/pagestore/*",
            "crates/pagestore/src/db.rs"
        ));
    }
}
