//! Columnar batch predicates: the kernels of §4.4 over struct-of-arrays
//! corner buffers.
//!
//! The row-at-a-time executor materializes one [`FeaturePoint`] per stored
//! corner and calls [`crate::point_in_region`] /
//! [`crate::edge_crosses_region`] per row.
//! These kernels evaluate the same predicates over column slices decoded a
//! page at a time: one pass per corner column, accumulating into a shared
//! match mask. The scalar predicates stay the single source of truth — the
//! property tests assert the batch kernels agree with them bit for bit.
//!
//! The module also hosts [`zone_may_intersect`], the page-level pruning
//! predicate derived from the same conditions: a page whose per-column
//! min/max summary fails it cannot contain any matching row, so a
//! sequential scan may skip it without changing results.

use crate::intersect::edge_crosses_region;
use crate::{FeaturePoint, QueryRegion, SearchKind};

/// OR-accumulates the point query (`point_in_region`) over parallel
/// `(Δt, Δv)` columns into `mask`.
///
/// # Panics
///
/// Panics unless `dts`, `dvs` and `mask` have equal lengths.
pub fn points_in_region(dts: &[f64], dvs: &[f64], region: &QueryRegion, mask: &mut [bool]) {
    assert!(dts.len() == dvs.len() && dts.len() == mask.len());
    let (t, v) = (region.t, region.v);
    match region.kind {
        SearchKind::Drop => {
            for i in 0..mask.len() {
                mask[i] |= dts[i] <= t && dvs[i] <= v;
            }
        }
        SearchKind::Jump => {
            for i in 0..mask.len() {
                mask[i] |= dts[i] <= t && dvs[i] >= v;
            }
        }
    }
}

/// OR-accumulates the line query (`edge_crosses_region`) over parallel
/// edge-endpoint columns (`p1 = (dt1s, dv1s)`, `p2 = (dt2s, dv2s)`,
/// `p1.dt <= p2.dt` per lane) into `mask`. Lanes already set are skipped —
/// the union semantics of [`crate::Boundary::intersects`].
///
/// # Panics
///
/// Panics unless all five slices have equal lengths.
pub fn edges_cross_region(
    dt1s: &[f64],
    dv1s: &[f64],
    dt2s: &[f64],
    dv2s: &[f64],
    region: &QueryRegion,
    mask: &mut [bool],
) {
    assert!(
        dt1s.len() == dv1s.len()
            && dt1s.len() == dt2s.len()
            && dt1s.len() == dv2s.len()
            && dt1s.len() == mask.len()
    );
    for i in 0..mask.len() {
        if !mask[i] {
            mask[i] = edge_crosses_region(
                FeaturePoint::new(dt1s[i], dv1s[i]),
                FeaturePoint::new(dt2s[i], dv2s[i]),
                region,
            );
        }
    }
}

/// Evaluates [`crate::Boundary::intersects`] for a block of stored
/// boundary rows in struct-of-arrays form.
///
/// `cols` holds `2 * corners` column slices in storage order
/// (`Δt₁, Δv₁, …, Δtᶜ, Δvᶜ`), each `len` rows long. `mask` is resized to
/// `len` and overwritten: `mask[i]` is true iff row `i`'s boundary
/// intersects `region` — the union of the point query on every corner and
/// the line query on every adjacent corner pair, exactly as the scalar
/// path computes it.
///
/// # Panics
///
/// Panics unless `corners` is 1–3 and `cols` has `2 * corners` slices of
/// length `len`.
pub fn boundaries_intersect(
    corners: usize,
    cols: &[&[f64]],
    len: usize,
    region: &QueryRegion,
    mask: &mut Vec<bool>,
) {
    assert!((1..=3).contains(&corners), "corners must be 1-3");
    assert_eq!(cols.len(), 2 * corners, "need dt/dv columns per corner");
    for c in cols {
        assert_eq!(c.len(), len);
    }
    mask.clear();
    mask.resize(len, false);
    for j in 0..corners {
        points_in_region(cols[2 * j], cols[2 * j + 1], region, mask);
    }
    for j in 0..corners.saturating_sub(1) {
        edges_cross_region(
            cols[2 * j],
            cols[2 * j + 1],
            cols[2 * j + 2],
            cols[2 * j + 3],
            region,
            mask,
        );
    }
}

/// [`boundaries_intersect`] over owned column buffers, as a columnar
/// page scan decodes them: `cols` holds at least the `2 * corners`
/// corner columns in storage order (trailing columns — the segment
/// endpoints ride along in the same pages — are ignored), each `len`
/// rows long. No transpose, no per-row materialization: the buffers the
/// storage layer decoded into are evaluated in place.
///
/// # Panics
///
/// Panics unless `corners` is 1–3 and `cols` has at least `2 * corners`
/// columns of length `len`.
pub fn boundaries_intersect_cols(
    corners: usize,
    cols: &[Vec<f64>],
    len: usize,
    region: &QueryRegion,
    mask: &mut Vec<bool>,
) {
    assert!((1..=3).contains(&corners), "corners must be 1-3");
    assert!(cols.len() >= 2 * corners, "need dt/dv columns per corner");
    let mut views: [&[f64]; 6] = [&[]; 6];
    for (v, c) in views.iter_mut().zip(cols) {
        *v = c.as_slice();
    }
    boundaries_intersect(corners, &views[..2 * corners], len, region, mask);
}

/// Page-level pruning predicate for zone maps: can *any* row whose corner
/// columns lie within `[mins, maxs]` (per column, storage order
/// `Δt₁, Δv₁, …`) intersect `region`?
///
/// Derived from the §4.4 conditions: every match — point or line — needs
/// some corner with `Δt <= T` and some corner with `Δv <= V` (drop; for
/// the line query the right endpoint satisfies `Δv < V`). So a page can be
/// skipped when every corner column's minimum `Δt` exceeds `T`, or every
/// corner column's minimum `Δv` exceeds `V` (drop) / maximum `Δv` falls
/// short of `V` (jump). Returning `true` never loses a match — the
/// losslessness property the query tests check end to end.
///
/// # Panics
///
/// Panics unless `mins` and `maxs` cover the `2 * corners` corner columns.
pub fn zone_may_intersect(
    corners: usize,
    mins: &[f64],
    maxs: &[f64],
    region: &QueryRegion,
) -> bool {
    assert!((1..=3).contains(&corners), "corners must be 1-3");
    assert!(mins.len() >= 2 * corners && maxs.len() >= 2 * corners);
    let min_dt = (0..corners)
        .map(|j| mins[2 * j])
        .fold(f64::INFINITY, f64::min);
    if min_dt > region.t {
        return false;
    }
    match region.kind {
        SearchKind::Drop => {
            let min_dv = (0..corners)
                .map(|j| mins[2 * j + 1])
                .fold(f64::INFINITY, f64::min);
            min_dv <= region.v
        }
        SearchKind::Jump => {
            let max_dv = (0..corners)
                .map(|j| maxs[2 * j + 1])
                .fold(f64::NEG_INFINITY, f64::max);
            max_dv >= region.v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boundary;

    fn soa(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let ncols = rows.first().map_or(0, Vec::len);
        (0..ncols)
            .map(|c| rows.iter().map(|r| r[c]).collect())
            .collect()
    }

    fn check_against_scalar(corners: usize, rows: &[Vec<f64>], region: &QueryRegion) {
        let cols = soa(rows);
        let views: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let mut mask = Vec::new();
        boundaries_intersect(corners, &views, rows.len(), region, &mut mask);
        for (i, row) in rows.iter().enumerate() {
            let pts: Vec<FeaturePoint> = (0..corners)
                .map(|j| FeaturePoint::new(row[2 * j], row[2 * j + 1]))
                .collect();
            let b = match corners {
                1 => Boundary::one(pts[0]),
                2 => Boundary::two(pts[0], pts[1]),
                _ => Boundary::three(pts[0], pts[1], pts[2]),
            };
            assert_eq!(mask[i], b.intersects(region), "row {i}: {row:?}");
        }
    }

    #[test]
    fn batch_matches_scalar_boundaries() {
        let region = QueryRegion::drop(10.0, -2.0);
        // Two-corner rows covering point hit, edge hit, and miss.
        let rows2 = vec![
            vec![2.0, -1.0, 12.0, -6.0],  // edge crossing
            vec![5.0, -3.0, 8.0, -4.0],   // corner inside
            vec![11.0, -3.0, 20.0, -6.0], // entirely right of T
            vec![2.0, -1.0, 9.0, -1.5],   // too shallow
        ];
        check_against_scalar(2, &rows2, &region);
        let rows1 = vec![vec![5.0, -3.0], vec![5.0, -1.0]];
        check_against_scalar(1, &rows1, &region);
        let rows3 = vec![
            vec![1.0, -0.5, 6.0, -1.0, 14.0, -5.0],
            vec![1.0, 0.5, 6.0, 1.0, 14.0, 5.0],
        ];
        check_against_scalar(3, &rows3, &region);
        let jump = QueryRegion::jump(10.0, 2.0);
        let rows_j = vec![
            vec![2.0, 1.0, 12.0, 6.0],
            vec![5.0, 3.0, 8.0, 4.0],
            vec![2.0, 1.0, 9.0, 1.5],
        ];
        check_against_scalar(2, &rows_j, &jump);
    }

    #[test]
    fn cols_variant_matches_slice_variant_and_ignores_trailing_cols() {
        let region = QueryRegion::drop(10.0, -2.0);
        let rows = vec![
            vec![2.0, -1.0, 12.0, -6.0],
            vec![5.0, -3.0, 8.0, -4.0],
            vec![11.0, -3.0, 20.0, -6.0],
            vec![2.0, -1.0, 9.0, -1.5],
        ];
        let mut cols = soa(&rows);
        let views: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let mut want = Vec::new();
        boundaries_intersect(2, &views, rows.len(), &region, &mut want);
        // Storage pages carry four trailing segment-endpoint columns after
        // the corners; the cols variant must skip them.
        for _ in 0..4 {
            cols.push(vec![99.0; rows.len()]);
        }
        let mut got = Vec::new();
        boundaries_intersect_cols(2, &cols, rows.len(), &region, &mut got);
        assert_eq!(got, want);
        assert!(got.iter().any(|&m| m) && got.iter().any(|&m| !m));
    }

    #[test]
    fn zone_predicate_is_conservative_on_examples() {
        let region = QueryRegion::drop(10.0, -2.0);
        // Page holding a matching row must never be pruned.
        assert!(zone_may_intersect(
            2,
            &[2.0, -1.0, 12.0, -6.0],
            &[2.0, -1.0, 12.0, -6.0],
            &region
        ));
        // All corners far right of T: prune.
        assert!(!zone_may_intersect(
            2,
            &[11.0, -9.0, 20.0, -9.0],
            &[30.0, 0.0, 40.0, 0.0],
            &region
        ));
        // All dv too shallow: prune.
        assert!(!zone_may_intersect(
            2,
            &[1.0, -1.0, 2.0, -1.5],
            &[9.0, 0.0, 9.0, 0.0],
            &region
        ));
        let jump = QueryRegion::jump(10.0, 2.0);
        assert!(zone_may_intersect(1, &[1.0, 0.0], &[5.0, 3.0], &jump));
        assert!(!zone_may_intersect(1, &[1.0, 0.0], &[5.0, 1.0], &jump));
    }

    #[test]
    fn zone_predicate_never_prunes_a_match() {
        // Any single-row page: zone = the row itself; if the row matches,
        // the zone must pass.
        let regions = [QueryRegion::drop(8.0, -1.5), QueryRegion::jump(8.0, 1.5)];
        let mut x = 0.37f64;
        let mut next = move || {
            // Tiny deterministic LCG over [-10, 15].
            x = (x * 9301.0 + 49297.0) % 233280.0;
            x / 233280.0 * 25.0 - 10.0
        };
        for region in &regions {
            for _ in 0..500 {
                let (dt1, dt2) = {
                    let (a, b) = (next().abs(), next().abs());
                    (a.min(b), a.max(b))
                };
                let row = [dt1, next(), dt2, next()];
                let b = Boundary::two(
                    FeaturePoint::new(row[0], row[1]),
                    FeaturePoint::new(row[2], row[3]),
                );
                if b.intersects(region) {
                    assert!(
                        zone_may_intersect(2, &row, &row, region),
                        "pruned a matching row {row:?} for {region:?}"
                    );
                }
            }
        }
    }
}
