//! Scatter–gather execution of `POST /query` across shards.
//!
//! The router validates the query with the exact parser the shards use
//! ([`QuerySpec::from_json`]), partitions the target sensors over the
//! [`Ring`], POSTs each shard its slice as a
//! `{"sensors": [...], "per_sensor": true}` query, and merges the
//! per-sensor parts with [`segdiff::merge_sharded`] — the same
//! sort-by-sensor-and-concatenate union the single-process transect
//! fan-out performs, so the merged `results` array is byte-identical to
//! one process serving all sensors (floats re-serialize stably because
//! the JSON layer prints shortest round-trip forms).
//!
//! Failure semantics: a shard whose selected endpoint errors gets one
//! immediate failover retry via [`HealthBoard::report_failure`]; if no
//! endpoint serves it, the whole query degrades to a structured
//! `503 {"error": ..., "unavailable_sensors": [...]}` naming exactly
//! the sensors this query needed from dead shards — queries whose
//! sensor filter avoids the dead shard keep succeeding.

use crate::health::HealthBoard;
use crate::ring::Ring;
use crate::RouterMetrics;
use obs::json::Json;
use segdiff::{merge_sharded, SegmentPair};
use segdiff_server::http::Response;
use segdiff_server::loadgen::fetch;
use segdiff_server::QuerySpec;
use std::time::Instant;

/// A shard's successful contribution to one scattered query.
struct ShardAnswer {
    parts: Vec<(u32, Vec<SegmentPair>)>,
    epoch: u64,
    rows_considered: u64,
    cached: bool,
}

/// Why a shard contributed nothing.
enum ShardFailure {
    /// No endpoint serves the shard; carries the sensors this query
    /// needed from it.
    Unavailable(Vec<u32>),
    /// The shard answered with a non-2xx status.
    Status(u16, String),
}

/// Executes one `POST /query` body across the cluster.
pub fn scatter_query(
    board: &HealthBoard,
    ring: &Ring,
    body: &str,
    metrics: &RouterMetrics,
) -> Response {
    metrics.queries.inc();
    let start = Instant::now();
    let spec = match QuerySpec::from_json(body) {
        Ok(s) => s,
        Err(e) => {
            metrics.bad_requests.inc();
            return Response::error(400, e);
        }
    };

    // Target set: an explicit filter, or everything the cluster serves.
    let targets = if spec.sensors.is_empty() {
        board.known_sensors()
    } else {
        let mut t = spec.sensors.clone();
        t.sort_unstable();
        t.dedup();
        t
    };

    let buckets = ring.partition(&targets);
    let jobs: Vec<(usize, &[u32])> = buckets
        .iter()
        .enumerate()
        .filter(|(_, sensors)| !sensors.is_empty())
        .map(|(shard, sensors)| (shard, sensors.as_slice()))
        .collect();

    // Scatter: one thread per participating shard.
    let outcomes: Vec<Result<ShardAnswer, ShardFailure>> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(shard, sensors)| {
                let body = shard_body(&spec, sensors);
                s.spawn(move || query_shard(board, metrics, shard, sensors, &body))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(_) => Err(ShardFailure::Status(500, "scatter worker panicked".into())),
            })
            .collect()
    });

    // Gather: client errors first (the query is bad regardless of
    // outages), then degradation, then shard-side server errors.
    let mut unavailable: Vec<u32> = Vec::new();
    let mut server_error: Option<(u16, String)> = None;
    let mut answers = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Ok(a) => answers.push(a),
            Err(ShardFailure::Status(status, msg)) if (400..500).contains(&status) => {
                metrics.bad_requests.inc();
                return Response::error(status, msg);
            }
            Err(ShardFailure::Status(status, msg)) => {
                server_error.get_or_insert((status, msg));
            }
            Err(ShardFailure::Unavailable(sensors)) => unavailable.extend(sensors),
        }
    }
    if !unavailable.is_empty() {
        metrics.degraded.inc();
        unavailable.sort_unstable();
        unavailable.dedup();
        return Response::json(
            503,
            &Json::obj([
                ("error", Json::Str("shard unavailable".to_string())),
                (
                    "unavailable_sensors",
                    Json::Array(
                        unavailable
                            .into_iter()
                            .map(u64::from)
                            .map(Json::Uint)
                            .collect(),
                    ),
                ),
            ]),
        );
    }
    if let Some((status, msg)) = server_error {
        return Response::error(status.max(500), msg);
    }

    // Merge. Parts arrive per shard in ascending sensor order;
    // merge_sharded re-establishes the global ascending order, which is
    // exactly the single-process flattening.
    let epoch: u64 = answers.iter().map(|a| a.epoch).sum();
    let rows_considered: u64 = answers.iter().map(|a| a.rows_considered).sum();
    let cached = !answers.is_empty() && answers.iter().all(|a| a.cached);
    let all_parts: Vec<(u32, Vec<SegmentPair>)> =
        answers.into_iter().flat_map(|a| a.parts).collect();

    let mut fields = Vec::new();
    if let Some(series) = &spec.series {
        fields.push(("series".to_string(), Json::Str(series.clone())));
    }
    fields.extend([
        ("kind".to_string(), Json::Str(spec.kind.clone())),
        ("v".to_string(), Json::Float(spec.v)),
        ("t_hours".to_string(), Json::Float(spec.t_hours)),
        ("plan".to_string(), Json::Str(spec.plan.clone())),
        ("epoch".to_string(), Json::Uint(epoch)),
        ("cached".to_string(), Json::Bool(cached)),
    ]);
    let count: usize = all_parts.iter().map(|(_, r)| r.len()).sum();
    fields.extend([
        ("count".to_string(), Json::Uint(count as u64)),
        ("rows_considered".to_string(), Json::Uint(rows_considered)),
        (
            "wall_ms".to_string(),
            Json::Float(start.elapsed().as_secs_f64() * 1e3),
        ),
    ]);
    if spec.per_sensor {
        let mut parts = all_parts;
        parts.sort_by_key(|(id, _)| *id);
        fields.push((
            "by_sensor".to_string(),
            Json::Array(
                parts
                    .iter()
                    .map(|(sensor, results)| {
                        Json::obj([
                            ("sensor", Json::Uint(u64::from(*sensor))),
                            ("count", Json::Uint(results.len() as u64)),
                            ("results", pairs_to_json(results)),
                        ])
                    })
                    .collect(),
            ),
        ));
    } else {
        let merged = merge_sharded(all_parts);
        fields.push(("results".to_string(), pairs_to_json(&merged)));
    }
    fields.extend([
        ("sensors".to_string(), Json::Uint(targets.len() as u64)),
        ("shards".to_string(), Json::Uint(ring.num_shards() as u64)),
    ]);
    metrics.query_nanos.record_duration(start.elapsed());
    Response::json(200, &Json::Object(fields))
}

/// One shard's round trip: selected endpoint, one failover retry.
fn query_shard(
    board: &HealthBoard,
    metrics: &RouterMetrics,
    shard: usize,
    sensors: &[u32],
    body: &str,
) -> Result<ShardAnswer, ShardFailure> {
    let Some((addr, _)) = board.endpoint(shard) else {
        return Err(ShardFailure::Unavailable(sensors.to_vec()));
    };
    metrics.scatter_requests.inc();
    let (status, text) = match fetch(&addr, "POST", "/query", Some(body)) {
        Ok(out) => out,
        Err(_) => {
            metrics.shard_errors.inc();
            // Failover: re-probe now and retry once on whatever
            // endpoint the board selects next (typically the replica).
            let Some((next, _)) = board.report_failure(shard, &addr) else {
                return Err(ShardFailure::Unavailable(sensors.to_vec()));
            };
            metrics.scatter_requests.inc();
            match fetch(&next, "POST", "/query", Some(body)) {
                Ok(out) => out,
                Err(_) => {
                    metrics.shard_errors.inc();
                    board.report_failure(shard, &next);
                    return Err(ShardFailure::Unavailable(sensors.to_vec()));
                }
            }
        }
    };
    if !(200..300).contains(&status) {
        let msg = Json::parse(&text)
            .ok()
            .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_else(|| format!("shard returned status {status}"));
        return Err(ShardFailure::Status(
            status,
            format!("shard {shard}: {msg}"),
        ));
    }
    parse_answer(&text).map_err(|e| ShardFailure::Status(500, format!("shard {shard}: {e}")))
}

/// The per-shard request body: the validated spec re-serialized with
/// this shard's sensor slice and grouped output.
fn shard_body(spec: &QuerySpec, sensors: &[u32]) -> String {
    let mut fields = Vec::new();
    if let Some(series) = &spec.series {
        fields.push(("series".to_string(), Json::Str(series.clone())));
    }
    fields.extend([
        ("kind".to_string(), Json::Str(spec.kind.clone())),
        ("v".to_string(), Json::Float(spec.v)),
        ("t_hours".to_string(), Json::Float(spec.t_hours)),
        ("plan".to_string(), Json::Str(spec.plan.clone())),
        (
            "sensors".to_string(),
            Json::Array(sensors.iter().map(|&s| Json::Uint(u64::from(s))).collect()),
        ),
        ("per_sensor".to_string(), Json::Bool(true)),
    ]);
    Json::Object(fields).to_string_compact()
}

/// Parses a shard's grouped `by_sensor` response.
fn parse_answer(text: &str) -> Result<ShardAnswer, String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed response: {e}"))?;
    let by_sensor = match doc.get("by_sensor") {
        Some(Json::Array(items)) => items,
        _ => return Err("response missing by_sensor".to_string()),
    };
    let mut parts = Vec::with_capacity(by_sensor.len());
    for entry in by_sensor {
        let sensor = entry
            .get("sensor")
            .and_then(Json::as_u64)
            .filter(|&n| n <= u64::from(u32::MAX))
            .ok_or("by_sensor entry missing sensor id")? as u32;
        let results = match entry.get("results") {
            Some(Json::Array(items)) => items
                .iter()
                .map(parse_pair)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(format!("sensor {sensor} entry missing results")),
        };
        parts.push((sensor, results));
    }
    Ok(ShardAnswer {
        parts,
        epoch: doc.get("epoch").and_then(Json::as_u64).unwrap_or(0),
        rows_considered: doc
            .get("rows_considered")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        cached: matches!(doc.get("cached"), Some(Json::Bool(true))),
    })
}

fn parse_pair(item: &Json) -> Result<SegmentPair, String> {
    let field = |name: &str| {
        item.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("result pair missing {name}"))
    };
    Ok(SegmentPair {
        t_d: field("t_d")?,
        t_c: field("t_c")?,
        t_b: field("t_b")?,
        t_a: field("t_a")?,
    })
}

fn pairs_to_json(results: &[SegmentPair]) -> Json {
    Json::Array(
        results
            .iter()
            .map(|p| {
                Json::obj([
                    ("t_d", Json::Float(p.t_d)),
                    ("t_c", Json::Float(p.t_c)),
                    ("t_b", Json::Float(p.t_b)),
                    ("t_a", Json::Float(p.t_a)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_body_round_trips_through_query_spec() {
        let spec = QuerySpec::from_json(r#"{"kind":"drop","v":-2.5,"t_hours":3.0}"#).expect("spec");
        let body = shard_body(&spec, &[4, 7]);
        let back = QuerySpec::from_json(&body).expect("shard body must be a valid query");
        assert_eq!(back.kind, "drop");
        assert_eq!(back.v, -2.5);
        assert_eq!(back.t_hours, 3.0);
        assert_eq!(back.sensors, vec![4, 7]);
        assert!(back.per_sensor);
    }

    #[test]
    fn parses_grouped_answers() {
        let text = r#"{"kind":"drop","epoch":9,"cached":true,"rows_considered":42,
            "by_sensor":[
              {"sensor":1,"count":1,"results":[{"t_d":0.5,"t_c":1.0,"t_b":2.0,"t_a":3.0}]},
              {"sensor":5,"count":0,"results":[]}
            ]}"#;
        let a = parse_answer(text).expect("parse");
        assert_eq!(a.epoch, 9);
        assert_eq!(a.rows_considered, 42);
        assert!(a.cached);
        assert_eq!(a.parts.len(), 2);
        assert_eq!(a.parts[0].0, 1);
        assert_eq!(a.parts[0].1[0].t_d, 0.5);
        assert!(a.parts[1].1.is_empty());

        assert!(parse_answer("{}").is_err());
        assert!(parse_answer("not json").is_err());
        assert!(parse_answer(r#"{"by_sensor":[{"sensor":1}]}"#).is_err());
    }

    #[test]
    fn pair_json_round_trips_bytes() {
        // The byte-identity contract: parse a pair from JSON, serialize
        // it again, get the same bytes (shortest round-trip floats).
        let pair = Json::obj([
            ("t_d", Json::Float(0.1)),
            ("t_c", Json::Float(1.5)),
            ("t_b", Json::Float(2.25)),
            ("t_a", Json::Float(1e300)),
        ]);
        let text = pair.to_string_compact();
        let parsed = parse_pair(&Json::parse(&text).expect("json")).expect("pair");
        assert_eq!(
            pairs_to_json(&[parsed]).to_string_compact(),
            format!("[{text}]")
        );
    }
}
