//! End-to-end validation of Theorem 1 on the full pipeline:
//!
//! * **no false negatives** — every true event among sampled observations
//!   is covered by some returned segment pair, for both query plans;
//! * **bounded false positives** — every returned pair contains an event of
//!   model G with `Δv <= V + 2ε` (drop) / `Δv >= V - 2ε` (jump) within
//!   `Δt <= T`.

use proptest::prelude::*;
use segdiff_repro::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "segdiff-guarantee-{}-{tag}-{}",
        std::process::id(),
        rand_suffix()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A deterministic random-walk series with irregular sampling.
fn walk_series(n: usize, seed: u64) -> TimeSeries {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut v = 10.0;
    let mut s = TimeSeries::with_capacity(n);
    for _ in 0..n {
        t += 60.0 + rng.random::<f64>() * 600.0;
        v += (rng.random::<f64>() - 0.5) * 2.0;
        s.push(t, v);
    }
    s
}

/// Builds an index over `series`, runs `region` under both plans, and
/// checks both halves of Theorem 1.
fn check_theorem1(series: &TimeSeries, eps: f64, w: f64, region: &QueryRegion, tag: &str) {
    let dir = tmpdir(tag);
    let mut idx = SegDiffIndex::create(
        &dir,
        SegDiffConfig::default()
            .with_epsilon(eps)
            .with_window(w)
            .with_pool_pages(512),
    )
    .unwrap();
    idx.ingest_series(series).unwrap();
    idx.finish().unwrap();
    idx.build_indexes().unwrap();

    let events = oracle::true_events(series, region);
    let (scan, _) = idx.query(region, QueryPlan::SeqScan).unwrap();
    let (indexed, _) = idx.query(region, QueryPlan::Index).unwrap();
    assert_eq!(scan, indexed, "plans disagree ({tag})");

    // Completeness.
    if let Some(missed) = oracle::find_missed_event(&events, &scan) {
        panic!(
            "missed true event {missed:?} (tag {tag}, eps {eps}, T {}, V {}, {} results)",
            region.t,
            region.v,
            scan.len()
        );
    }

    // Bounded false positives (Lemma 5).
    for pair in &scan {
        let extreme = oracle::pair_extreme_change(series, pair, region, 48)
            .unwrap_or_else(|| panic!("returned pair {pair:?} admits no event at all ({tag})"));
        match region.kind {
            SearchKind::Drop => assert!(
                extreme <= region.v + 2.0 * eps + 1e-9,
                "false positive beyond 2eps: pair {pair:?} min dv {extreme} vs V {} + 2*{eps} ({tag})",
                region.v
            ),
            SearchKind::Jump => assert!(
                extreme >= region.v - 2.0 * eps - 1e-9,
                "false positive beyond 2eps: pair {pair:?} max dv {extreme} vs V {} - 2*{eps} ({tag})",
                region.v
            ),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn theorem1_on_random_walks_default_params() {
    for seed in 0..6 {
        let series = walk_series(400, seed);
        let region = QueryRegion::drop(1.0 * HOUR, -2.0);
        check_theorem1(&series, 0.2, 8.0 * HOUR, &region, "walk-default");
    }
}

#[test]
fn theorem1_jump_search() {
    for seed in 10..14 {
        let series = walk_series(400, seed);
        let region = QueryRegion::jump(2.0 * HOUR, 1.5);
        check_theorem1(&series, 0.3, 4.0 * HOUR, &region, "walk-jump");
    }
}

#[test]
fn theorem1_on_cad_workload() {
    let cfg = CadTransectConfig::default().with_days(4).clean();
    let raw = generate_sensor(&cfg, 12, 77);
    let series = RobustSmoother::default().smooth(&raw);
    for &(t, v) in &[(1.0 * HOUR, -3.0), (0.5 * HOUR, -2.0), (4.0 * HOUR, -6.0)] {
        let region = QueryRegion::drop(t, v);
        check_theorem1(&series, 0.2, 8.0 * HOUR, &region, "cad");
    }
}

#[test]
fn theorem1_zero_epsilon_is_exact_on_pairs() {
    // At eps = 0 the approximation interpolates every sample exactly only
    // where segments end; completeness must still hold.
    let series = walk_series(250, 99);
    let region = QueryRegion::drop(1.5 * HOUR, -1.0);
    check_theorem1(&series, 0.0, 6.0 * HOUR, &region, "eps0");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized Theorem 1: random series, tolerance, window and query.
    #[test]
    fn theorem1_randomized(
        seed in 0u64..10_000,
        eps in 0.0f64..0.8,
        w_hours in 1.0f64..12.0,
        t_frac in 0.05f64..1.0,
        v in -4.0f64..-0.2,
        n in 60usize..300,
    ) {
        let series = walk_series(n, seed);
        let w = w_hours * HOUR;
        let region = QueryRegion::drop(t_frac * w, v);
        check_theorem1(&series, eps, w, &region, "prop");
    }
}
