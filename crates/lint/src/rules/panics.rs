//! Rule L1: no `.unwrap()` / `.expect(…)` / `panic!` /
//! `unimplemented!` / `todo!` in production code paths.
//!
//! A panic in a worker thread poisons the whole request pipeline; in
//! the storage engine it can leave a torn in-memory state the WAL was
//! never told about. Production paths must propagate errors. Test
//! modules, test/bench files and the `segmentation`/`featurespace`/
//! `sensorgen` math kernels (see [`crate::config::L1_CRATES`]) are out
//! of scope; individually justified sites use
//! `// lint: allow(L1) <reason>`.

use crate::config::L1_CRATES;
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokKind;

/// Runs L1 over one file.
pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    if !L1_CRATES.contains(&ctx.crate_name.as_str()) || ctx.test_file {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(ctx.src);
        let next_is = |k: TokKind| toks.get(i + 1).map(|n| n.kind) == Some(k);
        let prev_is_dot = i > 0 && toks[i - 1].kind == TokKind::Punct(b'.');
        let found = match name {
            // Std's `.unwrap()` takes no arguments and `.expect(msg)`
            // exactly one; same-named user methods with other arities
            // (e.g. the SQL parser's `expect(&Token, &str)`) are fine.
            "unwrap"
                if prev_is_dot
                    && next_is(TokKind::Punct(b'('))
                    && arg_count(ctx, i + 1) == Some(0) =>
            {
                Some("`.unwrap()` in production code".to_string())
            }
            "expect"
                if prev_is_dot
                    && next_is(TokKind::Punct(b'('))
                    && arg_count(ctx, i + 1) == Some(1) =>
            {
                Some("`.expect()` in production code".to_string())
            }
            "panic" | "unimplemented" | "todo" if next_is(TokKind::Punct(b'!')) => {
                Some(format!("`{name}!` in production code"))
            }
            _ => None,
        };
        let Some(message) = found else { continue };
        if ctx.in_test(t.line) {
            continue;
        }
        out.push(ctx.diag(
            Rule::L1,
            t.line,
            t.col,
            message,
            "propagate the error (`?`) or justify with `// lint: allow(L1) <reason>`".into(),
        ));
    }
    out
}

/// Number of top-level arguments in the call whose `(` sits at token
/// index `open` (trailing commas ignored), or `None` if unbalanced.
fn arg_count(ctx: &FileCtx, open: usize) -> Option<usize> {
    let toks = &ctx.toks;
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(if any { commas + 1 } else { 0 });
                }
            }
            TokKind::Punct(b',') if depth == 1 => {
                if toks.get(j + 1).map(|n| n.kind) != Some(TokKind::Punct(b')')) {
                    commas += 1;
                }
            }
            _ => any = true,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::context::SuppressionIndex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut index = SuppressionIndex::default();
        index.add_file(&ctx);
        index.filter(check(&ctx))
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = r#"
fn f() {
    let a = x.unwrap();
    let b = y.expect("msg");
    panic!("boom");
    unimplemented!();
    todo!();
}
"#;
        let d = run("crates/pagestore/src/db.rs", src);
        assert_eq!(d.len(), 5);
        assert!(d[0].message.contains(".unwrap()"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn ignores_test_code_and_out_of_scope_crates() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(run("crates/pagestore/src/db.rs", src).is_empty());
        assert!(run("crates/segmentation/src/pla.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(run(
            "crates/pagestore/src/fault_tests.rs",
            "fn f() { x.unwrap(); }"
        )
        .is_empty());
    }

    #[test]
    fn ignores_strings_and_comments() {
        let src = "fn f() {\n  // calls .unwrap() — fine in prose\n  let s = \"panic!\";\n}\n";
        assert!(run("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn suppression_with_reason() {
        let ok = "fn f() { x.unwrap(); // lint: allow(L1) length checked above\n}\n";
        assert!(run("crates/core/src/lib.rs", ok).is_empty());
        let no_reason = "fn f() { x.unwrap(); // lint: allow(L1)\n}\n";
        assert_eq!(run("crates/core/src/lib.rs", no_reason).len(), 1);
    }

    #[test]
    fn arity_distinguishes_user_methods() {
        let src = "fn f() {\n  self.expect(&Token::LParen, \"'('\")?;\n  x.unwrap_or(0);\n  y.unwrap(z);\n}\n";
        assert!(run("crates/pagestore/src/sql/parser.rs", src).is_empty());
    }

    #[test]
    fn unwrap_without_receiver_dot_is_not_flagged() {
        // e.g. a local fn named unwrap, or Option::unwrap as a path.
        let src = "fn f() { let x = unwrap(); }";
        assert!(run("crates/core/src/lib.rs", src).is_empty());
    }
}
