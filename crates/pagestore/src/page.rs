//! Raw page buffers and little-endian field accessors.

use crate::PAGE_SIZE;

/// A heap-allocated, zero-initialized page buffer.
#[derive(Clone)]
pub struct PageBuf(Box<[u8; PAGE_SIZE]>);

impl PageBuf {
    /// A fresh zeroed page.
    pub fn zeroed() -> Self {
        Self(Box::new([0u8; PAGE_SIZE]))
    }

    /// Read-only view of the raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    /// Mutable view of the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.0
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf(..)")
    }
}

/// Copies the `N` bytes at `off` into an array. The slice taken is
/// exactly `N` bytes long, so the conversion cannot fail (the range
/// index is the only panic site, as with any accessor below).
#[inline]
pub(crate) fn arr<const N: usize>(buf: &[u8], off: usize) -> [u8; N] {
    // lint: allow(L1) a slice of length N always converts to [u8; N]
    buf[off..off + N].try_into().unwrap()
}

/// Reads a `u16` at byte offset `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(arr(buf, off))
}

/// Writes a `u16` at byte offset `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at byte offset `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(arr(buf, off))
}

/// Writes a `u32` at byte offset `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u64` at byte offset `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(arr(buf, off))
}

/// Writes a `u64` at byte offset `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reads an `f64` at byte offset `off`.
#[inline]
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(arr(buf, off))
}

/// Writes an `f64` at byte offset `off`.
#[inline]
pub fn put_f64(buf: &mut [u8], off: usize, v: f64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page() {
        let p = PageBuf::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert_eq!(p.bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn field_roundtrips() {
        let mut p = PageBuf::zeroed();
        put_u16(p.bytes_mut(), 0, 0xBEEF);
        put_u32(p.bytes_mut(), 2, 0xDEAD_BEEF);
        put_u64(p.bytes_mut(), 6, u64::MAX - 7);
        put_f64(p.bytes_mut(), 14, -123.456);
        assert_eq!(get_u16(p.bytes(), 0), 0xBEEF);
        assert_eq!(get_u32(p.bytes(), 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(p.bytes(), 6), u64::MAX - 7);
        assert_eq!(get_f64(p.bytes(), 14), -123.456);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = PageBuf::zeroed();
        let b = a.clone();
        put_u16(a.bytes_mut(), 0, 7);
        assert_eq!(get_u16(b.bytes(), 0), 0);
    }
}
